"""E-T1 — Table I / Examples 2.1, 2.2: certain answers of the medical OMQ.

Regenerates the paper's worked example: the certain answers to the bacterial
infection UCQ and to the hereditary-predisposition AQ on the patient data,
reporting the same answer sets the paper states and timing the engines.
"""

from repro.workloads.medical import (
    example_2_1_omq,
    example_2_2_q1_omq,
    example_2_2_q2_omq,
    family_instance,
    patient_instance,
)

EXPECTED_2_1 = {("patient1",), ("patient2",)}


def test_table1_certain_answers(benchmark):
    omq = example_2_1_omq()
    data = patient_instance()
    answers = benchmark(lambda: omq.certain_answers(data))
    print(f"\n[E-T1] Example 2.1 certain answers: {sorted(answers)} (paper: patient1, patient2)")
    assert answers == EXPECTED_2_1


def test_table1_q1_ucq_rewriting_shape(benchmark):
    omq = example_2_2_q1_omq()
    data = patient_instance()
    answers = benchmark(lambda: omq.certain_answers(data))
    print(f"\n[E-T1] Example 2.2 q1 answers: {sorted(answers)} (asserted findings only)")
    assert answers == {("may7diag2",)}


def test_table1_q2_recursive_query(benchmark):
    omq = example_2_2_q2_omq()
    data = family_instance(4, predisposed_root=True)
    answers = benchmark(lambda: omq.certain_answers(data))
    print(f"\n[E-T1] Example 2.2 q2 answers on a 5-generation chain: {len(answers)} ancestors")
    assert len(answers) == 5
