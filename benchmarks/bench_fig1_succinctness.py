"""E-F1 / E-F2 — Figure 1 and Theorem 3.7: counting instances and the
succinctness gap between inverse-role and inverse-free query families.

Reproduces the *shape* of the succinctness result: the (ALCI, UCQ) family
detecting "path length ≥ k" stays polynomial in k while the inverse-free
family must spell out the whole path, and the counting instances of Figure 1
grow linearly.
"""

import pytest

from repro.workloads.counting import (
    alci_length_query,
    counting_instance,
    inverse_free_length_query,
    path_detection_cq,
    succinctness_measurements,
)


def test_fig1_counting_instance_generation(benchmark):
    instance = benchmark(lambda: counting_instance(64))
    print(f"\n[E-F1] counting instance C_64: {len(instance)} facts, "
          f"{len(instance.active_domain)} elements (Figure 1 shape)")
    assert len(instance.active_domain) == 129


def test_fig1_succinctness_gap(benchmark):
    rows = benchmark(lambda: succinctness_measurements(8))
    print("\n[E-F1] query-size growth (k, |ALCI query|, |inverse-free query|):")
    for row in rows:
        print(f"    k={row['k']:2d}   {row['alci_size']:5d}   {row['inverse_free_size']:5d}")
    # Shape check: the inverse-free family grows strictly faster.
    alci_delta = rows[-1]["alci_size"] - rows[0]["alci_size"]
    plain_delta = rows[-1]["inverse_free_size"] - rows[0]["inverse_free_size"]
    assert plain_delta > alci_delta


@pytest.mark.parametrize("k", [1, 2, 3])
def test_fig1_path_queries_detect_length(benchmark, k):
    query = path_detection_cq(k)
    long_instance = counting_instance(k + 1)
    short_instance = counting_instance(max(k - 1, 0)) if k > 1 else None
    result = benchmark(lambda: query.holds_in(long_instance))
    assert result
    if short_instance is not None:
        assert not query.holds_in(short_instance)
    assert alci_length_query(k).ontology.uses_inverse_roles()
    assert not inverse_free_length_query(k).ontology.uses_inverse_roles()
