"""E-32 / E-41 — Propositions 3.2 and 4.1: coFPP ≡ Boolean MDDlog ≡ coMMSNP.

Runs the translations in both directions on the 2-colourability query (the
running example of Section 4) and checks three-way agreement on odd and even
cycles, timing each translation.
"""

from repro.core import Fact, Instance
from repro.core import RelationSymbol, Schema, Variable
from repro.datalog import evaluate_boolean
from repro.fpp import ForbiddenPatternsProblem, colour_instance, make_palette
from repro.mmsnp import Implication, MMSNPFormula, SchemaAtom, SOAtom, SOVariable
from repro.translations import (
    csp_to_mddlog,
    fpp_to_mddlog,
    mddlog_to_fpp,
    mddlog_to_mmsnp,
    mmsnp_to_mddlog,
)
from repro.workloads.csp_zoo import clique_template, cycle_graph

EDGE = RelationSymbol("edge", 2)


def _two_colour_fpp() -> ForbiddenPatternsProblem:
    palette = make_palette(2)
    patterns = [
        colour_instance(Instance([Fact(EDGE, ("u", "v"))]), palette, {"u": c, "v": c})
        for c in palette
    ]
    return ForbiddenPatternsProblem(Schema([EDGE]), palette, patterns)


def _two_colour_mmsnp() -> MMSNPFormula:
    X = SOVariable("X")
    u, v = Variable("u"), Variable("v")
    return MMSNPFormula(
        [X],
        [
            Implication((SchemaAtom(EDGE, (u, v)), SOAtom(X, (u,)), SOAtom(X, (v,))), ()),
            Implication((SchemaAtom(EDGE, (u, v)),), (SOAtom(X, (u,)), SOAtom(X, (v,)))),
        ],
    )


DATA = [cycle_graph(3), cycle_graph(4), cycle_graph(5)]


def test_prop32_fpp_to_mddlog(benchmark):
    problem = _two_colour_fpp()
    program = benchmark(lambda: fpp_to_mddlog(problem))
    answers = [evaluate_boolean(program, d) for d in DATA]
    print(f"\n[E-32] coFPP -> MDDlog: |Π| = {program.size()}; answers on C3,C4,C5 = {answers}")
    assert answers == [True, False, True]


def test_prop32_mddlog_to_fpp(benchmark):
    program = csp_to_mddlog(clique_template(2))
    problem = benchmark(lambda: mddlog_to_fpp(program))
    answers = [problem.co_fpp_query(d) for d in DATA]
    print(f"\n[E-32] MDDlog -> coFPP: {len(problem.patterns)} patterns; answers = {answers}")
    assert answers == [True, False, True]


def test_prop41_mmsnp_to_mddlog(benchmark):
    formula = _two_colour_mmsnp()
    program = benchmark(lambda: mmsnp_to_mddlog(formula))
    answers = [evaluate_boolean(program, d) for d in DATA]
    print(f"\n[E-41] coMMSNP -> MDDlog: |Π| = {program.size()}; answers = {answers}")
    assert answers == [True, False, True]


def test_prop41_mddlog_to_mmsnp(benchmark):
    program = csp_to_mddlog(clique_template(2))
    formula = benchmark(lambda: mddlog_to_mmsnp(program))
    answers = [not formula.holds(d) for d in DATA]
    print(f"\n[E-41] MDDlog -> MMSNP: |Φ| = {formula.size()}; answers = {answers}")
    assert answers == [True, False, True]
