"""E-PAR — Sharded / parallel certain-answer serving scaling curves.

The Theorem 3.3 reduction makes candidate tuples independently decidable
against one ground program, and the serving layer exploits that two ways:

* **Sharding** (`ShardedObdaSession`): the Table 1 medical workload is
  consistent-hash-partitioned across 1/2/4 per-shard sessions and driven
  through a churn-and-query serving stream (bulk load, then delete /
  re-insert epochs with certain-answer queries after every update).  The
  per-candidate solve cost is proportional to the shard's clause database,
  so sharding is an *algorithmic* win — the curve below holds even on a
  single core, before any process placement.
* **Worker pools** (`ParallelEvaluator`): one-shot evaluation dispatches
  candidate chunks across replica workers with learned-clause feedback.
  Recorded for the curve; on a single-core host the pool pays process
  overhead without gaining hardware, so only the sharded curve is gated.

Acceptance: 4-shard serving must be ≥ 1.5x over 1-shard on the Table
1-scale workload, with identical certain answers at every epoch (the
curve test cross-validates the answer streams, not just the timings).
"""

import time

import pytest

from repro.engine import ParallelEvaluator, ground_program
from repro.omq.certain import compile_to_mddlog
from repro.service import ObdaSession, ShardedObdaSession, medical_universe
from repro.workloads.medical import example_2_1_omq

REQUIRED_SPEEDUP = 1.5
SHARD_COUNTS = (1, 2, 4)
WORKER_COUNTS = (1, 2, 4)

_shard_runs: dict[int, tuple[float, list]] = {}
_worker_runs: dict[int, tuple[float, frozenset]] = {}
_compiled = {}
_timing_asserted = {"enabled": True}


def _medical_program():
    if "q1" not in _compiled:
        _compiled["q1"] = compile_to_mddlog(example_2_1_omq())
    return _compiled["q1"]


def _universe():
    return medical_universe(patients=16, generations=8)


def _serve_stream(shards: int, epochs: int = 10) -> tuple[float, list]:
    """Bulk-load the workload, then churn-and-query; returns (s, answers)."""
    program = _medical_program()
    universe = _universe()
    if shards > 1:
        session = ShardedObdaSession({"q1": program}, shards=shards)
    else:
        session = ObdaSession({"q1": program})
    victims = sorted(universe, key=str)
    started = time.perf_counter()
    session.insert_facts(universe)
    answers = [session.certain_answers("q1")]
    for epoch in range(epochs):
        offset = 3 * epoch % len(victims)
        batch = victims[offset : offset + 2]
        session.delete_facts(batch)
        answers.append(session.certain_answers("q1"))
        session.insert_facts(batch)
        answers.append(session.certain_answers("q1"))
    return time.perf_counter() - started, answers


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_sharded_serving_scaling(benchmark, shards):
    # CI's smoke run passes --benchmark-disable: the stream still executes
    # (and the curve test still checks answer equivalence), but wall-clock
    # assertions are reserved for real, timed benchmark runs on an
    # otherwise idle machine.
    if not getattr(benchmark, "enabled", True):
        _timing_asserted["enabled"] = False

    def run():
        elapsed, answers = _serve_stream(shards)
        _shard_runs[shards] = (elapsed, answers)
        return answers

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_sharded_scaling_curve_and_equivalence():
    """The committed acceptance: ≥ 1.5x at 4 shards, identical answers."""
    if set(SHARD_COUNTS) - set(_shard_runs):
        pytest.skip("scaling runs did not execute")
    base_time, base_answers = _shard_runs[1]
    curve = {}
    for shards in SHARD_COUNTS:
        elapsed, answers = _shard_runs[shards]
        assert answers == base_answers, f"{shards}-shard answers diverge"
        curve[shards] = base_time / elapsed
    print(
        "\n[E-PAR] sharded serving stream: "
        + ", ".join(
            f"{shards} shards {_shard_runs[shards][0]:.2f}s "
            f"({curve[shards]:.2f}x)"
            for shards in SHARD_COUNTS
        )
    )
    if _timing_asserted["enabled"]:
        assert curve[4] >= REQUIRED_SPEEDUP, (
            f"4-shard serving only {curve[4]:.2f}x over 1-shard "
            f"(required {REQUIRED_SPEEDUP}x)"
        )


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_worker_pool_candidate_decision(benchmark, workers):
    """Chunked worker-pool decision of all candidates of one ground medical
    program (grounding excluded — it is shared, the decisions are not)."""
    program = _medical_program()
    from repro.core.instance import Instance

    ground = ground_program(program, Instance(_universe()))

    def run():
        started = time.perf_counter()
        with ParallelEvaluator(ground, workers=workers) as evaluator:
            answers = evaluator.certain_answers()
        _worker_runs[workers] = (time.perf_counter() - started, answers)
        return answers

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_worker_pool_equivalence():
    """Every worker count returns the serial engine's answers (the timing
    curve is recorded by the benchmark harness; on single-core hosts the
    pool is overhead, so no speedup is asserted here)."""
    if set(WORKER_COUNTS) - set(_worker_runs):
        pytest.skip("worker runs did not execute")
    baseline = _worker_runs[1][1]
    for workers in WORKER_COUNTS:
        assert _worker_runs[workers][1] == baseline
    print(
        "\n[E-PAR] worker-pool candidate decision: "
        + ", ".join(
            f"{workers}w {_worker_runs[workers][0]:.2f}s"
            for workers in WORKER_COUNTS
        )
    )
