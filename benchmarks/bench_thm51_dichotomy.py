"""E-51 / E-54 — Theorems 5.1, 5.3, 5.4: the PTIME / coNP dichotomy.

Classifies the CSP-template zoo (the concrete instances of the Feder–Vardi
landscape the paper's dichotomy transfer speaks about) and the OMQs obtained
from them, reproducing the "who is tractable" split, and exercises the
functional-role example behind Theorem 5.4.
"""

import pytest

from repro.csp import NP_HARD, PTIME, classify_template
from repro.obda import classify_omq
from repro.translations import csp_to_omq
from repro.workloads.csp_zoo import ZOO
from repro.workloads.medical import example_4_5_omq
from repro.workloads.separations import (
    functional_ok_instance,
    functional_role_omq,
    functional_violation_instance,
)


@pytest.mark.parametrize("name", sorted(ZOO))
def test_thm51_template_zoo_classification(benchmark, name):
    entry = ZOO[name]
    template = entry["template"]()
    report = benchmark(lambda: classify_template(template, check_rewritability=False))
    expected = PTIME if entry["tractable"] else NP_HARD
    print(f"\n[E-51] {name:22s} -> {report.complexity:8s} (expected {expected}); "
          f"witnesses: {', '.join(report.witnesses[:2])}")
    assert report.complexity == expected


def test_thm51_omq_classification_tractable(benchmark):
    report = benchmark(lambda: classify_omq(example_4_5_omq()))
    print(f"\n[E-51] Example 4.5 OMQ: {report.complexity}, datalog-rewritable={report.datalog_rewritable}")
    assert report.is_tractable()


def test_thm51_omq_classification_hard(benchmark):
    omq = csp_to_omq(ZOO["3-colourability"]["template"]())
    report = benchmark(lambda: classify_omq(omq))
    print(f"\n[E-51] 3-colourability OMQ: {report.complexity}")
    assert report.complexity == "coNP-hard"


def test_thm54_functional_roles_break_homomorphism_preservation(benchmark):
    """Theorem 5.4 rests on (ALCF, AQ) not being homomorphism-preserved; the
    witnessing pair of instances from the proof of Theorem 3.10."""
    omq = functional_role_omq()
    violation = functional_violation_instance()
    fine = functional_ok_instance()

    def measure():
        return (
            omq.certain_answers(violation, engine="bounded"),
            omq.certain_answers(fine, engine="bounded"),
        )

    inconsistent_answers, consistent_answers = benchmark(measure)
    print(
        f"\n[E-54] (ALCF,AQ): answers on inconsistent D = {sorted(inconsistent_answers)}, "
        f"on its homomorphic image D' = {sorted(consistent_answers)} "
        f"(not preserved under homomorphisms → beyond MDDlog/CSP)"
    )
    assert ("a",) in inconsistent_answers
    assert ("a",) not in consistent_answers
