"""E-33 / E-34 / E-35 — Theorems 3.3 and 3.4: OMQ ↔ MDDlog translations.

Runs both directions of the translations on the paper's medical queries,
measures program sizes (the single-exponential upper bound shape of the
theorems and the blow-up evidence of Theorem 3.5), and re-checks semantic
equivalence on the worked examples.
"""

from repro.datalog import evaluate
from repro.translations import (
    alc_aq_to_mddlog,
    alc_ucq_to_mddlog,
    mddlog_to_alc_aq,
    mddlog_to_alc_ucq,
)
from repro.workloads.medical import (
    example_2_1_omq,
    example_4_5_omq,
    family_instance,
    patient_instance,
)


def test_thm33_alc_ucq_to_mddlog(benchmark):
    omq = example_2_1_omq()
    program = benchmark(lambda: alc_ucq_to_mddlog(omq))
    data = patient_instance()
    assert evaluate(program, data) == omq.certain_answers(data)
    print(
        f"\n[E-33] (ALC,UCQ) -> MDDlog: |Q| = {omq.size()}, |Π| = {program.size()}, "
        f"{len(program)} rules (single-exponential bound: {2 ** omq.size():.2e})"
    )


def test_thm33_mddlog_to_alc_ucq_round_trip(benchmark):
    omq = example_2_1_omq()
    program = alc_ucq_to_mddlog(omq)
    rebuilt = benchmark(lambda: mddlog_to_alc_ucq(program))
    print(
        f"\n[E-33] MDDlog -> (ALC,UCQ): |Π| = {program.size()}, |Q'| = {rebuilt.size()} "
        f"(linear in |Π| as Theorem 3.3 (2) states)"
    )
    assert rebuilt.size() <= 12 * program.size()


def test_thm33_mddlog_certain_answer_evaluation(benchmark):
    """E-33 hot path: certain answers of the translated MDDlog program.

    Exercises the engine end-to-end — join-planned grounding of the
    translated program (thousands of rules) and incremental per-candidate
    solving — on the paper's patient data.
    """
    omq = example_2_1_omq()
    program = alc_ucq_to_mddlog(omq)
    data = patient_instance()
    answers = benchmark(lambda: evaluate(program, data))
    assert answers == omq.certain_answers(data)
    print(
        f"\n[E-33] MDDlog evaluation: {len(program)} rules, "
        f"|adom| = {len(data.active_domain)}, answers = {sorted(answers)}"
    )


def test_thm34_alc_aq_to_mddlog(benchmark):
    omq = example_4_5_omq()
    program = benchmark(lambda: alc_aq_to_mddlog(omq))
    data = family_instance(2, predisposed_root=True)
    assert evaluate(program, data) == omq.certain_answers(data)
    print(
        f"\n[E-34] (ALC,AQ) -> unary connected simple MDDlog: |Q| = {omq.size()}, "
        f"|Π| = {program.size()}, unary={program.is_unary()}, "
        f"connected={program.is_connected()}, simple={program.is_simple()}"
    )


def test_thm34_round_trip(benchmark):
    omq = example_4_5_omq()
    program = alc_aq_to_mddlog(omq)
    rebuilt = benchmark(lambda: mddlog_to_alc_aq(program))
    data = family_instance(2, predisposed_root=True)
    assert rebuilt.certain_answers(data) == omq.certain_answers(data)
    print(f"\n[E-34] MDDlog -> (ALC,AQ): |O| = {rebuilt.ontology.size()} (linear in |Π|)")


def test_thm35_blowup_shape(benchmark):
    """E-35: the forward translation is exponential in the ontology size while
    the backward translation is linear — measured on growing chain ontologies."""
    from repro.core import atomic_query
    from repro.core.schema import Schema
    from repro.dl import ConceptInclusion, ConceptName, Ontology
    from repro.omq import OntologyMediatedQuery

    def omq_of_size(n: int) -> OntologyMediatedQuery:
        axioms = [
            ConceptInclusion(ConceptName(f"A{i}"), ConceptName(f"A{i+1}") | ConceptName(f"B{i}"))
            for i in range(n)
        ]
        schema = Schema.binary([f"A{i}" for i in range(n + 1)] + [f"B{i}" for i in range(n)], ["R"])
        return OntologyMediatedQuery(
            ontology=Ontology(axioms), query=atomic_query(f"A{n}"), data_schema=schema
        )

    def measure():
        rows = []
        for n in (1, 2, 3):
            omq = omq_of_size(n)
            program = alc_aq_to_mddlog(omq)
            rows.append((n, omq.size(), program.size()))
        return rows

    rows = benchmark(measure)
    print("\n[E-35] blow-up shape (n, |Q|, |Π|):")
    for n, q_size, p_size in rows:
        print(f"    n={n}:  |Q|={q_size:4d}   |Π|={p_size:6d}")
    assert rows[-1][2] > rows[0][2]
