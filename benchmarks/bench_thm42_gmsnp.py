"""E-42 / E-43 — Theorems 4.2 and 4.3: GMSNP, frontier-guarded DDlog, MMSNP2.

Runs the translations GMSNP → frontier-guarded DDlog (and back) and
MMSNP2 → GMSNP on the 2-colourability sentence and on a genuinely non-monadic
edge-marking sentence, timing each construction and checking three-way
agreement of the defined queries on directed cycles.
"""


from repro.core import Fact, Instance
from repro.core.cq import var
from repro.datalog import evaluate_boolean
from repro.mmsnp import FactSOAtom, Implication, MMSNPFormula, SchemaAtom, SOAtom, SOVariable
from repro.translations import (
    frontier_ddlog_to_gmsnp,
    gmsnp_to_frontier_ddlog,
    mmsnp2_to_gmsnp,
)
from repro.workloads.csp_zoo import EDGE, cycle_graph

x, y = var("x"), var("y")


def two_colourability_sentence() -> MMSNPFormula:
    colour = SOVariable("X", 1)
    return MMSNPFormula(
        [colour],
        [
            Implication(
                (SchemaAtom(EDGE, (x, y)), SOAtom(colour, (x,)), SOAtom(colour, (y,))),
                (),
            ),
            Implication(
                (SchemaAtom(EDGE, (x, y)),),
                (SOAtom(colour, (x,)), SOAtom(colour, (y,))),
            ),
        ],
        [],
    )


def orientation_sentence() -> MMSNPFormula:
    marked = SOVariable("M", 2)
    return MMSNPFormula(
        [marked],
        [
            Implication((SchemaAtom(EDGE, (x, y)),), (SOAtom(marked, (x, y)),)),
            Implication(
                (
                    SchemaAtom(EDGE, (x, y)),
                    SOAtom(marked, (x, y)),
                    SOAtom(marked, (y, x)),
                ),
                (),
            ),
        ],
        [],
    )


def edge_marking_mmsnp2_sentence() -> MMSNPFormula:
    marker = SOVariable("M", 1)
    return MMSNPFormula(
        [marker],
        [
            Implication(
                (SchemaAtom(EDGE, (x, y)),),
                (FactSOAtom(marker, EDGE, (x, y)), SOAtom(marker, (x,))),
            ),
            Implication(
                (
                    SchemaAtom(EDGE, (x, y)),
                    FactSOAtom(marker, EDGE, (x, y)),
                    SOAtom(marker, (x,)),
                ),
                (),
            ),
        ],
        [],
    )


def test_thm42_gmsnp_to_frontier_ddlog(benchmark):
    formula = two_colourability_sentence()
    program = benchmark(lambda: gmsnp_to_frontier_ddlog(formula))
    agreements = 0
    for length in (3, 4, 5, 6):
        graph = cycle_graph(length)
        if evaluate_boolean(program, graph) == (not formula.holds(graph)):
            agreements += 1
    print(
        f"\n[E-42] GMSNP(2-col) -> frontier-guarded DDlog: |Φ|={formula.size()}, "
        f"|Π|={program.size()}, rules={len(program)}, agreement on cycles C3..C6: {agreements}/4"
    )
    assert agreements == 4
    assert program.is_frontier_guarded()


def test_thm42_non_monadic_so_variables(benchmark):
    formula = orientation_sentence()
    program = benchmark(lambda: gmsnp_to_frontier_ddlog(formula))
    two_cycle = Instance([Fact(EDGE, ("a", "b")), Fact(EDGE, ("b", "a"))])
    agreement = evaluate_boolean(program, two_cycle) == (not formula.holds(two_cycle))
    print(
        f"\n[E-42] binary SO variable: |Φ|={formula.size()} -> |Π|={program.size()} "
        f"(monadic: {program.is_monadic()}), agreement on the 2-cycle: {agreement}"
    )
    assert agreement
    assert not program.is_monadic()


def test_thm42_round_trip(benchmark):
    formula = two_colourability_sentence()
    program = gmsnp_to_frontier_ddlog(formula)
    back = benchmark(lambda: frontier_ddlog_to_gmsnp(program))
    agreement = all(
        back.holds(cycle_graph(length)) == formula.holds(cycle_graph(length))
        for length in (3, 4)
    )
    print(
        f"\n[E-42] round trip GMSNP -> DDlog -> GMSNP: sizes {formula.size()} -> "
        f"{program.size()} -> {back.size()}, agreement: {agreement}"
    )
    assert agreement


def test_thm43_mmsnp2_to_gmsnp(benchmark):
    formula = edge_marking_mmsnp2_sentence()
    translated = benchmark(lambda: mmsnp2_to_gmsnp(formula))
    instances = [
        Instance([Fact(EDGE, ("a", "a"))]),
        Instance([Fact(EDGE, ("a", "b"))]),
        Instance([Fact(EDGE, ("a", "b")), Fact(EDGE, ("b", "a"))]),
    ]
    agreement = sum(
        translated.holds(instance) == formula.holds(instance) for instance in instances
    )
    print(
        f"\n[E-43] MMSNP2 -> GMSNP: |Φ|={formula.size()} -> |Φ'|={translated.size()}, "
        f"agreement on {agreement}/{len(instances)} probe instances "
        f"(GMSNP: {translated.is_gmsnp()})"
    )
    assert agreement == len(instances)
