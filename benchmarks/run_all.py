#!/usr/bin/env python3
"""Run the benchmark suite and emit one consolidated results file.

Wraps ``pytest --benchmark-json`` over the ``bench_*.py`` files and distils
the raw pytest-benchmark output into a single compact JSON document
(``benchmarks/results/BENCH_RESULTS.json`` by default) so the performance
trajectory can be tracked across PRs.  Passing ``--baseline`` embeds a
per-benchmark speedup column against a previous consolidated file.

Examples::

    python benchmarks/run_all.py                     # full suite
    python benchmarks/run_all.py bench_thm46_csp.py  # subset
    python benchmarks/run_all.py --label pr1 --baseline results/BENCH_seed.json

When a baseline is available (``--baseline``, or ``results/BENCH_seed.json``
by default) the run acts as a regression gate: a geometric-mean slowdown
beyond ``--max-regression`` (default 1.5x) across the shared benchmarks
fails the run with a non-zero exit code.  The gate also fails when the
baseline and the current run share *no* benchmark names — an empty overlap
means nothing was compared, which used to slip through silently (e.g. after
a rename sweep).  ``--no-regression-gate`` disables the gate (e.g. on noisy
shared machines).

``--check-only`` skips running the benchmarks and re-applies the gate to an
existing consolidated results file (``--output``, by default the committed
``results/BENCH_RESULTS.json``) — a cheap CI smoke test that the gate logic
itself, empty-overlap behavior included, stays exercised on every PR.  It
also schema-validates every committed ``results/TRACE_*.json`` telemetry
export (Chrome trace-event JSON, see ``docs/observability.md``) so a stale
or hand-mangled trace fails CI rather than failing in the viewer, and the
committed ``results/ADAPTIVE_ROUTING.json`` verdict (the adaptive
re-planning artifact of ``bench_adaptive_routing.py``, see
``docs/adaptive.md``): schema tag, 1-3 recorded re-plans, and every
measured segment at or above its required ratio of the best pinned tier.
The committed ``results/FRONTEND_SERVING.json`` verdict (the multi-tenant
serving artifact of ``bench_frontend_serving.py``, see
``docs/frontend.md``) is validated the same way: schema tag, the 10k
tenant floor, the group-commit speedup gate, and non-zero shed counts.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import subprocess
import sys
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
DEFAULT_OUTPUT = BENCH_DIR / "results" / "BENCH_RESULTS.json"


def run_pytest_benchmarks(paths: list[str]) -> tuple[dict, float, int]:
    """Run pytest-benchmark on the given files; returns (raw json, wall s, rc)."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        raw_path = handle.name
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    command = [
        sys.executable,
        "-m",
        "pytest",
        *paths,
        "-q",
        f"--benchmark-json={raw_path}",
    ]
    started = time.perf_counter()
    completed = subprocess.run(command, cwd=REPO_ROOT, env=env)
    wall = time.perf_counter() - started
    try:
        with open(raw_path) as fh:
            raw = json.load(fh)
    except (OSError, json.JSONDecodeError):
        raw = {"benchmarks": []}
    finally:
        with contextlib.suppress(OSError):
            os.unlink(raw_path)
    return raw, wall, completed.returncode


def consolidate(
    raw: dict,
    label: str,
    wall_seconds: float | None = None,
    baseline: dict | None = None,
) -> dict:
    """Distil raw pytest-benchmark output into the consolidated schema."""
    results = {}
    for bench in raw.get("benchmarks", ()):
        stats = bench["stats"]
        entry = {
            "file": bench.get("fullname", "").split("::")[0],
            "mean_s": stats["mean"],
            "min_s": stats["min"],
            "stddev_s": stats["stddev"],
            "rounds": stats["rounds"],
        }
        # Telemetry counters the benchmark surfaced via benchmark.extra_info
        # (fixpoint rounds, rows joined, clauses grounded, ...): keep them
        # next to the timings so work-done travels with time-taken.
        extra = bench.get("extra_info")
        if extra:
            entry["counters"] = dict(sorted(extra.items()))
        results[bench["name"]] = entry
    consolidated = {
        "label": label,
        "generated_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "machine": raw.get("machine_info", {}).get("node", "unknown"),
        "python": raw.get("machine_info", {}).get("python_version", ""),
        "total_wall_s": wall_seconds,
        "results": results,
    }
    if baseline:
        apply_baseline(consolidated, baseline)
    return consolidated


def apply_baseline(consolidated: dict, baseline: dict) -> dict:
    """Embed per-benchmark speedups and the geomean against a baseline.

    Records ``baseline_overlap`` — the number of benchmarks shared with the
    baseline — so the regression gate can distinguish "no regression" from
    "nothing was compared at all".
    """
    consolidated["baseline_label"] = baseline.get("label", "baseline")
    base_results = baseline.get("results", {})
    speedups = []
    for name, entry in consolidated.get("results", {}).items():
        base = base_results.get(name)
        if base and entry["mean_s"]:
            entry["baseline_mean_s"] = base["mean_s"]
            entry["speedup_vs_baseline"] = base["mean_s"] / entry["mean_s"]
            speedups.append(entry["speedup_vs_baseline"])
    consolidated["baseline_overlap"] = len(speedups)
    consolidated.pop("geomean_speedup_vs_baseline", None)
    if speedups:
        product = 1.0
        for value in speedups:
            product *= value
        consolidated["geomean_speedup_vs_baseline"] = product ** (
            1.0 / len(speedups)
        )
    return consolidated


def validate_committed_traces() -> list[str]:
    """Validate every committed ``results/TRACE_*.json`` trace export.

    Returns human-readable error strings (empty when all traces are valid
    Chrome trace-event documents, or when none are committed).  Imports the
    validator lazily so plain benchmark runs do not require ``src`` on the
    path before argument parsing.
    """
    trace_paths = sorted((BENCH_DIR / "results").glob("TRACE_*.json"))
    if not trace_paths:
        return []
    src = str(REPO_ROOT / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    from repro.obs import validate_trace_file

    errors: list[str] = []
    for path in trace_paths:
        errors.extend(validate_trace_file(path))
    return errors


def validate_adaptive_report() -> list[str]:
    """Validate the committed ``results/ADAPTIVE_ROUTING.json`` verdict.

    Returns human-readable error strings; the file is a required CI
    artifact (``bench_adaptive_routing.py`` commits it), so a missing or
    mangled document fails the check rather than passing silently.
    """
    path = BENCH_DIR / "results" / "ADAPTIVE_ROUTING.json"
    try:
        with open(path) as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        return [f"{path.name}: cannot read committed verdict: {error}"]
    errors: list[str] = []
    if document.get("schema") != "adaptive-routing/v1":
        errors.append(
            f"{path.name}: schema {document.get('schema')!r} is not "
            "'adaptive-routing/v1'"
        )
    replans = document.get("replan_count")
    if not isinstance(replans, int) or not 1 <= replans <= 3:
        errors.append(
            f"{path.name}: replan_count {replans!r} outside the required "
            "1-3 window"
        )
    if document.get("answers_identical") is not True:
        errors.append(f"{path.name}: answers_identical is not true")
    required = document.get("required_ratio")
    if not isinstance(required, (int, float)) or required < 0.8:
        errors.append(
            f"{path.name}: required_ratio {required!r} below the 0.8 floor"
        )
        required = 0.8
    segments = document.get("segments")
    if not isinstance(segments, dict) or not segments:
        errors.append(f"{path.name}: no segments recorded")
        segments = {}
    for name, entry in segments.items():
        ratio = entry.get("ratio_vs_best_forced")
        if not isinstance(ratio, (int, float)) or ratio < required:
            errors.append(
                f"{path.name}: segment {name!r} ratio {ratio!r} below the "
                f"required {required}"
            )
    return errors


def validate_frontend_report() -> list[str]:
    """Validate the committed ``results/FRONTEND_SERVING.json`` verdict.

    Returns human-readable error strings; the file is a required CI
    artifact (``bench_frontend_serving.py`` commits it), so a missing or
    mangled document fails the check rather than passing silently.
    """
    path = BENCH_DIR / "results" / "FRONTEND_SERVING.json"
    try:
        with open(path) as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        return [f"{path.name}: cannot read committed verdict: {error}"]
    errors: list[str] = []
    if document.get("schema") != "frontend-serving/v1":
        errors.append(
            f"{path.name}: schema {document.get('schema')!r} is not "
            "'frontend-serving/v1'"
        )
    if document.get("answers_identical") is not True:
        errors.append(f"{path.name}: answers_identical is not true")
    tenants = document.get("tenants")
    if not isinstance(tenants, int) or tenants < 10_000:
        errors.append(
            f"{path.name}: tenants {tenants!r} below the required 10000"
        )
    required = document.get("required_speedup")
    if not isinstance(required, (int, float)) or required < 3.0:
        errors.append(
            f"{path.name}: required_speedup {required!r} below the 3.0 floor"
        )
        required = 3.0
    speedup = document.get("write_segment", {}).get("speedup")
    if not isinstance(speedup, (int, float)) or speedup < required:
        errors.append(
            f"{path.name}: group-commit speedup {speedup!r} below the "
            f"required {required}"
        )
    reads = document.get("read_segment", {})
    for quantile in ("p50_s", "p99_s"):
        if not isinstance(reads.get(quantile), (int, float)):
            errors.append(
                f"{path.name}: read_segment.{quantile} "
                f"{reads.get(quantile)!r} is not a number"
            )
    admission = document.get("admission_segment", {})
    for counter in ("rejected", "degraded"):
        count = admission.get(counter)
        if not isinstance(count, int) or count <= 0:
            errors.append(
                f"{path.name}: admission_segment.{counter} {count!r} shows "
                "no load was shed"
            )
    return errors


def gate_verdict(consolidated: dict, max_regression: float) -> tuple[bool, str]:
    """Apply the regression gate to a baseline-annotated consolidated file.

    Returns ``(ok, message)``.  The gate fails on a geomean slowdown beyond
    ``max_regression`` — and on an *empty overlap* with the baseline, which
    previously passed silently because no geomean existed to compare.
    """
    if "baseline_label" not in consolidated:
        return True, "no baseline: regression gate not applicable"
    label = consolidated["baseline_label"]
    overlap = consolidated.get("baseline_overlap")
    if overlap is None:
        # pre-overlap-tracking file: derive it from the embedded speedups
        overlap = sum(
            1
            for entry in consolidated.get("results", {}).values()
            if "speedup_vs_baseline" in entry
        )
    if overlap == 0:
        return False, (
            f"GATE FAILURE: baseline {label!r} and the current run share no "
            "benchmark names — nothing was compared, so the regression gate "
            "cannot pass (did a rename sweep or an empty run slip through?)"
        )
    geomean = consolidated.get("geomean_speedup_vs_baseline")
    if geomean is None:
        return False, (
            f"GATE FAILURE: baseline {label!r} is present but no geomean "
            "was computed — nothing was compared"
        )
    message = f"geomean speedup vs {label}: {geomean:.2f}x ({overlap} shared)"
    if geomean < 1.0 / max_regression:
        return False, (
            f"REGRESSION: geomean slowdown {1.0 / geomean:.2f}x exceeds the "
            f"allowed {max_regression:.2f}x ({message})"
        )
    return True, message


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "benchmarks",
        nargs="*",
        help="benchmark files (relative to benchmarks/); default: all bench_*.py",
    )
    parser.add_argument("--label", default="current", help="label stored in the output")
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT, help="consolidated output path"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=(
            "previous consolidated file to compare against "
            "(default: results/BENCH_seed.json when present)"
        ),
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=1.5,
        help="fail when the geomean slowdown vs the baseline exceeds this factor",
    )
    parser.add_argument(
        "--no-regression-gate",
        action="store_true",
        help="report the baseline comparison but never fail because of it",
    )
    parser.add_argument(
        "--check-only",
        action="store_true",
        help=(
            "do not run benchmarks; re-apply the regression gate to the "
            "existing consolidated file at --output"
        ),
    )
    args = parser.parse_args(argv)
    if args.baseline is None:
        default_baseline = BENCH_DIR / "results" / "BENCH_seed.json"
        if default_baseline.exists():
            args.baseline = default_baseline

    if args.benchmarks:
        paths = [str(BENCH_DIR / name) for name in args.benchmarks]
    else:
        paths = [str(path) for path in sorted(BENCH_DIR.glob("bench_*.py"))]

    baseline = None
    if args.baseline is not None:
        try:
            with open(args.baseline) as fh:
                baseline = json.load(fh)
        except (OSError, json.JSONDecodeError) as error:
            parser.error(f"cannot read baseline {args.baseline}: {error}")

    if args.check_only:
        try:
            with open(args.output) as fh:
                consolidated = json.load(fh)
        except (OSError, json.JSONDecodeError) as error:
            parser.error(f"cannot read results {args.output}: {error}")
        if baseline is not None:
            apply_baseline(consolidated, baseline)
        returncode = 0
        print(
            f"checking {len(consolidated.get('results', {}))} consolidated "
            f"benchmarks from {args.output}"
        )
        trace_errors = validate_committed_traces()
        if trace_errors:
            for error in trace_errors:
                print(f"TRACE FAILURE: {error}")
            return 1
        print("committed TRACE_*.json exports: valid Chrome trace-event JSON")
        adaptive_errors = validate_adaptive_report()
        if adaptive_errors:
            for error in adaptive_errors:
                print(f"ADAPTIVE FAILURE: {error}")
            return 1
        print(
            "committed ADAPTIVE_ROUTING.json: schema valid, re-plans in "
            "window, all segments at the required ratio"
        )
        frontend_errors = validate_frontend_report()
        if frontend_errors:
            for error in frontend_errors:
                print(f"FRONTEND FAILURE: {error}")
            return 1
        print(
            "committed FRONTEND_SERVING.json: schema valid, 10k tenants, "
            "group-commit speedup at the gate, load shed under the storm"
        )
    else:
        raw, wall, returncode = run_pytest_benchmarks(paths)
        consolidated = consolidate(raw, args.label, wall, baseline)

        args.output.parent.mkdir(parents=True, exist_ok=True)
        with open(args.output, "w") as fh:
            json.dump(consolidated, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(
            f"\nconsolidated {len(consolidated['results'])} benchmarks "
            f"-> {args.output}"
        )

    ok, message = gate_verdict(consolidated, args.max_regression)
    print(message)
    if not ok and not args.no_regression_gate:
        return returncode or 1
    return returncode


if __name__ == "__main__":
    raise SystemExit(main())
