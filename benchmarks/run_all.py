#!/usr/bin/env python3
"""Run the benchmark suite and emit one consolidated results file.

Wraps ``pytest --benchmark-json`` over the ``bench_*.py`` files and distils
the raw pytest-benchmark output into a single compact JSON document
(``benchmarks/results/BENCH_RESULTS.json`` by default) so the performance
trajectory can be tracked across PRs.  Passing ``--baseline`` embeds a
per-benchmark speedup column against a previous consolidated file.

Examples::

    python benchmarks/run_all.py                     # full suite
    python benchmarks/run_all.py bench_thm46_csp.py  # subset
    python benchmarks/run_all.py --label pr1 --baseline results/BENCH_seed.json

When a baseline is available (``--baseline``, or ``results/BENCH_seed.json``
by default) the run acts as a regression gate: a geometric-mean slowdown
beyond ``--max-regression`` (default 1.5x) across the shared benchmarks
fails the run with a non-zero exit code.  ``--no-regression-gate`` disables
the gate (e.g. on noisy shared machines).
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
DEFAULT_OUTPUT = BENCH_DIR / "results" / "BENCH_RESULTS.json"


def run_pytest_benchmarks(paths: list[str]) -> tuple[dict, float, int]:
    """Run pytest-benchmark on the given files; returns (raw json, wall s, rc)."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        raw_path = handle.name
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    command = [
        sys.executable,
        "-m",
        "pytest",
        *paths,
        "-q",
        f"--benchmark-json={raw_path}",
    ]
    started = time.perf_counter()
    completed = subprocess.run(command, cwd=REPO_ROOT, env=env)
    wall = time.perf_counter() - started
    try:
        with open(raw_path) as fh:
            raw = json.load(fh)
    except (OSError, json.JSONDecodeError):
        raw = {"benchmarks": []}
    finally:
        try:
            os.unlink(raw_path)
        except OSError:
            pass
    return raw, wall, completed.returncode


def consolidate(
    raw: dict,
    label: str,
    wall_seconds: float | None = None,
    baseline: dict | None = None,
) -> dict:
    """Distil raw pytest-benchmark output into the consolidated schema."""
    results = {}
    for bench in raw.get("benchmarks", ()):
        stats = bench["stats"]
        results[bench["name"]] = {
            "file": bench.get("fullname", "").split("::")[0],
            "mean_s": stats["mean"],
            "min_s": stats["min"],
            "stddev_s": stats["stddev"],
            "rounds": stats["rounds"],
        }
    consolidated = {
        "label": label,
        "generated_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "machine": raw.get("machine_info", {}).get("node", "unknown"),
        "python": raw.get("machine_info", {}).get("python_version", ""),
        "total_wall_s": wall_seconds,
        "results": results,
    }
    if baseline:
        consolidated["baseline_label"] = baseline.get("label", "baseline")
        base_results = baseline.get("results", {})
        speedups = []
        for name, entry in results.items():
            base = base_results.get(name)
            if base and entry["mean_s"]:
                entry["baseline_mean_s"] = base["mean_s"]
                entry["speedup_vs_baseline"] = base["mean_s"] / entry["mean_s"]
                speedups.append(entry["speedup_vs_baseline"])
        if speedups:
            product = 1.0
            for value in speedups:
                product *= value
            consolidated["geomean_speedup_vs_baseline"] = product ** (
                1.0 / len(speedups)
            )
    return consolidated


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "benchmarks",
        nargs="*",
        help="benchmark files (relative to benchmarks/); default: all bench_*.py",
    )
    parser.add_argument("--label", default="current", help="label stored in the output")
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT, help="consolidated output path"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=(
            "previous consolidated file to compare against "
            "(default: results/BENCH_seed.json when present)"
        ),
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=1.5,
        help="fail when the geomean slowdown vs the baseline exceeds this factor",
    )
    parser.add_argument(
        "--no-regression-gate",
        action="store_true",
        help="report the baseline comparison but never fail because of it",
    )
    args = parser.parse_args(argv)
    if args.baseline is None:
        default_baseline = BENCH_DIR / "results" / "BENCH_seed.json"
        if default_baseline.exists():
            args.baseline = default_baseline

    if args.benchmarks:
        paths = [str(BENCH_DIR / name) for name in args.benchmarks]
    else:
        paths = [str(path) for path in sorted(BENCH_DIR.glob("bench_*.py"))]

    baseline = None
    if args.baseline is not None:
        try:
            with open(args.baseline) as fh:
                baseline = json.load(fh)
        except (OSError, json.JSONDecodeError) as error:
            parser.error(f"cannot read baseline {args.baseline}: {error}")

    raw, wall, returncode = run_pytest_benchmarks(paths)
    consolidated = consolidate(raw, args.label, wall, baseline)

    args.output.parent.mkdir(parents=True, exist_ok=True)
    with open(args.output, "w") as fh:
        json.dump(consolidated, fh, indent=2, sort_keys=True)
        fh.write("\n")

    print(f"\nconsolidated {len(consolidated['results'])} benchmarks -> {args.output}")
    if "geomean_speedup_vs_baseline" in consolidated:
        geomean = consolidated["geomean_speedup_vs_baseline"]
        print(
            f"geomean speedup vs {consolidated['baseline_label']}: {geomean:.2f}x"
        )
        if not args.no_regression_gate and geomean < 1.0 / args.max_regression:
            print(
                f"REGRESSION: geomean slowdown {1.0 / geomean:.2f}x exceeds the "
                f"allowed {args.max_regression:.2f}x"
            )
            return returncode or 1
    return returncode


if __name__ == "__main__":
    raise SystemExit(main())
