"""E-52 / E-55 / E-56 — Propositions 5.2 and 5.5, Theorem 5.6: containment via MMSNP.

Exercises the MMSNP side of the containment story: the sentence encoding of
formulas with free variables (Proposition 5.2), the reduction of formula
containment to sentence containment (Proposition 5.5), and bounded containment
checks between coMMSNP queries derived from ontology-mediated queries
(Theorem 5.6's decidability route).
"""


from repro.core import Fact, Instance, RelationSymbol
from repro.core.cq import var
from repro.mmsnp import (
    EqualityAtom,
    Implication,
    MMSNPFormula,
    SchemaAtom,
    SOAtom,
    SOVariable,
    comsnp_contained_in,
    containment_counterexample,
    formula_to_sentence,
    marked_expansion,
    reduce_to_sentence_containment,
)
from repro.translations import alc_ucq_to_mddlog, mddlog_to_mmsnp
from repro.workloads.csp_zoo import EDGE
from repro.workloads.medical import example_2_2_q1_omq

x, y = var("x"), var("y")
MARK = RelationSymbol("Mark", 1)


def reachability_formula() -> MMSNPFormula:
    reach = SOVariable("X", 1)
    free = var("d")
    return MMSNPFormula(
        [reach],
        [
            Implication((EqualityAtom(free, free),), (SOAtom(reach, (free,)),)),
            Implication(
                (SOAtom(reach, (x,)), SchemaAtom(EDGE, (x, y))), (SOAtom(reach, (y,)),)
            ),
            Implication((SOAtom(reach, (x,)), SchemaAtom(MARK, (x,))), ()),
        ],
        [free],
    )


def two_colourability_formula() -> MMSNPFormula:
    colour = SOVariable("X", 1)
    return MMSNPFormula(
        [colour],
        [
            Implication(
                (SchemaAtom(EDGE, (x, y)), SOAtom(colour, (x,)), SOAtom(colour, (y,))),
                (),
            ),
            Implication(
                (SchemaAtom(EDGE, (x, y)),), (SOAtom(colour, (x,)), SOAtom(colour, (y,)))
            ),
        ],
        [],
    )


def test_prop52_sentence_encoding(benchmark):
    formula = reachability_formula()
    sentence, markers = benchmark(lambda: formula_to_sentence(formula))
    data = Instance(
        [Fact(EDGE, ("a", "b")), Fact(EDGE, ("b", "c")), Fact(MARK, ("c",))]
    )
    agreements = 0
    for element in sorted(data.active_domain):
        expanded = marked_expansion(data, (element,), markers)
        agreements += formula.holds(data, (element,)) == sentence.holds(expanded)
    print(
        f"\n[E-52] Proposition 5.2: formula (arity 1, size {formula.size()}) -> "
        f"sentence (size {sentence.size()}) over schema + {len(markers)} markers; "
        f"agreement on marked expansions: {agreements}/3"
    )
    assert agreements == 3


def test_prop55_reduction_and_bounded_containment(benchmark):
    formula = reachability_formula()

    def run():
        first, second, markers = reduce_to_sentence_containment(formula, formula)
        contained = comsnp_contained_in(formula, formula, domain_size=2, max_facts=3)
        return first, second, markers, contained

    first, second, markers, contained = benchmark(run)
    print(
        f"\n[E-55] Proposition 5.5: reduced both formulas to sentences of sizes "
        f"{first.size()} / {second.size()} (markers: {len(markers)}); reflexive "
        f"containment verified: {contained}"
    )
    assert contained


def test_thm56_containment_between_mmsnp_queries(benchmark):
    two = two_colourability_formula()
    omq = example_2_2_q1_omq()

    def run():
        # The Theorem 5.6 pipeline: (ALC, UCQ) -> MDDlog -> MMSNP, then decide
        # containment on the MMSNP side (here: the bounded reflexive check for
        # the hand-sized 2-colourability sentence).
        derived = mddlog_to_mmsnp(alc_ucq_to_mddlog(omq))
        reflexive = comsnp_contained_in(two, two, domain_size=2, max_facts=3)
        return derived, reflexive

    derived, reflexive = benchmark(run)
    print(
        f"\n[E-56] Theorem 5.6 route: (ALC, UCQ) query -> MDDlog -> MMSNP formula "
        f"(size {derived.size()}, {len(derived.so_variables)} SO variables); "
        f"reflexive containment of the 2-colourability sentence: {reflexive}"
    )
    assert derived.is_mmsnp()
    assert reflexive


def test_thm56_non_containment_witness(benchmark):
    two = two_colourability_formula()
    always_true = MMSNPFormula(
        [SOVariable("X", 1)],
        [Implication((SchemaAtom(EDGE, (x, y)),), (SOAtom(SOVariable("X", 1), (x,)),))],
        [],
    )
    witness = benchmark(
        lambda: containment_counterexample(two, always_true, domain_size=3, max_facts=3)
    )
    print(
        "\n[E-56] non-containment witness for coMMSNP(2-col) ⊆ coMMSNP(trivial): "
        f"{'found, ' + str(len(witness.instance)) + ' facts' if witness else 'none'}"
    )
    assert witness is not None
