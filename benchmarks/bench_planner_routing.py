"""E-PLAN — Tiered planner routing: every OMQ on its cheapest engine.

The paper's Section 5 dichotomy says the Table 1 queries do not need the
generic coNP machinery: q1 is equivalent to a UCQ (Example 2.2) and q2 has
a plain datalog rewriting, while coCSP(K3) is genuinely disjunctive
(NP-hard template).  This benchmark certifies that the planner exploits
that at runtime:

* the **Table 1 medical workload** (q1 as its UCQ rewriting) routes to
  tier 0 and serves a 100-update query stream ≥ 3x faster than the same
  workload forced onto the ground+CDCL tier, with identical answers;
* the **datalog-rewriting workload** (q2's recursive rewriting over an
  ancestry chain) routes to tier 1 with the same ≥ 3x bar;
* **coCSP(K3)** routes to tier 2 — the planner must not pretend a
  genuinely disjunctive program is cheap — and routed answers equal the
  forced-tier ones;
* randomized programs are cross-validated across every sound tier.

Besides the pytest-benchmark numbers (consolidated into
``BENCH_RESULTS.json`` by ``run_all.py``), each test appends its verdict
to ``results/PLANNER_ROUTING.json`` — the planner routing report uploaded
as a CI artifact.
"""

import json
import random
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.core import Atom, Fact, Instance, RelationSymbol, Variable
from repro.datalog import (
    DisjunctiveDatalogProgram,
    Rule,
    adom_atom,
    evaluate,
    goal_atom,
)
from repro.planner import TIER_GROUND_SAT, plan_for_tier, plan_program
from repro.service import ObdaSession, medical_universe, random_stream, replay
from repro.translations.csp_templates import csp_to_mddlog
from repro.workloads.csp_zoo import three_colourability_template

REQUIRED_SPEEDUP = 3.0
REPORT_PATH = Path(__file__).resolve().parent / "results" / "PLANNER_ROUTING.json"

_REPORT: dict = {"workloads": {}, "crossval": {}}


def _record(section: str, name: str, **fields) -> None:
    _REPORT[section][name] = fields
    _REPORT["generated_at"] = datetime.now(timezone.utc).isoformat(
        timespec="seconds"
    )
    REPORT_PATH.parent.mkdir(parents=True, exist_ok=True)
    with open(REPORT_PATH, "w") as handle:
        json.dump(_REPORT, handle, indent=2, sort_keys=True)
        handle.write("\n")


# ---------------------------------------------------------------------------
# The Table 1 workloads in their rewritten forms (Example 2.2)
# ---------------------------------------------------------------------------

HAS_DIAGNOSIS = RelationSymbol("HasDiagnosis", 2)
HAS_FINDING = RelationSymbol("HasFinding", 2)
HAS_PARENT = RelationSymbol("HasParent", 2)
BACTERIAL = RelationSymbol("BacterialInfection", 1)
LYME = RelationSymbol("LymeDisease", 1)
LISTERIOSIS = RelationSymbol("Listeriosis", 1)
ERYTHEMA = RelationSymbol("ErythemaMigrans", 1)
PREDISPOSITION = RelationSymbol("HereditaryPredisposition", 1)
DERIVED = RelationSymbol("P__derived", 1)
X, Y = Variable("x"), Variable("y")


def bacterial_ucq_rewriting() -> DisjunctiveDatalogProgram:
    """Example 2.2's UCQ rewriting of q1, as a nonrecursive datalog program.

    ``q1(x) = ∃y HasDiagnosis(x,y) ∧ BacterialInfection(y)`` under the
    Table 1 ontology is equivalent to the UCQ asking for a diagnosed
    bacterial infection / Lyme disease / listeriosis, or a finding of
    Erythema Migrans (which entails an anonymous Lyme diagnosis).
    """
    return DisjunctiveDatalogProgram(
        [
            Rule((goal_atom(X),), (Atom(HAS_DIAGNOSIS, (X, Y)), Atom(BACTERIAL, (Y,)))),
            Rule((goal_atom(X),), (Atom(HAS_DIAGNOSIS, (X, Y)), Atom(LYME, (Y,)))),
            Rule((goal_atom(X),), (Atom(HAS_DIAGNOSIS, (X, Y)), Atom(LISTERIOSIS, (Y,)))),
            Rule((goal_atom(X),), (Atom(HAS_FINDING, (X, Y)), Atom(ERYTHEMA, (Y,)))),
        ]
    )


def predisposition_rewriting() -> DisjunctiveDatalogProgram:
    """Example 2.2's (recursive) datalog rewriting of q2."""
    return DisjunctiveDatalogProgram(
        [
            Rule((Atom(DERIVED, (X,)),), (Atom(PREDISPOSITION, (X,)),)),
            Rule(
                (Atom(DERIVED, (X,)),),
                (Atom(HAS_PARENT, (X, Y)), Atom(DERIVED, (Y,))),
            ),
            Rule((goal_atom(X),), (Atom(DERIVED, (X,)),)),
        ]
    )


def _stream_answers(report) -> list:
    return [answers for step in report.answers for answers in step.values()]


def _routed_vs_forced_stream(benchmark, name, program, events, expected_tier):
    """Benchmark the routed session, time the forced-tier-2 twin, compare."""
    plan = plan_program(program)
    assert plan.tier == expected_tier, plan.rationale

    def routed():
        session = ObdaSession({name: program})
        return replay(session, events)

    report = benchmark.pedantic(routed, rounds=3, iterations=1)
    forced_session = ObdaSession({name: program}, force_tier=TIER_GROUND_SAT)
    forced_report = replay(forced_session, events)
    routed_answers = _stream_answers(report)
    assert routed_answers == _stream_answers(forced_report), (
        f"{name}: routed tier-{plan.tier} answers diverge from forced tier-2"
    )
    assert any(routed_answers), f"{name}: the stream never produced an answer"
    speedup = forced_report.elapsed_s / report.elapsed_s
    print(
        f"\n[E-PLAN] {name}: tier {plan.tier} ({plan.tier_name}) "
        f"routed {report.elapsed_s:.3f}s vs forced tier-2 "
        f"{forced_report.elapsed_s:.3f}s -> {speedup:.1f}x "
        f"({report.queries} queries)"
    )
    _record(
        "workloads",
        name,
        tier=plan.tier,
        tier_name=plan.tier_name,
        rationale=plan.rationale,
        routed_s=round(report.elapsed_s, 4),
        forced_tier2_s=round(forced_report.elapsed_s, 4),
        speedup_vs_forced_tier2=round(speedup, 2),
        queries=report.queries,
        answers_identical=True,
    )
    return speedup


def test_planner_tier0_medical_stream(benchmark):
    """Table 1 q1 (UCQ rewriting) routes to tier 0: stateless join
    evaluation beats the guarded-solver serving state by ≥ 3x."""
    events = random_stream(
        medical_universe(patients=25, generations=0),
        length=100,
        seed=11,
        query_every=1,
    )
    speedup = _routed_vs_forced_stream(
        benchmark, "table1_medical_q1", bacterial_ucq_rewriting(), events, 0
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"tier-0 routing only {speedup:.1f}x faster (required {REQUIRED_SPEEDUP}x)"
    )


def test_planner_tier1_rewriting_stream(benchmark):
    """Table 1 q2 (datalog rewriting) routes to tier 1: DRed-maintained
    fixpoint beats per-candidate solving by ≥ 3x."""
    events = random_stream(
        medical_universe(patients=0, generations=150),
        length=100,
        seed=41,  # keeps the (single) predisposition root live long enough
        query_every=1,
    )
    speedup = _routed_vs_forced_stream(
        benchmark, "datalog_rewriting_q2", predisposition_rewriting(), events, 1
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"tier-1 routing only {speedup:.1f}x faster (required {REQUIRED_SPEEDUP}x)"
    )


def test_planner_tier2_cocsp_control(benchmark):
    """coCSP(K3) is genuinely disjunctive: the planner must keep it on the
    ground+CDCL tier, and routing must not change its answers."""
    program = csp_to_mddlog(three_colourability_template())
    plan = plan_program(program)
    assert plan.tier == TIER_GROUND_SAT, plan.rationale

    rng = random.Random(7)
    vertices = [f"v{i}" for i in range(12)]
    edge = RelationSymbol("edge", 2)
    facts = [
        Fact(edge, (a, b))
        for a in vertices
        for b in vertices
        if a != b and rng.random() < 0.35
    ]
    instance = Instance(facts)

    routed = benchmark.pedantic(
        lambda: evaluate(program, instance), rounds=3, iterations=1
    )
    forced = evaluate(program, instance, force_tier=TIER_GROUND_SAT)
    assert routed == forced
    _record(
        "workloads",
        "cocsp_k3_control",
        tier=plan.tier,
        tier_name=plan.tier_name,
        rationale=plan.rationale,
        answers_identical=True,
    )


# ---------------------------------------------------------------------------
# Randomized cross-validation: every sound tier, identical answers
# ---------------------------------------------------------------------------

A = RelationSymbol("A", 1)
B = RelationSymbol("B", 1)
EDGE = RelationSymbol("edge", 2)
P = RelationSymbol("P", 1)
Q = RelationSymbol("Q", 1)


def _random_tiered_program(rng: random.Random) -> DisjunctiveDatalogProgram:
    """Random programs spread across all three tiers: disjunction-free
    chains (recursive or not), constraints, and occasional disjunction."""
    goal_arity = rng.choice([0, 1])
    rules = []
    disjunctive = rng.random() < 0.25
    recursive = rng.random() < 0.5
    rules.append(Rule((Atom(P, (X,)),), (Atom(A, (X,)),)))
    if recursive:
        rules.append(
            Rule((Atom(P, (Y,)),), (Atom(P, (X,)), Atom(EDGE, (X, Y))))
        )
    else:
        rules.append(Rule((Atom(Q, (X,)),), (Atom(P, (X,)), Atom(B, (X,)))))
    if disjunctive:
        rules.append(Rule((Atom(P, (X,)), Atom(Q, (X,))), (adom_atom(X),)))
    if rng.random() < 0.4:
        rules.append(Rule((), (Atom(P, (X,)), Atom(EDGE, (X, X)))))
    body_rel = P if recursive else Q
    if goal_arity == 0:
        rules.append(Rule((goal_atom(),), (Atom(body_rel, (X,)),)))
    else:
        rules.append(Rule((goal_atom(X),), (Atom(body_rel, (X,)), adom_atom(Y))))
    return DisjunctiveDatalogProgram(rules)


def _random_instance(rng: random.Random) -> Instance:
    domain = list(range(1, rng.randint(3, 5)))
    facts = []
    for element in domain:
        for symbol in (A, B):
            if rng.random() < 0.5:
                facts.append(Fact(symbol, (element,)))
    for a in domain:
        for b in domain:
            if rng.random() < 0.35:
                facts.append(Fact(EDGE, (a, b)))
    return Instance(facts)


def test_planner_crossval_randomized_programs():
    """Force every sound tier on random programs/instances: identical
    certain answers everywhere, and the routed result matches too."""
    rng = random.Random(20260730)
    tier_counts = {0: 0, 1: 0, 2: 0}
    trials = 40
    for _ in range(trials):
        program = _random_tiered_program(rng)
        instance = _random_instance(rng)
        plan = plan_program(program)
        tier_counts[plan.tier] += 1
        reference = evaluate(program, instance, force_tier=TIER_GROUND_SAT)
        assert evaluate(program, instance) == reference, plan.rationale
        for tier in (0, 1):
            try:
                plan_for_tier(program, tier)
            except ValueError:
                continue
            forced = evaluate(program, instance, force_tier=tier)
            assert forced == reference, (
                f"tier {tier} diverges on {program!r}"
            )
    assert all(tier_counts.values()), f"tier coverage gap: {tier_counts}"
    _record(
        "crossval",
        "randomized_programs",
        trials=trials,
        tiers_exercised=tier_counts,
        identical=True,
    )


def test_planner_one_shot_ratios():
    """One-shot evaluate() ratios on sizeable instances (recorded,
    unasserted: the streaming numbers above are the acceptance bar)."""
    program = bacterial_ucq_rewriting()
    facts = []
    for i in range(300):
        patient, item = f"p{i}", f"o{i}"
        if i % 2:
            facts.extend(
                [Fact(HAS_DIAGNOSIS, (patient, item)), Fact(LISTERIOSIS, (item,))]
            )
        else:
            facts.extend(
                [Fact(HAS_FINDING, (patient, item)), Fact(ERYTHEMA, (item,))]
            )
    instance = Instance(facts)
    timings = {}
    for label, tier in (("routed", None), ("forced_tier2", TIER_GROUND_SAT)):
        start = time.perf_counter()
        answers = (
            evaluate(program, instance)
            if tier is None
            else evaluate(program, instance, force_tier=tier)
        )
        timings[label] = time.perf_counter() - start
        timings[f"{label}_answers"] = len(answers)
    assert timings["routed_answers"] == timings["forced_tier2_answers"] == 300
    _record(
        "crossval",
        "one_shot_medical_ucq",
        routed_s=round(timings["routed"], 4),
        forced_tier2_s=round(timings["forced_tier2"], 4),
        ratio=round(timings["forced_tier2"] / timings["routed"], 2),
    )


def test_planner_report_mentions_all_workloads():
    """The routing report (the CI artifact) covers the three workloads."""
    with open(REPORT_PATH) as handle:
        report = json.load(handle)
    for name in ("table1_medical_q1", "datalog_rewriting_q2", "cocsp_k3_control"):
        assert name in report["workloads"], name
