"""E-36 / E-311 — Theorems 3.6, 3.11, 3.12: eliminating inverse roles,
transitive roles and role hierarchies.

Measures the size of the rewritten ontologies on growing ALCI / SHI inputs
(polynomial-per-step shape) and re-checks that certain answers are preserved
on concrete data.
"""

import pytest

from repro.core import Fact, Instance, RelationSymbol, Schema, atomic_query
from repro.dl import (
    ConceptInclusion,
    ConceptName,
    Exists,
    Ontology,
    Role,
    RoleInclusion,
    TransitiveRole,
    eliminate_inverse_roles,
    eliminate_transitive_roles,
    inverse,
    shi_to_alc,
)
from repro.omq import OntologyMediatedQuery


def alci_chain_ontology(n: int) -> Ontology:
    axioms = []
    for i in range(n):
        axioms.append(
            ConceptInclusion(
                Exists(inverse("R"), ConceptName(f"A{i}")), ConceptName(f"A{i+1}")
            )
        )
    return Ontology(axioms)


@pytest.mark.parametrize("n", [1, 2, 4])
def test_thm36_inverse_elimination_size(benchmark, n):
    ontology = alci_chain_ontology(n)
    rewritten, _ = benchmark(lambda: eliminate_inverse_roles(ontology))
    print(
        f"\n[E-36] ALCI chain n={n}: |O| = {ontology.size()} -> |O'| = {rewritten.size()} "
        f"(inverse-free: {not rewritten.uses_inverse_roles()})"
    )
    assert not rewritten.uses_inverse_roles()


def test_thm36_preserves_certain_answers(benchmark):
    ontology = alci_chain_ontology(2)
    rewritten, _ = eliminate_inverse_roles(ontology)
    schema = Schema.binary(["A0", "A1", "A2"], ["R"])
    omq = OntologyMediatedQuery(
        ontology=rewritten, query=atomic_query("A2"), data_schema=schema
    )
    data = Instance(
        [
            Fact(RelationSymbol("A0", 1), ("a",)),
            Fact(RelationSymbol("R", 2), ("a", "b")),
            Fact(RelationSymbol("R", 2), ("b", "c")),
        ]
    )
    answers = benchmark(lambda: omq.certain_answers(data))
    print(
        f"\n[E-36] A2 answers after elimination: {sorted(answers)} "
        "(expected: c — the element two R-steps downstream of the A0 fact)"
    )
    assert answers == {("c",)}
    # The intermediate level is reached one step earlier.
    intermediate = OntologyMediatedQuery(
        ontology=rewritten, query=atomic_query("A1"), data_schema=schema
    )
    assert intermediate.certain_answers(data) == {("b",)}


def test_thm311_shi_to_alc(benchmark):
    ontology = Ontology(
        [
            TransitiveRole(Role("R")),
            RoleInclusion(Role("S"), Role("R")),
            ConceptInclusion(Exists(Role("R"), ConceptName("A")), ConceptName("B")),
        ]
    )
    rewritten = benchmark(lambda: shi_to_alc(ontology))
    print(
        f"\n[E-311] SHI -> ALC: |O| = {ontology.size()} -> |O'| = {rewritten.size()}, "
        f"dialect {rewritten.dialect()}"
    )
    assert rewritten.dialect() == "ALC"


def test_thm311_transitivity_preserved_for_aq(benchmark):
    """trans(R) with ∃R.A ⊑ B: after elimination, B propagates along R-chains."""
    ontology = Ontology(
        [
            TransitiveRole(Role("R")),
            ConceptInclusion(Exists(Role("R"), ConceptName("A")), ConceptName("B")),
        ]
    )
    rewritten = eliminate_transitive_roles(ontology)
    schema = Schema.binary(["A", "B"], ["R"])
    omq = OntologyMediatedQuery(
        ontology=rewritten, query=atomic_query("B"), data_schema=schema
    )
    data = Instance(
        [
            Fact(RelationSymbol("R", 2), ("x", "y")),
            Fact(RelationSymbol("R", 2), ("y", "z")),
            Fact(RelationSymbol("A", 1), ("z",)),
        ]
    )
    answers = benchmark(lambda: omq.certain_answers(data))
    print(f"\n[E-311] answers with compiled transitivity: {sorted(answers)} (expected x and y)")
    assert answers == {("x",), ("y",)}
