"""E-515 / E-516 / E-310 / E-61 — Theorems 5.10, 5.15, 5.16, 3.10 and Section 6:
FO- and datalog-rewritability, separations, and the schema-free case.

Decides FO-/datalog-rewritability for the CSP zoo and for the paper's OMQs
(Example 2.2 q2 is the datalog-but-not-FO case the paper highlights),
constructs concrete rewritings, and re-runs the decisions for the schema-free
variants.
"""

import pytest

from repro.csp import (
    bounded_obstruction_set,
    canonical_arc_consistency_program,
    cocsp_datalog_rewritable,
    cocsp_fo_rewritable,
    rewriting_agrees_on,
    ucq_rewriting_from_obstructions,
)
from repro.obda import omq_datalog_rewritable, omq_fo_rewritable, schema_free_variant
from repro.workloads.csp_zoo import ZOO, cycle_graph, directed_path_template
from repro.workloads.medical import example_4_5_omq, family_instance
from repro.workloads.separations import gfo_d0, gfo_d1, gfo_query_holds


@pytest.mark.parametrize("name", ["directed-path", "2-colourability", "3-colourability"])
def test_thm510_csp_rewritability(benchmark, name):
    entry = ZOO[name]
    template = entry["template"]()

    def decide():
        return cocsp_fo_rewritable(template), cocsp_datalog_rewritable(template)

    fo, datalog = benchmark(decide)
    print(f"\n[E-515] {name:18s}: FO-rewritable={fo} (expected {entry['fo']}), "
          f"datalog-rewritable={datalog} (expected {entry['datalog']})")
    assert fo == entry["fo"]
    assert datalog == entry["datalog"]


def test_thm510_fo_rewriting_construction(benchmark):
    template = directed_path_template(1)
    obstructions = benchmark(lambda: bounded_obstruction_set(template, 3, 2))
    rewriting = ucq_rewriting_from_obstructions(obstructions)
    data = [cycle_graph(3), cycle_graph(4), directed_path_template(1)]
    assert rewriting_agrees_on(template, rewriting, data)
    print(f"\n[E-515] FO-rewriting of coCSP(single edge): {len(rewriting)} UCQ disjunct(s)")


def test_thm516_omq_rewritability(benchmark):
    omq = example_4_5_omq()

    def decide():
        return omq_fo_rewritable(omq), omq_datalog_rewritable(omq)

    fo, datalog = benchmark(decide)
    print(
        f"\n[E-516] Example 2.2 q2 / 4.5: FO-rewritable={fo}, datalog-rewritable={datalog} "
        f"(paper: datalog yes — the program of Example 2.2 — FO no)"
    )
    assert not fo and datalog


def test_thm516_datalog_rewriting_evaluates_correctly(benchmark):
    """The canonical arc-consistency program is a working datalog rewriting of
    the Example 4.5 complement template on chain data."""
    from repro.translations import omq_to_csp
    from repro.csp.rewritability import marked_template_expansion

    omq = example_4_5_omq()
    encoding = omq_to_csp(omq)
    expanded = marked_template_expansion(encoding.marked_templates[0])
    program = benchmark(lambda: canonical_arc_consistency_program(expanded))
    print(f"\n[E-516] canonical datalog rewriting: {len(program)} rules over "
          f"{len(program.idb_relations)} IDB predicates")
    assert program.is_disjunction_free()


def test_e310_gfo_separation(benchmark):
    """E-310: the (GFO,UCQ) query of Proposition 3.15 distinguishes D1 from D0,
    the combinatorial core of the separation from MDDlog."""

    def evaluate():
        return gfo_query_holds(gfo_d1(4)), gfo_query_holds(gfo_d0(4))

    on_d1, on_d0 = benchmark(evaluate)
    print(f"\n[E-310] Proposition 3.15: Q(D1)={on_d1}, Q(D0)={on_d0} (paper: 1 / 0)")
    assert on_d1 and not on_d0


def test_e61_schema_free_rewritability(benchmark):
    """E-61: Section 6 — the schema-free variant has the same rewritability
    status as the fixed-schema query."""
    omq = example_4_5_omq()
    free = schema_free_variant(omq)

    def decide():
        return (
            omq_fo_rewritable(free) == omq_fo_rewritable(omq),
            omq_datalog_rewritable(free) == omq_datalog_rewritable(omq),
        )

    fo_match, datalog_match = benchmark(decide)
    print(f"\n[E-61] schema-free decisions match fixed-schema: FO={fo_match}, datalog={datalog_match}")
    assert fo_match and datalog_match


def test_e61_schema_free_answers(benchmark):
    omq = schema_free_variant(example_4_5_omq())
    data = family_instance(3, predisposed_root=True)
    answers = benchmark(lambda: omq.certain_answers(data))
    assert len(answers) == 4
