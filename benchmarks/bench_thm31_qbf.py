"""E-31 — Theorem 3.1: Πp2-hardness of MDDlog evaluation via the 2QBF reduction.

Regenerates the reduction for a sweep of formula sizes and checks that the
MDDlog evaluation agrees with brute-force 2QBF validity, timing the DDlog
certain-answer evaluator on the reduced instances.
"""

import pytest

from repro.datalog import evaluate_boolean
from repro.workloads.qbf import qbf_instance, qbf_program, random_qbf


@pytest.mark.parametrize("num_universals,num_clauses", [(1, 2), (2, 2), (2, 3)])
def test_qbf_reduction_sweep(benchmark, num_universals, num_clauses):
    qbf = random_qbf(num_universals, 2, num_clauses, seed=num_clauses)
    program = qbf_program(qbf)
    instance = qbf_instance(qbf)

    result = benchmark(lambda: evaluate_boolean(program, instance))
    expected = qbf.is_valid()
    print(
        f"\n[E-31] ∀{num_universals}∃2, {num_clauses} clauses: "
        f"program size {program.size()}, instance size {len(instance)}, "
        f"valid={expected}, MDDlog={result}"
    )
    assert result == expected
