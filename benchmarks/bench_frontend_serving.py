"""E-FRONT — Multi-tenant serving: 10k tenants, group commit, admission.

PR 10's asyncio frontend multiplexes many tenants over shared compiled
sessions.  This benchmark certifies the three serving claims end to end:

* **scale** — 10,000 tenants register across three structurally distinct
  workload shapes; the plan cache interns them to three shared sessions
  (cross-tenant sharing is what makes registration and serving cheap), and
  an open-loop read stream over a tenant sample reports p50/p99 latency;
* **group commit** — a write-heavy churn segment (concurrent closed-loop
  writers deleting and re-inserting *distinct* mid-chain edges of a
  recursive reachability program, so batch coalescing cannot cancel any
  work) must run at least ``REQUIRED_SPEEDUP``x faster through the batched
  frontend than through a per-request twin that commits every op on its
  critical path — and answers must be identical: sampled concurrent reads
  are validated answer-for-answer against ``replay_commit_log`` at their
  versions, and the final states of both frontends against from-scratch
  recomputation;
* **admission** — a storm against a small-budget frontend must actually
  shed load (tier-2 first), and the shed counts land in the artifact.

The verdict is written to ``results/FRONTEND_SERVING.json`` (a CI artifact
next to ``ADAPTIVE_ROUTING.json``); ``run_all.py --check-only``
re-validates the committed document on every PR.
"""

import asyncio
import json
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.core import Atom, Fact, RelationSymbol, Variable
from repro.datalog import DisjunctiveDatalogProgram, Rule, goal_atom
from repro.obs.telemetry import Reservoir
from repro.service import (
    FaultInjector,
    Frontend,
    FrontendConfig,
    FrontendRejected,
    ObdaSession,
    from_scratch_answers,
    replay_commit_log,
    validate_explain,
)

#: Group commit must beat per-request commits by at least this factor on
#: the write-heavy segment.
REQUIRED_SPEEDUP = 3.0
REPORT_SCHEMA = "frontend-serving/v1"
REPORT_PATH = Path(__file__).resolve().parent / "results" / "FRONTEND_SERVING.json"

TENANTS = 10_000
READ_SAMPLE = 2_000
CHAIN = 64
WRITERS = 24
CYCLES = 8  # delete+reinsert cycles per writer

A = RelationSymbol("A", 1)
B = RelationSymbol("B", 1)
EDGE = RelationSymbol("edge", 2)
START = RelationSymbol("start", 1)
REACH = RelationSymbol("reach", 1)
P = RelationSymbol("P", 1)
Q = RelationSymbol("Q", 1)


def reach_program(tag: str) -> DisjunctiveDatalogProgram:
    """Tier 1 (recursive reachability) — alpha-renamed per tenant."""
    x, y = Variable(f"{tag}0"), Variable(f"{tag}1")
    return DisjunctiveDatalogProgram(
        (
            Rule((Atom(REACH, (x,)),), (Atom(START, (x,)),)),
            Rule((Atom(REACH, (y,)),), (Atom(REACH, (x,)), Atom(EDGE, (x, y)))),
            Rule((goal_atom(x),), (Atom(REACH, (x,)),)),
        )
    )


def conj_program(tag: str) -> DisjunctiveDatalogProgram:
    """Tier 0 (nonrecursive conjunction)."""
    x = Variable(f"{tag}0")
    return DisjunctiveDatalogProgram(
        (Rule((goal_atom(x),), (Atom(A, (x,)), Atom(B, (x,)))),)
    )


def disjunctive_program(tag: str) -> DisjunctiveDatalogProgram:
    """Tier 2 (disjunctive heads)."""
    x = Variable(f"{tag}0")
    return DisjunctiveDatalogProgram(
        (
            Rule((Atom(P, (x,)), Atom(Q, (x,))), (Atom(A, (x,)),)),
            Rule((goal_atom(x),), (Atom(P, (x,)),)),
            Rule((goal_atom(x),), (Atom(Q, (x,)),)),
        )
    )


SHAPES = (reach_program, conj_program, disjunctive_program)


def chain_facts() -> list[Fact]:
    facts = [Fact(START, ("g0",))]
    facts += [Fact(EDGE, (f"g{i}", f"g{i + 1}")) for i in range(CHAIN)]
    return facts


def ab_facts() -> list[Fact]:
    return [
        Fact(relation, (f"m{i}",)) for i in range(40) for relation in (A, B)
    ]


def churn_ops(writer: int) -> list[tuple[str, Fact]]:
    """The writer's closed-loop op sequence: churn one distinct mid-chain
    edge per writer.  Awaiting each commit before the next op guarantees a
    delete and its re-insert never share a batch, so coalescing never
    cancels an op — the measured speedup is batching, not batch no-ops."""
    edge = Fact(EDGE, (f"g{8 + writer}", f"g{9 + writer}"))
    return [("delete", edge), ("insert", edge)] * CYCLES


def register_fleet(frontend: Frontend) -> float:
    """Register the 10k-tenant fleet; returns wall seconds."""
    started = time.perf_counter()
    for index in range(TENANTS):
        shape = SHAPES[index % len(SHAPES)]
        tier = 2 if index % 4 == 3 else 1
        frontend.register_tenant(
            f"t{index}", workload={"q": shape(f"v{index}_")}, tier=tier
        )
    return time.perf_counter() - started


async def seed_groups(frontend: Frontend) -> None:
    await frontend.insert("t0", chain_facts())  # reach group
    await frontend.insert("t1", ab_facts())  # conj group
    await frontend.insert("t2", ab_facts())  # disjunctive group
    await frontend.drain()


async def read_stream(frontend: Frontend) -> Reservoir:
    """Open-loop read arrivals over a tenant sample, in waves of tasks."""
    latency = Reservoir(capacity=READ_SAMPLE)
    stride = TENANTS // READ_SAMPLE
    sample = [f"t{index * stride}" for index in range(READ_SAMPLE)]
    for wave_start in range(0, len(sample), 250):
        wave = sample[wave_start : wave_start + 250]
        results = await asyncio.gather(
            *(frontend.query(tenant, "q") for tenant in wave)
        )
        for result in results:
            latency.observe(result.elapsed_s)
    return latency


async def write_segment(frontend: Frontend) -> dict:
    """The write-heavy segment, twice over identical churn:

    * through ``frontend`` — ``WRITERS`` concurrent closed-loop writer
      tenants whose ops group-commit into shared batches, with a trickle
      of concurrent reads validated against the serial twin;
    * through a per-request twin seeded with the identical starting
      instance, where every op commits before the next is issued.
    """
    reach_session = frontend.session("t0")
    start_facts = list(reach_session.instance.facts)

    async def writer(tenant: str, index: int):
        for kind, fact in churn_ops(index):
            if kind == "delete":
                await frontend.delete(tenant, [fact])
            else:
                await frontend.insert(tenant, [fact])

    reads = []

    async def reader(tenant: str):
        for _ in range(4):
            reads.append(await frontend.query(tenant, "q"))
            await asyncio.sleep(0.001)

    started = time.perf_counter()
    await asyncio.gather(
        *(writer(f"t{3 * index}", index) for index in range(WRITERS)),
        *(reader(f"t{3 * (WRITERS + index)}") for index in range(10)),
    )
    await frontend.drain()
    grouped_s = time.perf_counter() - started

    # the serial twin: identical churn, one committed epoch per request
    twin = Frontend(
        session=ObdaSession(
            {"q": reach_program("tw")}, initial_facts=start_facts
        ),
        config=FrontendConfig(max_batch=1, max_delay_s=0.0),
    )
    twin.register_tenant("client")
    ops = [op for index in range(WRITERS) for op in churn_ops(index)]
    started = time.perf_counter()
    for kind, fact in ops:
        if kind == "delete":
            await twin.delete("client", [fact])
        else:
            await twin.insert("client", [fact])
    per_request_s = time.perf_counter() - started

    # answers identical, answer for answer: every concurrent read equals
    # the serial replay of the grouped commit log at the read's version
    # (the full log — entry 1 is the seeding insert, so the replay twin
    # reconstructs every version from the empty instance)
    log = frontend.commit_log("t0")
    versions = {read.version for read in reads} | {len(log)}
    replayed = replay_commit_log(
        frontend.programs("t0"), log, versions=versions
    )
    for read in reads:
        assert read.answers == replayed[read.version]["q"]
    # ... and the final states of both frontends agree with each other,
    # with the replayed log, and with from-scratch recomputation
    final = reach_session.certain_answers("q")
    assert final == replayed[len(log)]["q"]
    assert final == twin.session().certain_answers("q")
    assert final == from_scratch_answers(reach_session, "q")
    assert final == from_scratch_answers(twin.session(), "q")

    batching = frontend.explain("t0")["frontend"]["batching"]
    twin_flushes = twin.explain()["frontend"]["batching"]["flushes"]
    await twin.close()
    assert twin_flushes == len(ops), "the twin must commit per request"
    speedup = per_request_s / grouped_s
    print(
        f"\n[E-FRONT] write-heavy: grouped {grouped_s:.3f}s "
        f"({batching['flushes']} flushes, mean batch "
        f"{batching['mean_batch']:.1f}) vs per-request {per_request_s:.3f}s "
        f"({twin_flushes} flushes) -> {speedup:.1f}x"
    )
    return {
        "ops": len(ops),
        "validated_reads": len(reads),
        "group_commit_s": round(grouped_s, 4),
        "per_request_s": round(per_request_s, 4),
        "speedup": round(speedup, 2),
        "flushes": batching["flushes"],
        "mean_batch": round(batching["mean_batch"], 2),
    }


async def admission_storm() -> dict:
    """Flood a small-budget frontend; tier-2 load must shed first."""
    frontend = Frontend(
        workload={"q": conj_program("st")},
        config=FrontendConfig(
            max_batch=16, max_delay_s=0.001, max_pending=48, degrade_limit=12
        ),
        faults=FaultInjector(query_delay_s=0.003),
    )
    for index in range(32):
        frontend.register_tenant(f"s{index}", tier=2 if index % 2 else 1)
    await frontend.insert("s0", ab_facts())
    await frontend.drain()
    await frontend.query("s1", "q")  # warm the degraded-read cache

    async def read(tenant: str):
        try:
            return await frontend.query(tenant, "q")
        except FrontendRejected:
            return None

    async def write(tenant: str, index: int):
        try:
            return await frontend.insert(tenant, [Fact(A, (f"x{index}",))])
        except FrontendRejected:
            return None

    await asyncio.gather(
        *(read(f"s{index % 32}") for index in range(300)),
        *(write(f"s{2 * (index % 16) + 1}", index) for index in range(60)),
    )
    await frontend.drain()
    report = frontend.explain()
    assert validate_explain(report) == []
    admission = report["frontend"]["admission"]
    await frontend.close()
    print(
        f"[E-FRONT] admission storm: rejected {admission['rejected']}, "
        f"degraded {admission['degraded']}, by tier {admission['by_tier']}"
    )
    return {
        "offered": 360,
        "rejected": admission["rejected"],
        "degraded": admission["degraded"],
        "rejected_by_tier": {
            str(tier): count for tier, count in admission["by_tier"].items()
        },
    }


def test_frontend_serving_end_to_end(benchmark):
    """The tentpole end to end: 10k tenants, three shared sessions, an
    open-loop read stream, the ≥3x group-commit gate, and a shed storm."""
    # max_batch == WRITERS: the closed-loop writers stay synchronized, so
    # every churn round seals on the size trigger instead of idling out
    # the deadline.
    frontend = Frontend(
        config=FrontendConfig(max_batch=WRITERS, max_delay_s=0.002)
    )
    register_s = register_fleet(frontend)
    assert frontend.tenant_count == TENANTS
    assert frontend.group_count == len(SHAPES), (
        "structurally identical workloads must intern to shared sessions"
    )
    asyncio.run(seed_groups(frontend))

    latency = benchmark.pedantic(
        lambda: asyncio.run(read_stream(frontend)), rounds=1, iterations=1
    )
    writes = asyncio.run(write_segment(frontend))
    report = frontend.explain("t0")
    assert validate_explain(report) == []
    asyncio.run(frontend.close())
    sheds = asyncio.run(admission_storm())

    print(
        f"[E-FRONT] {TENANTS} tenants registered in {register_s:.2f}s; "
        f"{len(latency)} reads p50 {latency.quantile(0.5) * 1e6:.0f}us "
        f"p99 {latency.quantile(0.99) * 1e6:.0f}us"
    )
    document = {
        "schema": REPORT_SCHEMA,
        "generated_at": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        "tenants": TENANTS,
        "groups": len(SHAPES),
        "register_s": round(register_s, 3),
        "read_segment": {
            "reads": len(latency),
            "p50_s": latency.quantile(0.5),
            "p99_s": latency.quantile(0.99),
        },
        "write_segment": writes,
        "admission_segment": sheds,
        "required_speedup": REQUIRED_SPEEDUP,
        "answers_identical": True,
    }
    REPORT_PATH.parent.mkdir(parents=True, exist_ok=True)
    with open(REPORT_PATH, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")

    assert writes["speedup"] >= REQUIRED_SPEEDUP, (
        f"group commit only {writes['speedup']:.2f}x over per-request "
        f"(required {REQUIRED_SPEEDUP}x)"
    )
    assert sheds["rejected"] > 0 and sheds["degraded"] > 0, (
        "the storm never shed load — admission control was not exercised"
    )


def test_frontend_report_is_committed_and_sound():
    """The committed CI artifact matches what ``run_all.py --check-only``
    re-validates: schema tag, the speedup gate, scale, and shed counts."""
    with open(REPORT_PATH) as handle:
        document = json.load(handle)
    assert document["schema"] == REPORT_SCHEMA
    assert document["answers_identical"] is True
    assert document["tenants"] >= 10_000
    assert document["write_segment"]["speedup"] >= document["required_speedup"]
    assert document["read_segment"]["p50_s"] is not None
    assert document["read_segment"]["p99_s"] is not None
    assert document["admission_segment"]["rejected"] > 0
    assert document["admission_segment"]["degraded"] > 0
