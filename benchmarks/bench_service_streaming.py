"""E-SRV — The OBDA serving layer under streaming ABox updates.

Replays interleaved insert/delete/query streams through a compiled
:class:`ObdaSession` and compares against from-scratch recomputation (full
reground + fresh solver per query), certifying the acceptance criterion of
the serving subsystem: across a 100-update stream, incremental maintenance
must be at least 5x faster than 100 from-scratch recomputations while
returning identical answers on every step.

Workloads: the Table 1 medical workload — the bacterial-infection UCQ
compiled to MDDlog (Theorem 3.3) and the recursive
hereditary-predisposition query as its plain-datalog rewriting (Example
2.2) served from one session — and non-3-colourability over a churning
random digraph from the CSP zoo (coCSP(K3), Theorem 4.6).
"""

from pathlib import Path

from repro.core import Atom, RelationSymbol, Variable
from repro.datalog import DisjunctiveDatalogProgram, Rule, goal_atom
from repro.obs import enabled, validate_trace_file, write_chrome_trace
from repro.omq.certain import compile_to_mddlog
from repro.service import (
    ObdaSession,
    from_scratch_stream_cost,
    graph_universe,
    medical_universe,
    random_stream,
    replay,
)
from repro.translations.csp_templates import csp_to_mddlog
from repro.workloads.csp_zoo import three_colourability_template
from repro.workloads.medical import example_2_1_omq

REQUIRED_SPEEDUP = 5.0

#: The committed enabled-mode trace of the 100-update Table 1 stream
#: (Chrome trace-event JSON; load it at https://ui.perfetto.dev).
TRACE_PATH = Path(__file__).resolve().parent / "results" / "TRACE_SERVING.json"

#: Counters surfaced into ``benchmark.extra_info`` (and from there into the
#: consolidated ``run_all.py`` output) alongside the timings.
_REPORTED_COUNTERS = (
    "fixpoint.rounds",
    "fixpoint.rows_derived",
    "join.plans_executed",
    "join.rows_in",
    "delta.clauses_emitted",
    "dred.overdeleted",
    "dred.rederived",
    "sat.solve_calls",
    "sat.conflicts",
    "sat.propagations",
    "session.clauses_pushed",
    "session.queries",
)


def _traced_replay(workload, events, trace_path=None):
    """One enabled-mode pass of the stream, outside the timed rounds.

    Returns the counters to report via ``benchmark.extra_info``; when
    ``trace_path`` is given, also exports (and validates) the Chrome
    trace-event document of the whole pass.
    """
    with enabled() as tel:
        session = ObdaSession(workload)
        replay(session, events)
    if trace_path is not None:
        write_chrome_trace(tel, trace_path, process_name="repro-serving")
        errors = validate_trace_file(trace_path)
        assert not errors, f"exported trace invalid: {errors[:3]}"
    return {name: int(tel.counter(name)) for name in _REPORTED_COUNTERS}


def _report_counters(benchmark, counters):
    extra = getattr(benchmark, "extra_info", None)
    if extra is not None:  # absent under --benchmark-disable on old plugins
        extra.update(counters)


def _predisposition_rewriting() -> DisjunctiveDatalogProgram:
    """Example 2.2's datalog rewriting of q2 (paper, Section 1 / Table 1)."""
    predisposition = RelationSymbol("HereditaryPredisposition", 1)
    parent = RelationSymbol("HasParent", 2)
    derived = RelationSymbol("P__derived", 1)
    x, y = Variable("x"), Variable("y")
    return DisjunctiveDatalogProgram(
        [
            Rule((Atom(derived, (x,)),), (Atom(predisposition, (x,)),)),
            Rule(
                (Atom(derived, (x,)),),
                (Atom(parent, (x, y)), Atom(derived, (y,))),
            ),
            Rule((goal_atom(x),), (Atom(derived, (x,)),)),
        ]
    )


def _assert_stream_equivalence(session, events, report, label):
    scratch_s, scratch_answers = from_scratch_stream_cost(session, events)
    incremental = [a for step in report.answers for a in step.values()]
    assert incremental == scratch_answers, f"{label}: answers diverge"
    speedup = scratch_s / report.elapsed_s
    print(
        f"\n[E-SRV] {label}: incremental {report.elapsed_s:.2f}s vs "
        f"from-scratch {scratch_s:.2f}s -> {speedup:.1f}x "
        f"({report.queries} queries, {session.stats.epoch} epochs, "
        f"{session.stats.clauses_pushed} clauses pushed)"
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"{label}: incremental maintenance only {speedup:.1f}x faster "
        f"(required {REQUIRED_SPEEDUP}x)"
    )


def test_streaming_medical_workload(benchmark):
    """Table 1 served end-to-end: compile both queries once, 100 updates,
    both queries answered after every update."""
    workload = {
        "q1_bacterial": compile_to_mddlog(example_2_1_omq()),
        "q2_predisposition": _predisposition_rewriting(),
    }
    events = random_stream(
        medical_universe(patients=4, generations=3),
        length=100,
        seed=11,
        query_every=1,
    )

    def run():
        session = ObdaSession(workload)
        return session, replay(session, events)

    session, report = benchmark.pedantic(run, rounds=2, iterations=1)
    assert report.queries == 100
    _assert_stream_equivalence(session, events, report, "medical workload stream")
    # Enabled-mode pass (after timing): export the committed serving trace
    # and surface the work counters next to the timings.
    _report_counters(benchmark, _traced_replay(workload, events, TRACE_PATH))


def test_streaming_datalog_rewriting_fixpoint(benchmark):
    """The recursive query alone over a long ancestry chain: semi-naive /
    DRed fixpoint maintenance versus reground-and-solve per query."""
    program = _predisposition_rewriting()
    events = random_stream(
        medical_universe(patients=0, generations=150),
        length=100,
        seed=13,
        query_every=1,
    )

    def run():
        session = ObdaSession(program)
        return session, replay(session, events)

    session, report = benchmark.pedantic(run, rounds=3, iterations=1)
    assert report.queries == 100
    _assert_stream_equivalence(session, events, report, "datalog-rewriting stream")
    _report_counters(benchmark, _traced_replay(program, events))


def test_streaming_csp_zoo_three_colourability(benchmark):
    """coCSP(K3) over a churning random digraph (Boolean MDDlog serving,
    NP-hard template: the warm solver keeps its learned clauses)."""
    program = csp_to_mddlog(three_colourability_template())
    events = random_stream(
        graph_universe(vertices=14, seed=3, density=0.35),
        length=100,
        seed=17,
        query_every=1,
    )

    def run():
        session = ObdaSession({"non3col": program})
        return session, replay(session, events)

    session, report = benchmark.pedantic(run, rounds=3, iterations=1)
    assert report.queries == 100
    _assert_stream_equivalence(session, events, report, "coCSP(K3) stream")
    _report_counters(benchmark, _traced_replay({"non3col": program}, events))
