"""E-ADPT — Adaptive re-planning: live sessions track the workload mix.

PR 8's planner picked one tier at compile time and kept it for the life of
the session, so a serving pattern that *changes* — bulk reads, then a
burst of retractions, then reads again — was stuck with whichever tier the
first pattern favoured.  This benchmark certifies the adaptive controller
(:mod:`repro.planner.adaptive`) closes that gap end to end on the
Theorem 3.3-compiled Example 4.5 OMQ (datalog- but not FO-rewritable,
natural tier 1):

* a three-segment stream — read-heavy, delete-heavy churn, read-heavy
  again — is served by one adaptive session and by every sound pinned
  tier on identical events;
* on the *measured* portion of every segment (each segment opens with a
  short untimed adaptation window: the controller needs one mix window
  plus its evaluation stride to notice a flip) the adaptive session stays
  within ``REQUIRED_RATIO`` of the best pinned tier for that segment,
  while no single pinned tier is competitive on all segments;
* the session re-plans at least once and at most three times
  (``max_replans`` caps the controller), every swap is visible in
  ``explain()["adaptive"]["replans"]``, and answers are identical to both
  pinned twins event for event.

The verdict is written to ``results/ADAPTIVE_ROUTING.json`` (a CI
artifact next to ``SEMANTIC_ROUTING.json``); ``run_all.py --check-only``
re-validates the committed document on every PR.
"""

import json
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.core import Fact, RelationSymbol
from repro.core.cq import atomic_query
from repro.core.schema import Schema
from repro.dl import ConceptInclusion, ConceptName, Exists, Ontology, Role
from repro.omq.certain import compile_to_mddlog
from repro.omq.query import OntologyMediatedQuery
from repro.planner import (
    TIER_FIXPOINT,
    TIER_GROUND_SAT,
    AdaptivePolicy,
    PlanPolicy,
)
from repro.service import ObdaSession, validate_explain

#: Adaptive must stay within this fraction of the best pinned tier's
#: wall-clock on every measured segment.
REQUIRED_RATIO = 0.8
REPORT_SCHEMA = "adaptive-routing/v1"
REPORT_PATH = Path(__file__).resolve().parent / "results" / "ADAPTIVE_ROUTING.json"

HAS_PARENT = RelationSymbol("HasParent", 2)
PREDISPOSITION = RelationSymbol("HereditaryPredisposition", 1)

#: Deliberately twitchy hysteresis so the three-segment stream exercises
#: both swap directions; ``max_replans=3`` is the hard flap ceiling.
ADAPTIVE = AdaptivePolicy(
    mix_window=10, min_dwell=8, warmup=6, cost_gap=1.5, max_replans=3
)

GENERATIONS = 24


def datalog_rewritable_compiled():
    """Theorem 3.3 compilation of the Example 4.5 query (q2 of Example 2.2):
    datalog- but not FO-rewritable (unbounded HasParent recursion)."""
    omq = OntologyMediatedQuery(
        ontology=Ontology(
            [
                ConceptInclusion(
                    Exists(
                        Role("HasParent"), ConceptName("HereditaryPredisposition")
                    ),
                    ConceptName("HereditaryPredisposition"),
                )
            ]
        ),
        query=atomic_query("HereditaryPredisposition"),
        data_schema=Schema.binary(
            concept_names=["HereditaryPredisposition"], role_names=["HasParent"]
        ),
    )
    return compile_to_mddlog(omq)


def ancestry_universe(generations: int = GENERATIONS) -> list[Fact]:
    facts = [
        Fact(HAS_PARENT, (f"g{i}", f"g{i + 1}")) for i in range(generations)
    ]
    facts.append(Fact(PREDISPOSITION, (f"g{generations}",)))
    facts.append(Fact(PREDISPOSITION, ("g3",)))
    return facts


CHURN_EDGES = [Fact(HAS_PARENT, (f"g{i}", f"g{i + 1}")) for i in (5, 11, 17, 21)]


def churn_ops(pairs: int, query_every: int | None = None) -> list[tuple]:
    """Delete/re-insert churn over mid-chain edges (worst case for DRed:
    every deletion severs the mark derivation chain), optionally with a
    trickle of queries.  The *measured* churn is query-free so the
    segment compares mutation throughput — on tier 2 a query costs ~100x
    a guard retraction, so even occasional reads would drown the
    update-path comparison the segment exists to make."""
    ops: list[tuple] = []
    for index in range(pairs):
        edge = CHURN_EDGES[index % len(CHURN_EDGES)]
        ops.append(("delete", [edge]))
        ops.append(("insert", [edge]))
        if query_every is not None and index % query_every == query_every - 1:
            ops.append(("query", None))
    return ops


#: segment -> (untimed adaptation window, measured ops).  The untimed
#: window covers one mix window plus the evaluation backoff (at most two
#: windows of events) plus the dwell, so a correctly-tracking session has
#: settled on its tier before the clock starts.
SEGMENTS = {
    "read_heavy": ([("query", None)] * 32, [("query", None)] * 200),
    "delete_heavy": (churn_ops(24, query_every=8), churn_ops(120)),
    "read_heavy_return": ([("query", None)] * 44, [("query", None)] * 200),
}
SEGMENT_ORDER = ["read_heavy", "delete_heavy", "read_heavy_return"]
ROUNDS = 3


def _run_ops(session, ops, answers) -> None:
    for op, payload in ops:
        if op == "query":
            answers.append(session.certain_answers())
        elif op == "insert":
            session.insert_facts(payload)
        else:
            session.delete_facts(payload)


def _drive(session) -> tuple[list, dict]:
    """Replay the full three-segment stream; returns (all answers — the
    adaptation windows included, so correctness covers mid-swap epochs —
    and per-segment measured seconds)."""
    answers: list = []
    times: dict = {}
    for name in SEGMENT_ORDER:
        transition, measured = SEGMENTS[name]
        _run_ops(session, transition, answers)
        started = time.perf_counter()
        _run_ops(session, measured, answers)
        times[name] = time.perf_counter() - started
    return answers, times


def _best_of_rounds(program, policy, rounds: int = ROUNDS):
    """Fresh session per round on the identical stream; min per-segment
    time across rounds (noise floor), answers and the last session."""
    times = None
    answers = None
    session = None
    for _ in range(rounds):
        session = ObdaSession(
            program, initial_facts=ancestry_universe(), policy=policy
        )
        answers, round_times = _drive(session)
        times = (
            round_times
            if times is None
            else {name: min(times[name], round_times[name]) for name in times}
        )
    return answers, times, session


def test_adaptive_tracks_mix_flips(benchmark):
    """The tentpole end-to-end: one adaptive session beats the
    best-pinned-tier frontier on every measured segment (within
    ``REQUIRED_RATIO``), swaps 1-3 times, and never changes an answer."""
    program = datalog_rewritable_compiled()
    runs: dict = {}

    def adaptive_run():
        session = ObdaSession(
            program,
            initial_facts=ancestry_universe(),
            policy=PlanPolicy(adaptive=ADAPTIVE),
        )
        answers, times = _drive(session)
        previous = runs.get("adaptive")
        if previous is not None:
            times = {
                name: min(previous[1][name], times[name]) for name in times
            }
        runs["adaptive"] = (answers, times, session)
        return answers

    benchmark.pedantic(adaptive_run, rounds=ROUNDS, iterations=1)
    runs["pinned_tier1"] = _best_of_rounds(program, PlanPolicy())
    runs["forced_tier2"] = _best_of_rounds(
        program, PlanPolicy(tier=TIER_GROUND_SAT)
    )
    assert runs["pinned_tier1"][2].plan().tier == TIER_FIXPOINT

    adaptive_answers, adaptive_times, session = runs["adaptive"]
    for label in ("pinned_tier1", "forced_tier2"):
        assert adaptive_answers == runs[label][0], (
            f"adaptive answers diverge from {label} on the identical stream"
        )
    assert any(adaptive_answers), "the stream never produced an answer"

    report = session.explain()
    assert validate_explain(report) == []
    adaptive_block = report["adaptive"]
    assert adaptive_block["enabled"]
    replans = adaptive_block["replans"]
    assert 1 <= len(replans) <= 3, (
        f"expected 1-3 re-plans, saw {len(replans)}: {replans}"
    )

    segments = {}
    for name in SEGMENT_ORDER:
        pinned = {
            label: runs[label][1][name]
            for label in ("pinned_tier1", "forced_tier2")
        }
        best_label = min(pinned, key=pinned.get)
        ratio = pinned[best_label] / adaptive_times[name]
        segments[name] = {
            "measured_ops": len(SEGMENTS[name][1]),
            "adaptive_s": round(adaptive_times[name], 4),
            "pinned_tier1_s": round(pinned["pinned_tier1"], 4),
            "forced_tier2_s": round(pinned["forced_tier2"], 4),
            "best_forced": best_label,
            "ratio_vs_best_forced": round(ratio, 3),
        }
        print(
            f"\n[E-ADPT] {name}: adaptive {adaptive_times[name]:.4f}s vs "
            f"best pinned ({best_label}) {pinned[best_label]:.4f}s "
            f"-> ratio {ratio:.2f}"
        )
    # The read segments must favour tier 1 and the churn segment tier 2 —
    # otherwise the stream is not actually exercising a trade-off.
    assert segments["delete_heavy"]["best_forced"] == "forced_tier2"
    assert segments["read_heavy"]["best_forced"] == "pinned_tier1"
    assert segments["read_heavy_return"]["best_forced"] == "pinned_tier1"

    document = {
        "schema": REPORT_SCHEMA,
        "generated_at": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        "required_ratio": REQUIRED_RATIO,
        "policy": dict(
            next(iter(adaptive_block["queries"].values()))["policy"]
        ),
        "universe": {"generations": GENERATIONS},
        "rounds": ROUNDS,
        "segments": segments,
        "replan_count": len(replans),
        "replans": replans,
        "answers": len(adaptive_answers),
        "answers_identical": True,
    }
    REPORT_PATH.parent.mkdir(parents=True, exist_ok=True)
    with open(REPORT_PATH, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")

    for name, entry in segments.items():
        assert entry["ratio_vs_best_forced"] >= REQUIRED_RATIO, (
            f"{name}: adaptive only {entry['ratio_vs_best_forced']:.2f}x of "
            f"the best pinned tier (required {REQUIRED_RATIO})"
        )


def test_adaptive_report_is_committed_and_sound():
    """The committed CI artifact matches what ``run_all.py --check-only``
    re-validates: schema tag, 1-3 replans, every segment at the bar."""
    with open(REPORT_PATH) as handle:
        document = json.load(handle)
    assert document["schema"] == REPORT_SCHEMA
    assert document["answers_identical"] is True
    assert 1 <= document["replan_count"] <= 3
    assert document["replan_count"] == len(document["replans"])
    for name in SEGMENT_ORDER:
        entry = document["segments"][name]
        assert entry["ratio_vs_best_forced"] >= document["required_ratio"]
