"""E-SEM — Semantic rewritability routing: compiled OMQs off SAT entirely.

PR 4's planner classified *syntactically*, so every Theorem 3.3
type-elimination compilation — one big disjunctive guess rule plus
constraints — landed on tier 2 (ground+CDCL) even when the paper proves
the OMQ FO- or datalog-rewritable.  This benchmark certifies the semantic
stage (:mod:`repro.planner.semantic`) closes that gap *constructively*:

* a **Theorem 3.3-compiled FO-rewritable AQ** (q1 of Example 2.2 under the
  bacterial-infection subsumptions) routes to tier 0 on its materialized
  obstruction-set UCQ and serves a 100-update stream ≥ 3x faster than the
  same compiled program forced onto tier 2, with identical answers;
* a **Theorem 3.3-compiled datalog-rewritable AQ** (Example 4.5's
  hereditary-predisposition recursion) routes to tier 1 on its
  parameterized canonical arc-consistency program, same ≥ 3x bar;
* **coCSP(K3)** stays on tier 2 — and not by timeout: the procedures run
  to completion and certify no rewriting exists (NP-hard template).

Each verdict is appended to ``results/SEMANTIC_ROUTING.json`` (a CI
artifact next to ``PLANNER_ROUTING.json``).
"""

import json
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.core import Fact, RelationSymbol
from repro.core.cq import atomic_query
from repro.core.schema import Schema
from repro.datalog import evaluate
from repro.dl import ConceptInclusion, ConceptName, Exists, Ontology, Role
from repro.omq.certain import compile_to_mddlog
from repro.omq.query import OntologyMediatedQuery
from repro.planner import (
    TIER_FIXPOINT,
    TIER_GROUND_SAT,
    TIER_REWRITE,
    plan_program,
)
from repro.service import ObdaSession, random_stream, replay
from repro.translations.csp_templates import csp_to_mddlog
from repro.workloads.csp_zoo import three_colourability_template

REQUIRED_SPEEDUP = 3.0
REPORT_PATH = Path(__file__).resolve().parent / "results" / "SEMANTIC_ROUTING.json"

_REPORT: dict = {"workloads": {}}


def _record(name: str, **fields) -> None:
    _REPORT["workloads"][name] = fields
    _REPORT["generated_at"] = datetime.now(timezone.utc).isoformat(
        timespec="seconds"
    )
    REPORT_PATH.parent.mkdir(parents=True, exist_ok=True)
    with open(REPORT_PATH, "w") as handle:
        json.dump(_REPORT, handle, indent=2, sort_keys=True)
        handle.write("\n")


# ---------------------------------------------------------------------------
# The compiled workloads
# ---------------------------------------------------------------------------

HAS_DIAGNOSIS = RelationSymbol("HasDiagnosis", 2)
HAS_PARENT = RelationSymbol("HasParent", 2)
LYME = RelationSymbol("LymeDisease", 1)
LISTERIOSIS = RelationSymbol("Listeriosis", 1)
BACTERIAL = RelationSymbol("BacterialInfection", 1)
PREDISPOSITION = RelationSymbol("HereditaryPredisposition", 1)


def fo_rewritable_compiled():
    """Theorem 3.3 compilation of q1(x) = BacterialInfection(x) under
    Lyme ⊑ Bacterial, Listeriosis ⊑ Bacterial (Example 2.2: FO-rewritable;
    the paper's UCQ rewriting adds the two subsumption disjuncts)."""
    omq = OntologyMediatedQuery(
        ontology=Ontology(
            [
                ConceptInclusion(
                    ConceptName("LymeDisease"), ConceptName("BacterialInfection")
                ),
                ConceptInclusion(
                    ConceptName("Listeriosis"), ConceptName("BacterialInfection")
                ),
            ]
        ),
        query=atomic_query("BacterialInfection"),
        data_schema=Schema.binary(
            concept_names=["LymeDisease", "Listeriosis", "BacterialInfection"],
            role_names=["HasDiagnosis"],
        ),
    )
    return compile_to_mddlog(omq)


def datalog_rewritable_compiled():
    """Theorem 3.3 compilation of the Example 4.5 query (q2 of Example 2.2):
    datalog- but not FO-rewritable (unbounded HasParent recursion)."""
    omq = OntologyMediatedQuery(
        ontology=Ontology(
            [
                ConceptInclusion(
                    Exists(
                        Role("HasParent"), ConceptName("HereditaryPredisposition")
                    ),
                    ConceptName("HereditaryPredisposition"),
                )
            ]
        ),
        query=atomic_query("HereditaryPredisposition"),
        data_schema=Schema.binary(
            concept_names=["HereditaryPredisposition"], role_names=["HasParent"]
        ),
    )
    return compile_to_mddlog(omq)


def diagnosis_universe(patients: int = 20) -> list[Fact]:
    facts: list[Fact] = []
    for index in range(patients):
        patient, diagnosis = f"patient{index}", f"diag{index}"
        facts.append(Fact(HAS_DIAGNOSIS, (patient, diagnosis)))
        if index % 3 == 0:
            facts.append(Fact(LYME, (diagnosis,)))
        elif index % 3 == 1:
            facts.append(Fact(LISTERIOSIS, (diagnosis,)))
        else:
            facts.append(Fact(BACTERIAL, (patient,)))
    return facts


def ancestry_universe(generations: int = 25) -> list[Fact]:
    facts = [
        Fact(HAS_PARENT, (f"g{i}", f"g{i + 1}")) for i in range(generations)
    ]
    facts.append(Fact(PREDISPOSITION, (f"g{generations}",)))
    facts.append(Fact(PREDISPOSITION, ("g3",)))
    return facts


def _stream_answers(report) -> list:
    return [answers for step in report.answers for answers in step.values()]


def _routed_vs_forced_stream(
    benchmark, name, program, events, expected_tier, expected_rewriting
):
    """Benchmark the semantically routed session against its forced-tier-2
    twin on the same stream; answers must be identical."""
    started = time.perf_counter()
    plan = plan_program(program)
    analysis_s = time.perf_counter() - started
    assert plan.tier == expected_tier, plan.rationale
    assert plan.semantic is not None and plan.semantic.applicable
    assert plan.semantic.rewriting == expected_rewriting
    assert plan.semantic.validated_instances > 0

    def routed():
        session = ObdaSession({name: program})
        return replay(session, events)

    report = benchmark.pedantic(routed, rounds=3, iterations=1)
    forced_session = ObdaSession({name: program}, force_tier=TIER_GROUND_SAT)
    forced_report = replay(forced_session, events)
    routed_answers = _stream_answers(report)
    assert routed_answers == _stream_answers(forced_report), (
        f"{name}: semantically routed tier-{plan.tier} answers diverge "
        "from forced tier-2"
    )
    assert any(routed_answers), f"{name}: the stream never produced an answer"
    speedup = forced_report.elapsed_s / report.elapsed_s
    print(
        f"\n[E-SEM] {name}: tier {plan.tier} ({plan.tier_name}, "
        f"{plan.semantic.rewriting}) routed {report.elapsed_s:.3f}s vs "
        f"forced tier-2 {forced_report.elapsed_s:.3f}s -> {speedup:.1f}x "
        f"({report.queries} queries; one-off semantic analysis "
        f"{analysis_s * 1000:.0f}ms, "
        f"{plan.semantic.validated_instances} instances cross-validated)"
    )
    _record(
        name,
        tier=plan.tier,
        tier_name=plan.tier_name,
        rewriting=plan.semantic.rewriting,
        rationale=plan.rationale,
        compiled_rules=len(program.rules),
        analysis_s=round(analysis_s, 4),
        validated_instances=plan.semantic.validated_instances,
        routed_s=round(report.elapsed_s, 4),
        forced_tier2_s=round(forced_report.elapsed_s, 4),
        speedup_vs_forced_tier2=round(speedup, 2),
        queries=report.queries,
        answers_identical=True,
    )
    return speedup


def test_semantic_tier0_compiled_fo_stream(benchmark):
    """The Theorem 3.3-compiled FO-rewritable AQ serves its stream from the
    constructed obstruction-set UCQ ≥ 3x faster than forced tier 2."""
    events = random_stream(diagnosis_universe(20), length=100, seed=23, query_every=1)
    speedup = _routed_vs_forced_stream(
        benchmark,
        "compiled_fo_rewritable_q1",
        fo_rewritable_compiled(),
        events,
        TIER_REWRITE,
        "obstruction-ucq",
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"semantic tier-0 routing only {speedup:.1f}x faster "
        f"(required {REQUIRED_SPEEDUP}x)"
    )


def test_semantic_tier1_compiled_datalog_query_heavy(benchmark):
    """The Theorem 3.3-compiled datalog-rewritable AQ on a read-heavy
    serving pattern (bulk load, then many certain-answer queries): the
    materialized canonical fixpoint answers from the warm model while
    forced tier 2 pays |adom| solver decisions per query — ≥ 3x."""
    program = datalog_rewritable_compiled()
    started = time.perf_counter()
    plan = plan_program(program)
    analysis_s = time.perf_counter() - started
    assert plan.tier == TIER_FIXPOINT, plan.rationale
    assert plan.semantic.rewriting == "canonical-datalog"
    facts = ancestry_universe(30)
    queries = 200

    def routed():
        session = ObdaSession(program, initial_facts=facts)
        return [session.certain_answers() for _ in range(queries)]

    routed_answers = benchmark.pedantic(routed, rounds=3, iterations=1)
    routed_started = time.perf_counter()
    routed()
    routed_s = time.perf_counter() - routed_started
    forced_started = time.perf_counter()
    forced_session = ObdaSession(
        program, initial_facts=facts, force_tier=TIER_GROUND_SAT
    )
    forced_answers = [forced_session.certain_answers() for _ in range(queries)]
    forced_s = time.perf_counter() - forced_started
    assert routed_answers == forced_answers
    assert any(routed_answers[0]), "the workload never produced an answer"
    speedup = forced_s / routed_s
    print(
        f"\n[E-SEM] compiled_datalog_rewritable_q2: tier 1 "
        f"(canonical-datalog) {queries} queries routed {routed_s:.3f}s vs "
        f"forced tier-2 {forced_s:.3f}s -> {speedup:.1f}x (one-off semantic "
        f"analysis {analysis_s * 1000:.0f}ms)"
    )
    _record(
        "compiled_datalog_rewritable_q2",
        tier=plan.tier,
        tier_name=plan.tier_name,
        rewriting=plan.semantic.rewriting,
        rationale=plan.rationale,
        compiled_rules=len(program.rules),
        analysis_s=round(analysis_s, 4),
        validated_instances=plan.semantic.validated_instances,
        pattern=f"bulk load + {queries} certain-answer queries",
        routed_s=round(routed_s, 4),
        forced_tier2_s=round(forced_s, 4),
        speedup_vs_forced_tier2=round(speedup, 2),
        queries=queries,
        answers_identical=True,
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"semantic tier-1 routing only {speedup:.1f}x faster "
        f"(required {REQUIRED_SPEEDUP}x)"
    )


def test_semantic_tier1_churn_stream_recorded():
    """Update-heavy churn on the same workload, recorded *unasserted*: the
    canonical program's materialization is quadratic in the mark reach, so
    per-update maintenance (DRed deletes especially) can cost more than the
    warm solver's O(1) guard retractions — the honest flip side of the
    read-heavy win above, and the cost-based-tier-choice item on the
    ROADMAP."""
    program = datalog_rewritable_compiled()
    events = random_stream(ancestry_universe(20), length=60, seed=29, query_every=3)
    routed_report = replay(ObdaSession(program), events)
    forced_report = replay(
        ObdaSession(program, force_tier=TIER_GROUND_SAT), events
    )
    assert _stream_answers(routed_report) == _stream_answers(forced_report)
    ratio = forced_report.elapsed_s / routed_report.elapsed_s
    print(
        f"\n[E-SEM] tier-1 churn stream (unasserted): routed "
        f"{routed_report.elapsed_s:.3f}s vs forced tier-2 "
        f"{forced_report.elapsed_s:.3f}s -> {ratio:.2f}x"
    )
    _record(
        "compiled_datalog_rewritable_q2_churn",
        tier=TIER_FIXPOINT,
        pattern="insert/delete churn stream (recorded, unasserted)",
        routed_s=round(routed_report.elapsed_s, 4),
        forced_tier2_s=round(forced_report.elapsed_s, 4),
        ratio_vs_forced_tier2=round(ratio, 2),
        answers_identical=True,
    )


def test_semantic_control_cocsp_k3(benchmark):
    """coCSP(K3) must stay on tier 2 as a *certified* verdict (the semantic
    procedures complete and report no rewriting), and routing must not
    change its answers."""
    from repro.core import Instance
    import random as _random

    program = csp_to_mddlog(three_colourability_template())
    plan = plan_program(program)
    assert plan.tier == TIER_GROUND_SAT
    assert plan.semantic is not None
    assert plan.semantic.fo_rewritable is False
    assert plan.semantic.datalog_rewritable is False

    rng = _random.Random(11)
    edge = RelationSymbol("edge", 2)
    vertices = [f"v{i}" for i in range(10)]
    instance = Instance(
        [
            Fact(edge, (a, b))
            for a in vertices
            for b in vertices
            if a != b and rng.random() < 0.3
        ]
    )
    routed = benchmark.pedantic(
        lambda: evaluate(program, instance), rounds=3, iterations=1
    )
    forced = evaluate(program, instance, force_tier=TIER_GROUND_SAT)
    assert routed == forced
    _record(
        "cocsp_k3_control",
        tier=plan.tier,
        tier_name=plan.tier_name,
        rationale=plan.semantic.rationale,
        answers_identical=True,
    )


def test_semantic_report_covers_all_workloads():
    """The routing report (the CI artifact) covers all three workloads."""
    with open(REPORT_PATH) as handle:
        report = json.load(handle)
    for name in (
        "compiled_fo_rewritable_q1",
        "compiled_datalog_rewritable_q2",
        "cocsp_k3_control",
    ):
        assert name in report["workloads"], name
    for name in ("compiled_fo_rewritable_q1", "compiled_datalog_rewritable_q2"):
        entry = report["workloads"][name]
        assert entry["speedup_vs_forced_tier2"] >= REQUIRED_SPEEDUP
        assert entry["answers_identical"]
