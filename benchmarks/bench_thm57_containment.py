"""E-56 — Theorems 5.6, 5.7: query containment for OMQs.

Decides containment between atomic OMQs via the CSP-template homomorphism
procedure (the NEXPTIME upper bound route), cross-checks with bounded
counterexample search, and exercises the tiling-problem input side of the
NEXPTIME lower bound reduction.
"""

from repro.core import atomic_query
from repro.dl import Ontology
from repro.obda import atomic_omq_contained_in, omq_contained_in_bounded
from repro.omq import OntologyMediatedQuery
from repro.workloads.medical import example_4_5_omq, example_4_5_schema
from repro.workloads.tiling import checkerboard_tiling, solvable_tiling, unsolvable_tiling


def test_thm57_containment_via_templates(benchmark):
    recursive = example_4_5_omq()
    trivial = OntologyMediatedQuery(
        ontology=Ontology([]),
        query=atomic_query("HereditaryPredisposition"),
        data_schema=example_4_5_schema(),
    )

    def decide():
        return (
            atomic_omq_contained_in(trivial, recursive),
            atomic_omq_contained_in(recursive, trivial),
        )

    forward, backward = benchmark(decide)
    print(f"\n[E-56] trivial ⊆ recursive: {forward}; recursive ⊆ trivial: {backward}")
    assert forward and not backward


def test_thm57_containment_bounded_crosscheck(benchmark):
    recursive = example_4_5_omq()
    trivial = OntologyMediatedQuery(
        ontology=Ontology([]),
        query=atomic_query("HereditaryPredisposition"),
        data_schema=example_4_5_schema(),
    )
    result = benchmark(
        lambda: omq_contained_in_bounded(trivial, recursive, max_elements=2, max_facts=2)
    )
    print(f"\n[E-56] bounded-counterexample cross-check agrees: {result}")
    assert result


def test_thm57_tiling_inputs(benchmark):
    """The NEXPTIME lower bound reduces from exponential grid tiling; the input
    side (solvable vs unsolvable instances) is reproduced and solved here."""

    def solve_all():
        return (
            solvable_tiling(1).has_solution(),
            checkerboard_tiling(1).has_solution(),
            unsolvable_tiling(1).has_solution(),
        )

    solvable, checker, unsolvable = benchmark(solve_all)
    print(
        f"\n[E-56] tiling inputs: trivial={solvable}, checkerboard={checker}, "
        f"unsolvable={unsolvable} (2^1 x 2^1 grids; reduction scope in EXPERIMENTS.md)"
    )
    assert solvable and checker and not unsolvable
