"""E-35 — Theorems 3.5 / 3.6 / 3.8: succinctness of OMQs versus MDDlog.

Measures the size of the constructive translations along parameterised query
families: the forward (ALC, AQ) → MDDlog direction grows exponentially (the
blow-up Theorem 3.5 proves unavoidable), the reverse MDDlog → (ALC, AQ)
direction stays linear (Theorem 3.4 (2)), and the inverse-role elimination of
Theorem 3.6 stays polynomial per axiom.
"""


from repro.obda import (
    aq_to_mddlog_curve,
    classify_growth,
    inverse_elimination_curve,
    mddlog_to_omq_curve,
)


def _print_curve(label, curve):
    print(f"\n[E-35] {label} (parameter, source size, target size):")
    for point in curve:
        print(
            f"    i={point.parameter:2d}   |source|={point.source_size:5d}   "
            f"|target|={point.target_size:7d}"
        )
    print(f"    growth shape: {classify_growth(curve)}")


def test_thm35_forward_translation_blowup(benchmark):
    curve = benchmark(lambda: aq_to_mddlog_curve(range(1, 6)))
    _print_curve("(ALC, AQ) -> MDDlog (Theorem 3.4 / 3.5)", curve)
    assert classify_growth(curve) == "exponential"


def test_thm35_reverse_translation_linear(benchmark):
    curve = benchmark(lambda: mddlog_to_omq_curve(range(1, 10)))
    _print_curve("MDDlog -> (ALC, AQ) (Theorem 3.4 (2))", curve)
    assert classify_growth(curve) == "polynomial"


def test_thm36_inverse_elimination_size(benchmark):
    curve = benchmark(lambda: inverse_elimination_curve(range(1, 8)))
    _print_curve("ALCI -> ALC ontology rewriting (Theorem 3.6)", curve)
    assert classify_growth(curve) == "polynomial"
