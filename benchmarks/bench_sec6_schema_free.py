"""E-61 / E-62 / E-63 — Section 6: schema-free ontology-mediated queries.

Builds the schema-free (ALC, BAQ) query of Theorem 6.1 from CSP templates,
checks the polynomial equivalence on plain and on "noisy" data (data that
mentions the construction's working symbols), and runs the Theorem 6.2
containment transfer and the Theorem 6.3 shielding transformation.
"""


from repro.core import Fact, Instance, RelationSymbol
from repro.core.homomorphism import has_homomorphism
from repro.obda import (
    containment_to_schema_free,
    csp_to_schema_free_omq,
    omq_contained_in_bounded,
    shield_concept_names,
)
from repro.workloads.csp_zoo import (
    EDGE,
    cycle_graph,
    transitive_tournament_template,
    two_colourability_template,
)
from repro.workloads.medical import example_2_2_q2_omq


def test_thm61_schema_free_csp_encoding(benchmark):
    template = two_colourability_template()
    encoding = benchmark(lambda: csp_to_schema_free_omq(template))
    probes = [cycle_graph(4), Instance([Fact(EDGE, ("a", "a"))])]
    rows = []
    for data in probes:
        expected = not has_homomorphism(data, template)
        got = encoding.omq.certain_answers(data, engine="bounded") == frozenset({()})
        rows.append((len(data), expected, got))
    print(
        f"\n[E-61] Theorem 6.1: K2 template -> schema-free (ALC, BAQ) query with "
        f"{len(encoding.omq.ontology)} axioms; (facts, coCSP, schema-free OMQ):"
    )
    for facts, expected, got in rows:
        print(f"    {facts:2d} facts   coCSP={int(expected)}   OMQ={int(got)}")
    assert all(expected == got for _f, expected, got in rows)


def test_thm61_noise_immunity(benchmark):
    encoding = csp_to_schema_free_omq(two_colourability_template())
    noisy = cycle_graph(4).with_facts(
        [
            Fact(RelationSymbol("A_elem_0", 1), ("v0",)),
            Fact(RelationSymbol("R_elem_1", 2), ("v1", "v2")),
        ]
    )
    result = benchmark.pedantic(
        lambda: encoding.omq.certain_answers(noisy, engine="bounded"),
        rounds=1,
        iterations=1,
    )
    print(
        "\n[E-61] schema-free data mentioning working symbols does not change the "
        f"answer: certain answers on the noisy C4 = {set(result)} (expected empty)"
    )
    assert result == frozenset()


def test_thm62_containment_transfer(benchmark):
    q2 = example_2_2_q2_omq()

    sf_first, sf_second = benchmark(lambda: containment_to_schema_free(q2, q2))
    contained = omq_contained_in_bounded(
        q2, q2, max_elements=2, max_facts=2, engine="bounded"
    )
    print(
        f"\n[E-62] Theorem 6.2: schema-free pair built (ontology sizes "
        f"{len(sf_first.ontology)} / {len(sf_second.ontology)}); fixed-schema "
        f"reflexive containment: {contained}"
    )
    assert sf_first.schema_free and sf_second.schema_free
    assert contained


def test_thm63_shielding_transformation(benchmark):
    encoding = csp_to_schema_free_omq(transitive_tournament_template(3))
    ontology = example_2_2_q2_omq().ontology
    shielded = benchmark(
        lambda: shield_concept_names(ontology, {"HereditaryPredisposition"})
    )
    rendered = " ".join(str(axiom) for axiom in shielded)
    print(
        f"\n[E-63] Theorem 6.3 shielding: {len(ontology)} axioms rewritten, "
        f"compound guard present: {'∀R_HereditaryPredisposition' in rendered}; "
        f"TT3 schema-free encoding has {len(encoding.omq.ontology)} axioms"
    )
    assert "∀R_HereditaryPredisposition" in rendered
