"""E-317 / E-310 — Theorem 3.17 and Proposition 3.15: (GFO/GNFO, UCQ) versus
frontier-guarded DDlog and MDDlog.

Translates frontier-guarded DDlog programs into (GNFO, UCQ) queries and checks
certain-answer agreement; evaluates the Proposition 3.15 guarded query on the
separating instance families D1 (query true) and D0 (query false), which is
the witness that (GFO, UCQ) exceeds MDDlog.
"""


from repro.core import Fact, Instance, RelationSymbol
from repro.core.cq import Atom, var
from repro.datalog import DisjunctiveDatalogProgram, Rule, evaluate, goal_atom
from repro.fo import is_gfo, is_gnfo
from repro.translations import frontier_ddlog_to_gnfo_omq, proposition_3_15_omq
from repro.workloads.separations import gfo_d0, gfo_d1, gfo_query_holds

EDGE = RelationSymbol("edge", 2)
MARK = RelationSymbol("mark", 1)
x, y = var("x"), var("y")


def reachability_program() -> DisjunctiveDatalogProgram:
    reach = RelationSymbol("Reach", 1)
    return DisjunctiveDatalogProgram(
        [
            Rule((Atom(reach, (x,)),), (Atom(MARK, (x,)),)),
            Rule((Atom(reach, (x,)),), (Atom(EDGE, (x, y)), Atom(reach, (y,)))),
            Rule((goal_atom(x),), (Atom(reach, (x,)),)),
        ]
    )


def chain_instance(length: int) -> Instance:
    facts = [Fact(EDGE, (f"n{i}", f"n{i + 1}")) for i in range(length)]
    facts.append(Fact(MARK, (f"n{length}",)))
    return Instance(facts)


def test_thm317_frontier_ddlog_as_gnfo_omq(benchmark):
    program = reachability_program()
    omq = benchmark(lambda: frontier_ddlog_to_gnfo_omq(program))
    gnfo_count = sum(is_gnfo(sentence) for sentence in omq.sentences)
    data = chain_instance(3)
    agreement = omq.certain_answers(data, extra_elements=0) == evaluate(program, data)
    print(
        f"\n[E-317] frontier-guarded DDlog -> (GNFO, UCQ): {len(omq.sentences)} "
        f"sentences (GNFO: {gnfo_count}/{len(omq.sentences)}), certain-answer "
        f"agreement on a 4-element chain: {agreement}"
    )
    assert agreement
    assert gnfo_count == len(omq.sentences)


def test_prop315_guarded_query_separation(benchmark):
    omq = proposition_3_15_omq()
    guarded = all(is_gfo(sentence) for sentence in omq.sentences)

    def run():
        rows = []
        for n in (2, 3, 4, 5):
            rows.append((n, gfo_query_holds(gfo_d1(n)), gfo_query_holds(gfo_d0(n))))
        return rows

    rows = benchmark(run)
    print(
        f"\n[E-310] Proposition 3.15 (GFO ontology: {guarded}) — query value on the "
        "separating families (n, D1, D0):"
    )
    for n, on_d1, on_d0 in rows:
        print(f"    n={n}:  D1 -> {int(on_d1)}   D0 -> {int(on_d0)}")
    assert all(on_d1 and not on_d0 for _n, on_d1, on_d0 in rows)
    # Cross-check the smallest family member against the bounded OMQ engine.
    assert omq.is_certain(gfo_d1(2), (), extra_elements=0)
    assert not omq.is_certain(gfo_d0(2), (), extra_elements=0)
