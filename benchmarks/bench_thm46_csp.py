"""E-46 — Theorem 4.6: atomic OMQs and (generalized, marked) coCSPs.

Builds the CSP templates for the paper's Example 4.5 query and for Boolean
variants, checks agreement with the certain-answer engines, and reports the
template sizes (the exponential-time template construction of Theorem 4.6).
"""

from repro.core import boolean_atomic_query
from repro.omq import OntologyMediatedQuery
from repro.translations import csp_to_omq, omq_to_csp
from repro.workloads.csp_zoo import three_colourability_template, two_colourability_template
from repro.workloads.medical import (
    example_4_5_omq,
    example_4_5_ontology,
    example_4_5_schema,
    family_instance,
)


def test_thm46_marked_template_of_example_4_5(benchmark):
    omq = example_4_5_omq()
    encoding = benchmark(lambda: omq_to_csp(omq))
    cocsp = encoding.as_cocsp_query()
    data = family_instance(2, predisposed_root=True)
    assert cocsp.evaluate(data) == omq.certain_answers(data)
    template = encoding.marked_templates[0].instance
    print(
        f"\n[E-46] Example 4.5 -> generalized coCSP with marked element: "
        f"{len(encoding.marked_templates)} marked templates over a template with "
        f"{len(template.active_domain)} types and {len(template)} facts"
    )


def test_thm46_boolean_template(benchmark):
    omq = OntologyMediatedQuery(
        ontology=example_4_5_ontology(),
        query=boolean_atomic_query("HereditaryPredisposition"),
        data_schema=example_4_5_schema(),
    )
    encoding = benchmark(lambda: omq_to_csp(omq))
    data = family_instance(3, predisposed_root=True)
    cocsp = encoding.as_cocsp_query()
    assert cocsp.evaluate(data) == (omq.certain_answers(data) == {()})
    print(
        f"\n[E-46] Boolean case: {len(encoding.templates)} template(s), sizes "
        f"{[len(t) for t in encoding.templates]}"
    )


def test_thm46_marked_cocsp_evaluation(benchmark):
    """E-46 hot path: evaluating the marked coCSP on a long family chain.

    One indexed homomorphism search per template is shared across all
    ``|adom|`` mark tuples, so this measures the engine's re-solve-with-
    fixed-marks path.
    """
    omq = example_4_5_omq()
    encoding = omq_to_csp(omq)
    cocsp = encoding.as_cocsp_query()
    data = family_instance(40, predisposed_root=True)
    answers = benchmark(lambda: cocsp.evaluate(data))
    assert answers == omq.certain_answers(data)
    print(f"\n[E-46] marked coCSP on 41-person chain: {len(answers)} answers")


def test_thm46_csp_homomorphism_hot_path(benchmark):
    """E-46 hot path: CSP membership via the indexed homomorphism search."""
    from repro.csp.template import CoCspQuery
    from repro.workloads.csp_zoo import cycle_graph

    query = CoCspQuery(three_colourability_template())
    data = cycle_graph(201)
    verdict = benchmark(lambda: query.evaluate(data))
    assert verdict is False  # odd cycles are 3-colourable
    print("\n[E-46] coCSP(K3) on C_201 decided via indexed homomorphism search")


def test_thm46_csp_to_omq_direction(benchmark):
    """The converse construction: a coCSP becomes an (ALC, BAQ) OMQ."""
    template = two_colourability_template()
    omq = benchmark(lambda: csp_to_omq(template))
    from repro.workloads.csp_zoo import cycle_graph

    for length, expected in [(3, True), (4, False)]:
        got = omq.certain_answers(cycle_graph(length)) == {()}
        assert got == expected
    print(
        f"\n[E-46] coCSP(K2) -> (ALC,BAQ): |O| = {omq.ontology.size()} "
        f"(linear in the template, as in Theorem 6.1's construction)"
    )


def test_thm46_hard_template_round_trip(benchmark):
    template = three_colourability_template()
    omq = benchmark(lambda: csp_to_omq(template))
    from repro.workloads.csp_zoo import cycle_graph

    # K4 is not 3-colourable; C5 is.
    from repro.workloads.csp_zoo import clique_template

    assert omq.certain_answers(clique_template(4)) == {()}
    assert omq.certain_answers(cycle_graph(5)) == frozenset()
    print(f"\n[E-46] coCSP(K3) -> (ALC,BAQ): |O| = {omq.ontology.size()}")
