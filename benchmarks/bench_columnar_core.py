"""E-COL — The interned columnar evaluation core against the tuple engine.

PR 6 rebuilt the instance layer around an append-only constant interner
with sorted-column relation stores and made the join/fixpoint path
set-at-a-time (compiled :class:`~repro.engine.joins.JoinPlan` batches over
int rows).  The pre-columnar tuple-at-a-time engine is kept callable
(``engine="tuple"`` on ``least_fixpoint`` / ``ground_program``) precisely
so this benchmark stays honest: every workload runs both engines on the
same inputs, asserts identical results, and records the speedup.

Acceptance bar: **≥ 3x on at least two join/fixpoint-heavy workloads** —
the deep-chain transitive closure and the 800×5 ancestry forest both
carry the assertion.  The Table 1 churn stream and the coCSP(K3)
grounding are recorded (with answer/clause equality asserted) but carry
no speedup floor: grounding cost is dominated by clause construction and
subsumption, not joins, and the serving stream has no tuple-engine
counterpart.

Besides the pytest-benchmark numbers (consolidated into
``BENCH_RESULTS.json`` by ``run_all.py``), each test appends its verdict
to ``results/COLUMNAR_CORE.json`` — uploaded as a CI artifact — including
a memory-footprint line comparing the interned columnar store against the
decoded fact-set representation by a deep ``sys.getsizeof`` walk.
"""

import json
import random
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.core import Atom, Fact, Instance, RelationSymbol, Variable
from repro.datalog import Rule, goal_atom
from repro.datalog.plain import DatalogProgram
from repro.engine import ground_program
from repro.omq.certain import compile_to_mddlog
from repro.service import (
    ObdaSession,
    from_scratch_stream_cost,
    medical_universe,
    random_stream,
    replay,
)
from repro.translations.csp_templates import csp_to_mddlog
from repro.workloads.csp_zoo import three_colourability_template
from repro.workloads.medical import example_2_1_omq

REQUIRED_SPEEDUP = 3.0
REPORT_PATH = Path(__file__).resolve().parent / "results" / "COLUMNAR_CORE.json"

_REPORT: dict = {"workloads": {}}


def _record(name: str, **fields) -> None:
    _REPORT["workloads"][name] = fields
    _REPORT["generated_at"] = datetime.now(timezone.utc).isoformat(
        timespec="seconds"
    )
    REPORT_PATH.parent.mkdir(parents=True, exist_ok=True)
    with open(REPORT_PATH, "w") as handle:
        json.dump(_REPORT, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _best_of(callable_, repeats: int = 2) -> tuple[float, object]:
    """Minimum wall time over ``repeats`` runs (plus the last result)."""
    best, result = float("inf"), None
    for _ in range(repeats):
        started = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - started)
    return best, result


# ---------------------------------------------------------------------------
# Fixpoint workloads (both carry the ≥ 3x assertion)
# ---------------------------------------------------------------------------

EDGE = RelationSymbol("edge", 2)
TC = RelationSymbol("tc", 2)
X, Y, Z = Variable("x"), Variable("y"), Variable("z")


def _transitive_closure_program() -> DatalogProgram:
    return DatalogProgram(
        [
            Rule((Atom(TC, (X, Y)),), (Atom(EDGE, (X, Y)),)),
            Rule((Atom(TC, (X, Z)),), (Atom(EDGE, (X, Y)), Atom(TC, (Y, Z)))),
            Rule((goal_atom(X),), (Atom(TC, (X, X)),)),
        ]
    )


def _assert_fixpoint_speedup(benchmark, instance, label, expected_tc):
    program = _transitive_closure_program()
    columnar = benchmark.pedantic(
        lambda: program.least_fixpoint(instance), rounds=3, iterations=1
    )
    columnar_s, _ = _best_of(lambda: program.least_fixpoint(instance))
    tuple_s, reference = _best_of(
        lambda: program.least_fixpoint(instance, engine="tuple")
    )
    assert columnar.facts == reference.facts, f"{label}: engines diverge"
    assert len(columnar.tuples(TC)) == expected_tc
    speedup = tuple_s / columnar_s
    print(
        f"\n[E-COL] {label}: columnar {columnar_s:.3f}s vs "
        f"tuple {tuple_s:.3f}s -> {speedup:.1f}x "
        f"({len(columnar.tuples(TC))} closure rows)"
    )
    _record(
        label,
        columnar_s=round(columnar_s, 4),
        tuple_s=round(tuple_s, 4),
        speedup=round(speedup, 2),
        required=REQUIRED_SPEEDUP,
        closure_rows=len(columnar.tuples(TC)),
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"{label}: columnar core only {speedup:.1f}x over the tuple engine "
        f"(required {REQUIRED_SPEEDUP}x)"
    )
    return columnar


def test_deep_chain_fixpoint(benchmark):
    """Transitive closure of a 200-node chain: long semi-naive runs whose
    per-round deltas the batch executor turns into single merge passes."""
    chain = Instance([Fact(EDGE, (i, i + 1)) for i in range(200)])
    fixpoint = _assert_fixpoint_speedup(
        benchmark, chain, "deep-chain fixpoint", expected_tc=200 * 201 // 2
    )
    _record_memory_footprint(fixpoint)


def test_ancestry_800x5_fixpoint(benchmark):
    """An 800-family × 5-generation ancestry forest: wide, shallow deltas —
    the batch-per-round shape, with compound (family, generation) constants
    interned once and joined as ints thereafter."""
    forest = Instance(
        [
            Fact(EDGE, ((family, tier), (family, tier + 1)))
            for family in range(800)
            for tier in range(5)
        ]
    )
    _assert_fixpoint_speedup(
        benchmark, forest, "ancestry 800x5 fixpoint", expected_tc=800 * 15
    )


# ---------------------------------------------------------------------------
# Grounding workload (equality asserted, speedup recorded)
# ---------------------------------------------------------------------------


def test_cocsp_k3_grounding(benchmark):
    """coCSP(K3) grounded over a random digraph, columnar vs tuple EDB
    joins.  Grounding is clause-construction-bound, so no 3x floor — the
    clause sets must agree and the columnar path must not regress."""
    program = csp_to_mddlog(three_colourability_template())
    rng = random.Random(7)
    facts = [
        Fact(EDGE, (i, j))
        for i in range(60)
        for j in range(60)
        if i != j and rng.random() < 0.25
    ]
    instance = Instance(facts)
    ground_program(program, instance)  # warm the per-program plan cache
    columnar = benchmark.pedantic(
        lambda: ground_program(program, instance), rounds=3, iterations=1
    )
    columnar_s, _ = _best_of(lambda: ground_program(program, instance))
    tuple_s, reference = _best_of(
        lambda: ground_program(program, instance, engine="tuple")
    )
    assert set(columnar.clauses) == set(reference.clauses)
    speedup = tuple_s / columnar_s
    print(
        f"\n[E-COL] coCSP(K3) grounding: columnar {columnar_s:.3f}s vs "
        f"tuple {tuple_s:.3f}s -> {speedup:.1f}x "
        f"({len(columnar.clauses)} clauses, {len(facts)} edges)"
    )
    _record(
        "coCSP(K3) grounding",
        columnar_s=round(columnar_s, 4),
        tuple_s=round(tuple_s, 4),
        speedup=round(speedup, 2),
        clauses=len(columnar.clauses),
    )


# ---------------------------------------------------------------------------
# Table 1 churn stream (answers asserted against from-scratch recomputation)
# ---------------------------------------------------------------------------


def test_table1_churn_stream(benchmark):
    """The Table 1 medical workload under a 60-update churn stream, served
    by the all-columnar session stack (delta grounding, row-level DRed);
    answers are asserted against from-scratch recomputation per step."""
    workload = {
        "q1_bacterial": compile_to_mddlog(example_2_1_omq()),
    }
    events = random_stream(
        medical_universe(patients=4, generations=3),
        length=60,
        seed=23,
        query_every=1,
    )

    def run():
        session = ObdaSession(workload)
        return session, replay(session, events)

    session, report = benchmark.pedantic(run, rounds=2, iterations=1)
    assert report.queries == 60
    scratch_s, scratch_answers = from_scratch_stream_cost(session, events)
    incremental = [a for step in report.answers for a in step.values()]
    assert incremental == scratch_answers, "churn stream: answers diverge"
    speedup = scratch_s / report.elapsed_s
    print(
        f"\n[E-COL] Table 1 churn stream: incremental {report.elapsed_s:.2f}s "
        f"vs from-scratch {scratch_s:.2f}s -> {speedup:.1f}x "
        f"({report.queries} queries)"
    )
    _record(
        "Table 1 churn stream",
        incremental_s=round(report.elapsed_s, 4),
        from_scratch_s=round(scratch_s, 4),
        speedup_vs_scratch=round(speedup, 2),
        queries=report.queries,
    )


# ---------------------------------------------------------------------------
# Memory footprint: interned columns vs decoded fact set
# ---------------------------------------------------------------------------


def _deep_size(root) -> int:
    """Total ``sys.getsizeof`` over an object graph (containers, slots)."""
    seen: set[int] = set()
    stack = [root]
    total = 0
    while stack:
        obj = stack.pop()
        if id(obj) in seen:
            continue
        seen.add(id(obj))
        total += sys.getsizeof(obj)
        if isinstance(obj, dict):
            stack.extend(obj.keys())
            stack.extend(obj.values())
        elif isinstance(obj, (list, tuple, set, frozenset)):
            stack.extend(obj)
        else:
            for attribute in getattr(type(obj), "__slots__", ()):
                if hasattr(obj, attribute):
                    stack.append(getattr(obj, attribute))
            stack.extend(vars(obj).values() if hasattr(obj, "__dict__") else ())
    return total


def _record_memory_footprint(fixpoint: Instance) -> None:
    """The interned store (interner + int-row columns) against the decoded
    fact-set representation of the same fixpoint."""
    interned_bytes = _deep_size(
        (fixpoint.interner, {r: fixpoint.column(r) for r in fixpoint.schema})
    )
    fact_set_bytes = _deep_size(set(fixpoint.facts))
    ratio = fact_set_bytes / interned_bytes
    print(
        f"[E-COL] memory footprint (deep-chain fixpoint): interned store "
        f"{interned_bytes / 1e6:.2f} MB vs fact set "
        f"{fact_set_bytes / 1e6:.2f} MB -> {ratio:.2f}x smaller"
    )
    _record(
        "memory footprint (deep-chain fixpoint)",
        interned_store_bytes=interned_bytes,
        fact_set_bytes=fact_set_bytes,
        fact_set_over_interned=round(ratio, 2),
    )
    assert interned_bytes < fact_set_bytes, (
        "the interned columnar store should not be larger than the decoded "
        "fact-set representation"
    )
