"""E-T2 — Table II: the first-order translation of ALC concepts and ontologies.

Regenerates the translation table (every constructor) and verifies that the
translated medical ontology lands in the UNFO and GFO fragments, as Section 2
and Section 3.2 state.
"""

from repro.core import Variable
from repro.dl import (
    Bottom,
    ConceptName,
    Exists,
    Forall,
    Not,
    Role,
    Top,
    concept_to_fo,
    ontology_to_fo,
)
from repro.fo import is_gfo, is_unfo
from repro.workloads.medical import medical_ontology

A, B = ConceptName("A"), ConceptName("B")
R = Role("R")
CONSTRUCTORS = {
    "top": Top(),
    "bottom": Bottom(),
    "name": A,
    "negation": Not(A),
    "conjunction": A & B,
    "disjunction": A | B,
    "existential": Exists(R, A),
    "universal": Forall(R, A),
}


def test_table2_translation_of_all_constructors(benchmark):
    def translate_all():
        return {name: concept_to_fo(c, Variable("x")) for name, c in CONSTRUCTORS.items()}

    formulas = benchmark(translate_all)
    print("\n[E-T2] Table II translations:")
    for name, formula in formulas.items():
        print(f"    {name:12s} -> {formula}")
    assert all(is_unfo(f) for f in formulas.values())


def test_table2_medical_ontology_fragments(benchmark):
    sentences = benchmark(lambda: ontology_to_fo(medical_ontology()))
    in_unfo = sum(is_unfo(s) for s in sentences)
    in_gfo = sum(is_gfo(s) for s in sentences)
    print(f"\n[E-T2] medical ontology: {len(sentences)} sentences, {in_unfo} in UNFO, {in_gfo} in GFO")
    assert in_unfo == in_gfo == len(sentences)
