"""Pytest configuration: make the src layout importable without installation.

``pip install -e .`` is the supported path; this fallback keeps the test and
benchmark suites runnable in fully offline environments where the editable
install cannot build (no ``wheel`` package available).
"""

import os
import sys

SRC = os.path.join(os.path.dirname(__file__), "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)
