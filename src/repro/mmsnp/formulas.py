"""MMSNP, GMSNP and MMSNP2 formulas (Section 4).

An MMSNP formula has the shape ``∃X1..Xn ∀x1..xm ϕ`` where the ``Xi`` are
monadic second-order variables and ϕ is a conjunction of implications

    α1 ∧ ... ∧ αk  →  β1 ∨ ... ∨ βl

whose body atoms are SO atoms ``Xi(x)``, relational atoms ``R(x̄)`` or
equalities between free variables, and whose head atoms are SO atoms.  GMSNP
allows SO variables of arbitrary arity provided every head atom is *guarded*
by a body atom containing its variables; MMSNP2 lets monadic SO variables
range over facts as well as elements.  Free first-order variables turn a
formula into a query: ``coMMSNP`` queries return the tuples on which the
formula is *false* (matching the paper's convention).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

from ..core.cq import Variable
from ..core.instance import Instance
from ..core.schema import RelationSymbol, Schema

Element = Hashable


@dataclass(frozen=True, order=True)
class SOVariable:
    """A second-order variable; monadic unless ``arity`` says otherwise."""

    name: str
    arity: int = 1

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class SOAtom:
    """``X(x1, ..., xk)`` for a second-order variable X."""

    variable: SOVariable
    arguments: tuple

    def __post_init__(self) -> None:
        if len(self.arguments) != self.variable.arity:
            raise ValueError(
                f"SO variable {self.variable} expects {self.variable.arity} arguments"
            )

    def __str__(self) -> str:
        return f"{self.variable}({', '.join(map(str, self.arguments))})"


@dataclass(frozen=True)
class SchemaAtom:
    """A relational atom ``R(x1, ..., xk)`` over the data schema."""

    relation: RelationSymbol
    arguments: tuple

    def __post_init__(self) -> None:
        if len(self.arguments) != self.relation.arity:
            raise ValueError(f"atom over {self.relation} has the wrong arity")

    def __str__(self) -> str:
        return f"{self.relation.name}({', '.join(map(str, self.arguments))})"


@dataclass(frozen=True)
class EqualityAtom:
    """An equality ``x = y`` between first-order variables."""

    left: Variable
    right: Variable

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass(frozen=True)
class FactSOAtom:
    """An MMSNP2 atom ``X(R(x1, ..., xk))``: the fact belongs to the set X."""

    variable: SOVariable
    relation: RelationSymbol
    arguments: tuple

    def __str__(self) -> str:
        inner = f"{self.relation.name}({', '.join(map(str, self.arguments))})"
        return f"{self.variable}({inner})"


BodyAtom = "SOAtom | SchemaAtom | EqualityAtom | FactSOAtom"
HeadAtom = "SOAtom | FactSOAtom"


@dataclass(frozen=True)
class Implication:
    """``body → head`` with conjunctive body and disjunctive head."""

    body: tuple
    head: tuple

    def variables(self) -> set[Variable]:
        result: set[Variable] = set()
        for atom in itertools.chain(self.body, self.head):
            if isinstance(atom, EqualityAtom):
                result.update({atom.left, atom.right})
            else:
                result.update(a for a in atom.arguments if isinstance(a, Variable))
        return result

    def __str__(self) -> str:
        body = " ∧ ".join(map(str, self.body)) if self.body else "⊤"
        head = " ∨ ".join(map(str, self.head)) if self.head else "⊥"
        return f"{body} → {head}"

    def size(self) -> int:
        return sum(1 + len(getattr(a, "arguments", (0, 0))) for a in self.body) + sum(
            1 + len(getattr(a, "arguments", (0, 0))) for a in self.head
        )


class MMSNPFormula:
    """An MMSNP / GMSNP / MMSNP2 formula with optional free FO variables."""

    def __init__(
        self,
        so_variables: Sequence[SOVariable],
        implications: Iterable[Implication],
        free_variables: Sequence[Variable] = (),
    ) -> None:
        self.so_variables = tuple(so_variables)
        self.implications = tuple(implications)
        self.free_variables = tuple(free_variables)
        self._validate()

    def _validate(self) -> None:
        declared = set(self.so_variables)
        for implication in self.implications:
            for atom in itertools.chain(implication.body, implication.head):
                if isinstance(atom, (SOAtom, FactSOAtom)) and atom.variable not in declared:
                    raise ValueError(f"undeclared SO variable {atom.variable}")
            for atom in implication.head:
                if isinstance(atom, (SchemaAtom, EqualityAtom)):
                    raise ValueError("head atoms must be second-order atoms")

    # -- classification --------------------------------------------------------------

    def is_monadic(self) -> bool:
        return all(v.arity == 1 for v in self.so_variables)

    def uses_fact_atoms(self) -> bool:
        return any(
            isinstance(atom, FactSOAtom)
            for implication in self.implications
            for atom in itertools.chain(implication.body, implication.head)
        )

    def is_mmsnp(self) -> bool:
        """Monadic, no fact atoms: plain MMSNP."""
        return self.is_monadic() and not self.uses_fact_atoms()

    def is_gmsnp(self) -> bool:
        """Guarded monotone strict NP: every head atom is guarded by a body atom
        containing all of its variables (Section 4.1)."""
        if self.uses_fact_atoms():
            return False
        for implication in self.implications:
            for head_atom in implication.head:
                head_vars = {
                    a for a in head_atom.arguments if isinstance(a, Variable)
                }
                if not head_vars:
                    continue
                guarded = any(
                    head_vars
                    <= {
                        a
                        for a in body_atom.arguments
                        if isinstance(a, Variable)
                    }
                    for body_atom in implication.body
                    if isinstance(body_atom, (SchemaAtom, SOAtom))
                )
                if not guarded:
                    return False
        return True

    def is_mmsnp2(self) -> bool:
        """MMSNP2: monadic SO variables over elements and facts, with the
        guardedness condition on fact atoms in heads."""
        if not self.is_monadic():
            return False
        for implication in self.implications:
            for head_atom in implication.head:
                if isinstance(head_atom, FactSOAtom):
                    guard = SchemaAtom(head_atom.relation, head_atom.arguments)
                    if not any(
                        isinstance(body_atom, SchemaAtom)
                        and body_atom.relation == head_atom.relation
                        and body_atom.arguments == head_atom.arguments
                        for body_atom in implication.body
                    ):
                        return False
                    del guard
        return True

    def schema(self) -> Schema:
        symbols = set()
        for implication in self.implications:
            for atom in itertools.chain(implication.body, implication.head):
                if isinstance(atom, SchemaAtom):
                    symbols.add(atom.relation)
                elif isinstance(atom, FactSOAtom):
                    symbols.add(atom.relation)
        return Schema(symbols)

    def size(self) -> int:
        return sum(i.size() for i in self.implications) + len(self.so_variables)

    def is_sentence(self) -> bool:
        return not self.free_variables

    def __repr__(self) -> str:
        so = " ".join(f"∃{v}" for v in self.so_variables)
        body = " ∧ ".join(f"({i})" for i in self.implications)
        return f"{so} ∀* {body}"

    # -- semantics -----------------------------------------------------------------------

    def _fo_variables(self) -> list[Variable]:
        result: set[Variable] = set()
        for implication in self.implications:
            result.update(implication.variables())
        return sorted(result - set(self.free_variables), key=str)

    def holds(
        self,
        instance: Instance,
        assignment: Sequence[Element] = (),
    ) -> bool:
        """Does ``(adom(D), D) ⊨ Φ[assignment]``?

        The empty instance satisfies every MMSNP sentence by the paper's
        convention.  Evaluation enumerates second-order witnesses, which is
        exponential and intended for the small instances used in tests; large
        scale evaluation goes through the MDDlog translation (Proposition 4.1).
        """
        domain = sorted(instance.active_domain, key=repr)
        if not domain:
            return self.is_sentence()
        free_map = dict(zip(self.free_variables, assignment))
        fact_universe = sorted(instance.facts, key=str)
        return any(
            self._check_implications(instance, domain, so_assignment, free_map)
            for so_assignment in self._so_assignments(domain, fact_universe)
        )

    def _so_assignments(self, domain, fact_universe):
        element_sets = list(_powerset(domain))
        fact_sets = list(_powerset(fact_universe)) if self.uses_fact_atoms() else [()]
        spaces = []
        for variable in self.so_variables:
            if variable.arity == 1:
                if self.uses_fact_atoms():
                    spaces.append(
                        [
                            (frozenset(e), frozenset(f))
                            for e in element_sets
                            for f in fact_sets
                        ]
                    )
                else:
                    spaces.append([(frozenset(e), frozenset()) for e in element_sets])
            else:
                tuples = list(itertools.product(domain, repeat=variable.arity))
                spaces.append(
                    [(frozenset(s), frozenset()) for s in _powerset(tuples)]
                )
        for choice in itertools.product(*spaces):
            yield dict(zip(self.so_variables, choice))

    def _check_implications(self, instance, domain, so_assignment, free_map) -> bool:
        fo_variables = self._fo_variables()
        for values in itertools.product(domain, repeat=len(fo_variables)):
            mapping = dict(free_map)
            mapping.update(zip(fo_variables, values))
            for implication in self.implications:
                if self._body_holds(
                    instance, implication, mapping, so_assignment
                ) and not self._head_holds(implication, mapping, so_assignment):
                    return False
        return True

    def _body_holds(self, instance, implication, mapping, so_assignment) -> bool:
        for atom in implication.body:
            if isinstance(atom, EqualityAtom):
                if mapping[atom.left] != mapping[atom.right]:
                    return False
            elif isinstance(atom, SchemaAtom):
                args = tuple(mapping.get(a, a) for a in atom.arguments)
                if args not in instance.tuples(atom.relation):
                    return False
            elif isinstance(atom, SOAtom):
                elements, _facts = so_assignment[atom.variable]
                args = tuple(mapping.get(a, a) for a in atom.arguments)
                value = args[0] if atom.variable.arity == 1 else args
                if value not in elements:
                    return False
            elif isinstance(atom, FactSOAtom):
                _elements, facts = so_assignment[atom.variable]
                args = tuple(mapping.get(a, a) for a in atom.arguments)
                from ..core.instance import Fact

                if Fact(atom.relation, args) not in facts:
                    return False
        return True

    def _head_holds(self, implication, mapping, so_assignment) -> bool:
        for atom in implication.head:
            if isinstance(atom, SOAtom):
                elements, _facts = so_assignment[atom.variable]
                args = tuple(mapping.get(a, a) for a in atom.arguments)
                value = args[0] if atom.variable.arity == 1 else args
                if value in elements:
                    return True
            elif isinstance(atom, FactSOAtom):
                _elements, facts = so_assignment[atom.variable]
                args = tuple(mapping.get(a, a) for a in atom.arguments)
                from ..core.instance import Fact

                if Fact(atom.relation, args) in facts:
                    return True
        return False


class CoMMSNPQuery:
    """The query defined by the *complement* of an MMSNP formula.

    ``q_Φ(D)`` consists of the tuples on which the formula is false; Boolean
    for sentences.  This matches the paper's coMMSNP / coGMSNP convention.
    """

    def __init__(self, formula: MMSNPFormula):
        self.formula = formula

    @property
    def arity(self) -> int:
        return len(self.formula.free_variables)

    def evaluate(self, instance: Instance) -> frozenset[tuple]:
        domain = sorted(instance.active_domain, key=repr)
        answers = set()
        for values in itertools.product(domain, repeat=self.arity):
            if not self.formula.holds(instance, values):
                answers.add(values)
        return frozenset(answers)

    def holds_in(self, instance: Instance, answer: Sequence = ()) -> bool:
        return not self.formula.holds(instance, tuple(answer))


def _powerset(items):
    items = list(items)
    for size in range(len(items) + 1):
        yield from itertools.combinations(items, size)
