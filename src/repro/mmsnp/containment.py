"""Containment of MMSNP formulas and coMMSNP queries (Section 5.2).

The paper uses two results about MMSNP containment:

* containment between MMSNP *sentences* is decidable (Feder & Vardi 1998);
* containment between MMSNP *formulas* reduces in polynomial time to
  containment between sentences (Proposition 5.5), via the marker-predicate
  encoding of Proposition 5.2.

The exact Feder–Vardi decision procedure is doubly exponential and far beyond
laptop scale, so this module exposes:

* the polynomial reduction of Proposition 5.5 (:func:`reduce_to_sentence_containment`);
* a *bounded* containment checker that enumerates candidate counterexample
  instances up to a size bound — any counterexample it reports is genuine, and
  for the small formulas used throughout the reproduction the bound implied by
  the formulas' implication sizes is reachable exhaustively
  (:func:`comsnp_contained_in`, :func:`containment_counterexample`).

Containment here is containment of the induced *coMMSNP queries*, matching the
orientation used for ontology-mediated queries in Theorem 5.6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..core.instance import Instance
from ..core.schema import RelationSymbol, Schema
from ..core.structures import all_instances_over
from .formulas import CoMMSNPQuery, MMSNPFormula
from .normal_forms import formula_to_sentence


@dataclass(frozen=True)
class ContainmentWitness:
    """A counterexample to ``q_Φ1 ⊆ q_Φ2``: an instance and an answer tuple."""

    instance: Instance
    answer: tuple

    def __str__(self) -> str:
        return f"answer {self.answer} on {self.instance!r}"


def common_schema(first: MMSNPFormula, second: MMSNPFormula) -> Schema:
    """The joint data schema the two formulas are compared over."""
    return first.schema() | second.schema()


def suggested_domain_size(first: MMSNPFormula, second: MMSNPFormula) -> int:
    """A pragmatic counterexample domain-size bound.

    Small-model arguments for MMSNP containment give bounds exponential in the
    number of SO variables and implication widths; for the reproduction's
    formulas a domain of ``max implication width + 1`` elements already
    separates all non-contained pairs used in tests and benchmarks.
    """
    widths = [len(i.variables()) for i in first.implications + second.implications]
    return max(widths, default=1) + 1


def _candidate_instances(
    schema: Schema,
    domain_size: int,
    max_facts: int | None,
) -> Iterable[Instance]:
    domain = [f"e{i}" for i in range(domain_size)]
    yield from all_instances_over(schema, domain, max_facts)


def containment_counterexample(
    first: MMSNPFormula,
    second: MMSNPFormula,
    domain_size: int | None = None,
    max_facts: int | None = 4,
) -> ContainmentWitness | None:
    """Search for an instance on which ``q_Φ1 ⊄ q_Φ2`` (coMMSNP orientation).

    Returns a genuine witness or ``None`` if no counterexample exists within
    the bound.  ``None`` is *evidence of* containment, and is exact whenever
    the search bound meets the small-model bound for the pair at hand.
    """
    if len(first.free_variables) != len(second.free_variables):
        raise ValueError("containment requires formulas of the same arity")
    schema = common_schema(first, second)
    size = domain_size if domain_size is not None else suggested_domain_size(first, second)
    left_query, right_query = CoMMSNPQuery(first), CoMMSNPQuery(second)
    for instance in _candidate_instances(schema, size, max_facts):
        if instance.is_empty():
            continue
        left = left_query.evaluate(instance)
        if not left:
            continue
        right = right_query.evaluate(instance)
        extra = left - right
        if extra:
            return ContainmentWitness(instance, sorted(extra)[0])
    return None


def comsnp_contained_in(
    first: MMSNPFormula,
    second: MMSNPFormula,
    domain_size: int | None = None,
    max_facts: int | None = 4,
) -> bool:
    """Bounded check that the coMMSNP query of ``first`` is contained in that of ``second``."""
    witness = containment_counterexample(
        first, second, domain_size=domain_size, max_facts=max_facts
    )
    return witness is None


def reduce_to_sentence_containment(
    first: MMSNPFormula, second: MMSNPFormula, prefix: str = "P"
) -> tuple[MMSNPFormula, MMSNPFormula, tuple[RelationSymbol, ...]]:
    """Proposition 5.5: formula containment as sentence containment.

    Both formulas are encoded over the same extended schema
    ``S ∪ {P1 ... Pn}`` using :func:`repro.mmsnp.normal_forms.formula_to_sentence`;
    the original formulas satisfy ``q_Φ1 ⊆ q_Φ2`` iff the encoded sentences
    satisfy the corresponding containment over marked expansions, which is the
    sentence-containment problem shown decidable by Feder and Vardi.
    """
    if len(first.free_variables) != len(second.free_variables):
        raise ValueError("containment requires formulas of the same arity")
    first_sentence, markers = formula_to_sentence(first, prefix=prefix)
    second_sentence, second_markers = formula_to_sentence(second, prefix=prefix)
    if markers != second_markers:
        raise AssertionError("marker symbols must coincide for both encodings")
    return first_sentence, second_sentence, markers


def sentences_equivalent_on(
    first: MMSNPFormula,
    second: MMSNPFormula,
    instances: Iterable[Instance],
) -> bool:
    """Do two MMSNP sentences agree on every given instance?"""
    return all(
        first.holds(instance) == second.holds(instance)
        for instance in instances
    )


def formulas_equivalent_bounded(
    first: MMSNPFormula,
    second: MMSNPFormula,
    domain_size: int | None = None,
    max_facts: int | None = 4,
) -> bool:
    """Bounded equivalence: containment in both directions."""
    return comsnp_contained_in(
        first, second, domain_size=domain_size, max_facts=max_facts
    ) and comsnp_contained_in(second, first, domain_size=domain_size, max_facts=max_facts)
