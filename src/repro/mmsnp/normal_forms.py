"""Normal forms for MMSNP formulas (Section 4.1 and Proposition 5.2).

Three transformations are provided:

* **equality elimination** for sentences — the paper's remark that equality
  atoms can be removed from MMSNP sentences by identifying co-occurring
  variables;
* **free-variable saturation** — conditions (i) and (ii) used in the proof of
  Proposition 4.1: every free variable occurs in a non-equality atom of every
  implication, and equality atoms only relate free variables;
* **sentence encoding of formulas** (Proposition 5.2) — an MMSNP formula with
  free variables ``y1 ... yn`` over schema ``S`` is polynomially equivalent to
  an MMSNP *sentence* over ``S ∪ {P1 ... Pn}``: the formula holds of ``(D, d)``
  exactly when the sentence holds of the expansion ``(D, d)^c`` that marks each
  ``di`` with the fresh unary symbol ``Pi``.
"""

from __future__ import annotations

import itertools
from typing import Sequence

from ..core.cq import Variable, var
from ..core.instance import Fact, Instance
from ..core.schema import RelationSymbol
from .formulas import (
    EqualityAtom,
    FactSOAtom,
    Implication,
    MMSNPFormula,
    SchemaAtom,
    SOAtom,
)


def _substitute_atom(atom, mapping):
    if isinstance(atom, EqualityAtom):
        return EqualityAtom(mapping.get(atom.left, atom.left), mapping.get(atom.right, atom.right))
    if isinstance(atom, SchemaAtom):
        return SchemaAtom(atom.relation, tuple(mapping.get(a, a) for a in atom.arguments))
    if isinstance(atom, SOAtom):
        return SOAtom(atom.variable, tuple(mapping.get(a, a) for a in atom.arguments))
    if isinstance(atom, FactSOAtom):
        return FactSOAtom(
            atom.variable, atom.relation, tuple(mapping.get(a, a) for a in atom.arguments)
        )
    raise TypeError(f"unexpected atom {atom!r}")


def substitute_implication(implication: Implication, mapping) -> Implication:
    """Apply a variable substitution to every atom of an implication."""
    return Implication(
        tuple(_substitute_atom(a, mapping) for a in implication.body),
        tuple(_substitute_atom(a, mapping) for a in implication.head),
    )


def _equality_classes(implication: Implication) -> dict[Variable, Variable]:
    """Union-find representative map induced by the implication's equality atoms."""
    parent: dict[Variable, Variable] = {}

    def find(x: Variable) -> Variable:
        parent.setdefault(x, x)
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for atom in implication.body:
        if isinstance(atom, EqualityAtom):
            left, right = find(atom.left), find(atom.right)
            if left != right:
                parent[left] = right
    return {v: find(v) for v in parent}


def eliminate_equalities(formula: MMSNPFormula) -> MMSNPFormula:
    """Remove equality atoms from an MMSNP *sentence* by identifying variables.

    This is the paper's observation that equality atoms are syntactic sugar in
    sentences.  Free variables are kept as representatives of their classes so
    the transformation is also usable on formulas whose equalities only relate
    free variables (it then leaves those equalities in place).
    """
    free = set(formula.free_variables)
    new_implications = []
    for implication in formula.implications:
        mapping = _equality_classes(implication)
        # Prefer free variables as representatives so they never disappear.
        adjusted: dict[Variable, Variable] = {}
        classes: dict[Variable, list[Variable]] = {}
        for variable, representative in mapping.items():
            classes.setdefault(representative, []).append(variable)
        for representative, members in classes.items():
            group = sorted(set(members) | {representative}, key=str)
            free_members = [v for v in group if v in free]
            target = free_members[0] if free_members else group[0]
            for member in group:
                adjusted[member] = target
        substituted = substitute_implication(implication, adjusted)
        kept_body = []
        for atom in substituted.body:
            if isinstance(atom, EqualityAtom):
                if atom.left == atom.right:
                    continue
                if atom.left in free and atom.right in free:
                    kept_body.append(atom)
                    continue
                # Equalities between bound variables were resolved by the
                # substitution above; anything left relates a bound and a free
                # variable and is resolved by substituting the bound one.
                raise AssertionError("unresolved equality after identification")
            kept_body.append(atom)
        if not kept_body:
            # An implication with an empty body is only meaningful if its head
            # is also empty (then the formula is unsatisfiable); keep a trivial
            # tautology out of the result.
            if not substituted.head:
                new_implications.append(Implication((), ()))
            continue
        new_implications.append(Implication(tuple(kept_body), substituted.head))
    return MMSNPFormula(formula.so_variables, new_implications, formula.free_variables)


def saturate_free_variables(formula: MMSNPFormula) -> MMSNPFormula:
    """Enforce conditions (i) and (ii) from the proof of Proposition 4.1.

    (i) every free variable occurs in some non-equality atom of every
        implication — implications violating this are replaced by the set of
        implications obtained by adding a schema atom that mentions the
        missing variable (one per relation symbol and position);
    (ii) every equality atom relates two free variables — equalities involving
        a bound variable are removed by substituting it away.
    """
    schema = formula.schema()
    free = list(formula.free_variables)
    fresh_counter = itertools.count()

    def fresh() -> Variable:
        return var(f"_s{next(fresh_counter)}")

    result: list[Implication] = []
    for implication in formula.implications:
        # -- condition (ii): substitute away equalities with bound variables.
        mapping: dict[Variable, Variable] = {}
        for atom in implication.body:
            if isinstance(atom, EqualityAtom):
                left_free, right_free = atom.left in free, atom.right in free
                if left_free and right_free:
                    continue
                if left_free:
                    mapping[atom.right] = atom.left
                elif right_free:
                    mapping[atom.left] = atom.right
                else:
                    mapping[atom.right] = atom.left
        adjusted = substitute_implication(implication, mapping)
        body = tuple(
            atom
            for atom in adjusted.body
            if not (
                isinstance(atom, EqualityAtom)
                and (atom.left == atom.right or atom.left not in free or atom.right not in free)
            )
        )
        adjusted = Implication(body, adjusted.head)

        # -- condition (i): every free variable occurs in a non-equality atom.
        missing = [y for y in free if not _occurs_in_non_equality(adjusted, y)]
        variants = [adjusted]
        for variable in missing:
            padded: list[Implication] = []
            for candidate in variants:
                for symbol in sorted(schema, key=lambda s: (s.name, s.arity)):
                    for position in range(symbol.arity):
                        arguments = tuple(
                            variable if index == position else fresh()
                            for index in range(symbol.arity)
                        )
                        padded.append(
                            Implication(
                                candidate.body + (SchemaAtom(symbol, arguments),),
                                candidate.head,
                            )
                        )
            variants = padded if padded else variants
        result.extend(variants)
    return MMSNPFormula(formula.so_variables, result, formula.free_variables)


def _occurs_in_non_equality(implication: Implication, variable: Variable) -> bool:
    for atom in itertools.chain(implication.body, implication.head):
        if isinstance(atom, EqualityAtom):
            continue
        if variable in atom.arguments:
            return True
    return False


def mark_symbols(arity: int, prefix: str = "P") -> tuple[RelationSymbol, ...]:
    """The fresh unary symbols ``P1 ... Pn`` used by the sentence encoding."""
    return tuple(RelationSymbol(f"{prefix}{i + 1}", 1) for i in range(arity))


def formula_to_sentence(
    formula: MMSNPFormula, prefix: str = "P"
) -> tuple[MMSNPFormula, tuple[RelationSymbol, ...]]:
    """The sentence encoding of Proposition 5.2.

    Returns an MMSNP sentence ``Φ'`` over ``S ∪ {P1 ... Pn}`` together with the
    marker symbols, such that for every ``S``-instance ``D`` and tuple ``d``:

        ``(adom(D), D) ⊨ Φ[d]``   iff   ``(adom(D), (D, d)^c) ⊨ Φ'``.

    Each implication receives guard atoms ``Pi(yi)`` for the free variables it
    mentions, which relativises it to the marked elements.
    """
    free = formula.free_variables
    markers = mark_symbols(len(free), prefix=prefix)
    for symbol in markers:
        if symbol in formula.schema():
            raise ValueError(f"marker symbol {symbol} clashes with the formula schema")
    guard_of = dict(zip(free, markers))
    sentence_implications = []
    for implication in formula.implications:
        mentioned = [y for y in free if y in implication.variables()]
        guards = tuple(SchemaAtom(guard_of[y], (y,)) for y in mentioned)
        sentence_implications.append(
            Implication(guards + tuple(implication.body), tuple(implication.head))
        )
    sentence = MMSNPFormula(formula.so_variables, sentence_implications, ())
    return sentence, markers


def marked_expansion(
    instance: Instance, answer: Sequence, markers: Sequence[RelationSymbol]
) -> Instance:
    """The expansion ``(D, d)^c`` matching :func:`formula_to_sentence`."""
    if len(answer) != len(markers):
        raise ValueError("answer tuple and marker symbols must have the same length")
    extra = [Fact(symbol, (element,)) for symbol, element in zip(markers, answer)]
    return instance.with_facts(extra)
