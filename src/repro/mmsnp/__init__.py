"""MMSNP, GMSNP and MMSNP2 formulas, the coMMSNP query language, normal forms
and containment (Sections 4.1 and 5.2)."""

from .containment import (
    ContainmentWitness,
    common_schema,
    comsnp_contained_in,
    containment_counterexample,
    formulas_equivalent_bounded,
    reduce_to_sentence_containment,
    sentences_equivalent_on,
    suggested_domain_size,
)
from .formulas import (
    CoMMSNPQuery,
    EqualityAtom,
    FactSOAtom,
    Implication,
    MMSNPFormula,
    SchemaAtom,
    SOAtom,
    SOVariable,
)
from .normal_forms import (
    eliminate_equalities,
    formula_to_sentence,
    mark_symbols,
    marked_expansion,
    saturate_free_variables,
    substitute_implication,
)

__all__ = [
    "CoMMSNPQuery",
    "ContainmentWitness",
    "EqualityAtom",
    "FactSOAtom",
    "Implication",
    "MMSNPFormula",
    "SOAtom",
    "SOVariable",
    "SchemaAtom",
    "common_schema",
    "comsnp_contained_in",
    "containment_counterexample",
    "eliminate_equalities",
    "formula_to_sentence",
    "formulas_equivalent_bounded",
    "mark_symbols",
    "marked_expansion",
    "reduce_to_sentence_containment",
    "saturate_free_variables",
    "sentences_equivalent_on",
    "substitute_implication",
    "suggested_domain_size",
]
