"""Schemas: finite collections of relation symbols with associated arities.

A schema in the paper (Section 2) is a finite collection ``S = (S1, ..., Sk)``
of relation symbols, each with an arity.  Description logics use *binary*
schemas, whose relation symbols are unary (*concept names*) or binary
(*role names*).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable, Iterable, Iterator, Mapping

if TYPE_CHECKING:
    from .instance import Fact


@dataclass(frozen=True, order=True)
class RelationSymbol:
    """A relation symbol with a fixed arity.

    Two symbols are equal iff they have the same name and arity; using a
    symbol with conflicting arities in one schema is rejected by
    :class:`Schema`.
    """

    name: str
    arity: int

    def __post_init__(self) -> None:
        if self.arity < 0:
            raise ValueError(f"arity must be non-negative, got {self.arity}")
        if not self.name:
            raise ValueError("relation symbol name must be non-empty")

    def __str__(self) -> str:
        return f"{self.name}/{self.arity}"

    def __call__(self, *args: Hashable) -> "Fact":
        """Build a fact (or atom) over this symbol: ``R(a, b)``."""
        from .instance import Fact

        return Fact(self, tuple(args))


class Schema:
    """A finite set of relation symbols.

    Schemas behave as immutable collections.  They support union,
    membership tests by symbol or by name, and lookups by name.
    """

    def __init__(self, symbols: Iterable[RelationSymbol] = ()) -> None:
        by_name: dict[str, RelationSymbol] = {}
        for sym in symbols:
            if not isinstance(sym, RelationSymbol):
                raise TypeError(f"expected RelationSymbol, got {sym!r}")
            existing = by_name.get(sym.name)
            if existing is not None and existing.arity != sym.arity:
                raise ValueError(
                    f"conflicting arities for symbol {sym.name}: "
                    f"{existing.arity} vs {sym.arity}"
                )
            by_name[sym.name] = sym
        self._by_name: Mapping[str, RelationSymbol] = dict(sorted(by_name.items()))

    @classmethod
    def binary(
        cls,
        concept_names: Iterable[str] = (),
        role_names: Iterable[str] = (),
    ) -> "Schema":
        """Build a binary schema from concept names (unary) and role names (binary)."""
        symbols = [RelationSymbol(name, 1) for name in concept_names]
        symbols += [RelationSymbol(name, 2) for name in role_names]
        return cls(symbols)

    # -- collection protocol -------------------------------------------------

    def __iter__(self) -> Iterator[RelationSymbol]:
        return iter(self._by_name.values())

    def __len__(self) -> int:
        return len(self._by_name)

    def __contains__(self, item: object) -> bool:
        if isinstance(item, RelationSymbol):
            return self._by_name.get(item.name) == item
        if isinstance(item, str):
            return item in self._by_name
        return False

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._by_name == other._by_name

    def __hash__(self) -> int:
        return hash(tuple(self._by_name.values()))

    def __repr__(self) -> str:
        inner = ", ".join(str(sym) for sym in self)
        return f"Schema({{{inner}}})"

    # -- queries --------------------------------------------------------------

    def __getitem__(self, name: str) -> RelationSymbol:
        return self._by_name[name]

    def get(self, name: str) -> RelationSymbol | None:
        return self._by_name.get(name)

    @property
    def symbols(self) -> tuple[RelationSymbol, ...]:
        return tuple(self._by_name.values())

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._by_name.keys())

    def of_arity(self, arity: int) -> tuple[RelationSymbol, ...]:
        return tuple(sym for sym in self if sym.arity == arity)

    @property
    def concept_names(self) -> tuple[RelationSymbol, ...]:
        """Unary symbols (concept names of a binary schema)."""
        return self.of_arity(1)

    @property
    def role_names(self) -> tuple[RelationSymbol, ...]:
        """Binary symbols (role names of a binary schema)."""
        return self.of_arity(2)

    def is_binary(self) -> bool:
        """True if every symbol has arity one or two."""
        return all(sym.arity in (1, 2) for sym in self)

    def max_arity(self) -> int:
        return max((sym.arity for sym in self), default=0)

    # -- constructors ---------------------------------------------------------

    def union(self, other: "Schema | Iterable[RelationSymbol]") -> "Schema":
        return Schema(list(self) + list(other))

    def __or__(self, other: "Schema") -> "Schema":
        return self.union(other)

    def restrict(self, names: Iterable[str]) -> "Schema":
        wanted = set(names)
        return Schema(sym for sym in self if sym.name in wanted)

    def without(self, names: Iterable[str]) -> "Schema":
        excluded = set(names)
        return Schema(sym for sym in self if sym.name not in excluded)
