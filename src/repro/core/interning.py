"""Constant interning and columnar relation storage.

The evaluation core stores every relation as a set of *int rows*: tuples of
dense integer codes assigned to constants by an append-only
:class:`Interner`.  Joins, fixpoints, delta maintenance and grounding all
operate on int rows — hashing and comparing machine integers instead of
arbitrary (often tuple- or string-shaped) constants — and decode back to
constants only at API boundaries.

Two invariants make the design safe:

* **Interners are append-only.**  A code, once assigned, stands for the
  same constant forever; codes are never reused even when every fact
  mentioning the constant is deleted.  Delta copies of an instance therefore
  *share* their parent's interner (``with_facts`` / ``without_facts`` /
  fixpoint stores all extend one interner in place), and a row interned in
  one epoch stays valid in every later epoch.
* **Interning is injective on constants, not on reprs.**  Codes are keyed by
  the constants themselves (dict identity-of-equality), so distinct
  constants with identical ``repr`` stay distinct — the same invariant the
  join engine's ``canonical_key`` documents for assignment dedup.

:class:`ColumnarRelation` is the frozen per-relation store: a set of int
rows with a lazily sorted run (for merge-style comparisons) and lazily built
per-position secondary indexes mapping a code to the rows carrying it at
that position.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Sequence

IntRow = tuple  # tuple[int, ...]

_EMPTY_ROWSET: frozenset = frozenset()


class Interner:
    """An append-only bidirectional constant ↔ dense-int mapping."""

    __slots__ = ("_codes", "_values")

    def __init__(self) -> None:
        self._codes: dict[Hashable, int] = {}
        self._values: list[Hashable] = []

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, value: object) -> bool:
        return value in self._codes

    def intern(self, value: Hashable) -> int:
        """The code of ``value``, assigning the next dense int if it is new."""
        code = self._codes.get(value)
        if code is None:
            code = len(self._values)
            self._codes[value] = code
            self._values.append(value)
        return code

    def intern_row(self, arguments: Sequence[Hashable]) -> IntRow:
        """Intern a whole argument tuple into an int row."""
        codes = self._codes
        values = self._values
        row = []
        for value in arguments:
            code = codes.get(value)
            if code is None:
                code = len(values)
                codes[value] = code
                values.append(value)
            row.append(code)
        return tuple(row)

    def code(self, value: Hashable) -> int | None:
        """The code of ``value`` if it was ever interned, else ``None``."""
        return self._codes.get(value)

    def value(self, code: int) -> Hashable:
        """The constant a code stands for."""
        return self._values[code]

    def decode_row(self, row: IntRow) -> tuple:
        """Decode an int row back into a constant tuple."""
        values = self._values
        return tuple(values[code] for code in row)

    def decode_many(self, codes: Iterable[int]) -> Iterator[Hashable]:
        values = self._values
        return (values[code] for code in codes)

    def remap_from(self, other: "Interner") -> list[int]:
        """A translation array ``other`` code → ``self`` code.

        Used by interner-merge operations (instance union, shard merge):
        each *distinct* constant of ``other`` is interned once into
        ``self``, and rows are then translated by O(1) list lookups per
        occurrence instead of re-hashing every constant of every row.
        """
        if other is self:
            return list(range(len(self._values)))
        return [self.intern(value) for value in other._values]


class ColumnarRelation:
    """A frozen relation: a set of int rows plus lazy secondary structure.

    ``rows`` is the membership set; :meth:`sorted_rows` is the lazily
    computed sorted run (int rows sort lexicographically without touching
    the underlying constants); :meth:`bucket` serves the per-position
    secondary index (code → rows carrying the code at that position),
    built once per position family on first use and shared by delta copies
    for relations an update does not touch.
    """

    __slots__ = ("arity", "rows", "_sorted", "_buckets")

    def __init__(self, arity: int, rows: frozenset) -> None:
        self.arity = arity
        self.rows = rows
        self._sorted: tuple | None = None
        self._buckets: tuple[dict[int, frozenset], ...] | None = None

    def __len__(self) -> int:
        return len(self.rows)

    def sorted_rows(self) -> tuple:
        """The rows as one sorted run (cached)."""
        if self._sorted is None:
            self._sorted = tuple(sorted(self.rows))
        return self._sorted

    def _force_buckets(self) -> tuple[dict[int, frozenset], ...]:
        if self._buckets is None:
            builders: tuple[dict[int, set], ...] = tuple(
                {} for _ in range(self.arity)
            )
            for row in self.rows:
                for position, code in enumerate(row):
                    bucket = builders[position].get(code)
                    if bucket is None:
                        builders[position][code] = {row}
                    else:
                        bucket.add(row)
            self._buckets = tuple(
                {code: frozenset(rows) for code, rows in builder.items()}
                for builder in builders
            )
        return self._buckets

    def bucket(self, position: int, code: int) -> frozenset:
        """All rows carrying ``code`` at ``position``."""
        return self._force_buckets()[position].get(code, _EMPTY_ROWSET)

    def distinct_counts(self) -> tuple[int, ...]:
        """Distinct codes per position (the planner's column statistics)."""
        return tuple(len(index) for index in self._force_buckets())

    def with_rows(self, added: Iterable[IntRow]) -> "ColumnarRelation":
        """A new store with rows added (buckets rebuilt lazily)."""
        rows = self.rows | frozenset(added)
        if len(rows) == len(self.rows):
            return self
        return ColumnarRelation(self.arity, rows)

    def without_rows(self, removed: Iterable[IntRow]) -> "ColumnarRelation":
        """A new store with rows removed (buckets rebuilt lazily)."""
        rows = self.rows - frozenset(removed)
        if len(rows) == len(self.rows):
            return self
        return ColumnarRelation(self.arity, rows)


class MutableColumnarRelation:
    """The mutable counterpart used by in-place fixpoint stores.

    Rows live in one plain set updated by :meth:`add`; the per-position
    buckets are built lazily and then maintained incrementally, so distinct
    counts and bucket probes stay O(1) across fixpoint rounds instead of
    being rebuilt per round.
    """

    __slots__ = ("arity", "rows", "_buckets")

    def __init__(self, arity: int, rows: Iterable[IntRow] = ()) -> None:
        self.arity = arity
        self.rows: set = set(rows)
        self._buckets: tuple[dict[int, set], ...] | None = None

    def __len__(self) -> int:
        return len(self.rows)

    def add(self, row: IntRow) -> bool:
        if row in self.rows:
            return False
        self.rows.add(row)
        if self._buckets is not None:
            for position, code in enumerate(row):
                bucket = self._buckets[position].get(code)
                if bucket is None:
                    self._buckets[position][code] = {row}
                else:
                    bucket.add(row)
        return True

    def _force_buckets(self) -> tuple[dict[int, set], ...]:
        if self._buckets is None:
            builders: tuple[dict[int, set], ...] = tuple(
                {} for _ in range(self.arity)
            )
            for row in self.rows:
                for position, code in enumerate(row):
                    bucket = builders[position].get(code)
                    if bucket is None:
                        builders[position][code] = {row}
                    else:
                        bucket.add(row)
            self._buckets = builders
        return self._buckets

    def bucket(self, position: int, code: int) -> set | frozenset:
        return self._force_buckets()[position].get(code, _EMPTY_ROWSET)

    def distinct_counts(self) -> tuple[int, ...]:
        return tuple(len(index) for index in self._force_buckets())

    def freeze(self) -> ColumnarRelation:
        """An immutable snapshot donating the built buckets."""
        frozen = ColumnarRelation(self.arity, frozenset(self.rows))
        if self._buckets is not None:
            frozen._buckets = tuple(
                {code: frozenset(rows) for code, rows in index.items()}
                for index in self._buckets
            )
        return frozen
