"""Facts, instances and marked instances (Section 2 of the paper).

An *instance* over a schema ``S`` is a finite set of facts ``R(a1, ..., an)``
with ``R`` in ``S`` and constants ``ai``.  The *active domain* ``adom(D)`` is
the set of constants occurring in facts.  A *marked instance* additionally
carries a tuple of distinguished active-domain elements (Section 4.2).

Internally an instance is an **interned columnar store**: the active domain
is interned to dense integers by an append-only
:class:`~repro.core.interning.Interner`, and every relation is a
:class:`~repro.core.interning.ColumnarRelation` of int rows with lazily
built per-position secondary indexes (code → rows).  The evaluation engine
(:mod:`repro.engine.joins`) operates directly on int rows through the *row
protocol* — :meth:`Instance.relation_rows`, :meth:`Instance.row_bucket`,
:meth:`Instance.column_stats`, :meth:`Instance.sorted_rows` — so joins,
fixpoints and grounding hash machine integers instead of arbitrary
constants.  The classic constant-level views (``tuples``, ``tuples_with``,
``position_values``, ``facts_with_constant``) survive unchanged as lazily
decoded views over the interned store, so every pre-columnar consumer keeps
working.

Delta copies (:meth:`with_facts` / :meth:`without_facts`) *share* the
parent's interner — interners are append-only, so codes remain valid across
epochs — and share the columnar stores (buckets included) of every relation
the update does not touch.  :class:`MutableIndexedInstance` is the in-place
fixpoint store speaking the same row protocol over mutable columns;
:class:`TupleIndexedInstance` preserves the pre-columnar tuple-at-a-time
store for cross-validation and benchmarking against the interned core.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Iterator, Mapping, Sequence

from .interning import (
    ColumnarRelation,
    Interner,
    IntRow,
    MutableColumnarRelation,
)
from .schema import RelationSymbol, Schema

Constant = Hashable

_EMPTY_ROWS: frozenset = frozenset()


@dataclass(frozen=True, order=True)
class Fact:
    """A ground fact ``R(a1, ..., an)``."""

    relation: RelationSymbol
    arguments: tuple

    def __post_init__(self) -> None:
        if len(self.arguments) != self.relation.arity:
            raise ValueError(
                f"relation {self.relation} expects {self.relation.arity} "
                f"arguments, got {len(self.arguments)}"
            )

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.arguments)
        return f"{self.relation.name}({args})"

    def map(self, mapping: Callable[[Constant], Constant]) -> "Fact":
        return Fact(self.relation, tuple(mapping(a) for a in self.arguments))


def _fact(relation: RelationSymbol, arguments: tuple) -> Fact:
    """Internal Fact constructor for decode paths: the arity is correct by
    construction (rows come from the relation's own column), so the
    dataclass ``__post_init__`` validation is skipped."""
    fact = object.__new__(Fact)
    object.__setattr__(fact, "relation", relation)
    object.__setattr__(fact, "arguments", arguments)
    return fact


class Instance:
    """A finite set of facts over a schema.

    Instances are immutable; set-like operations return new instances.
    The schema is inferred from the facts unless given explicitly (a schema
    may declare symbols that do not occur in any fact).
    """

    __slots__ = (
        "_facts",
        "_schema",
        "_adom",
        "_interner",
        "_columns",
        "_grouped",
        "_tuples_view",
        "_position_view",
        "_by_constant",
    )

    def __init__(
        self,
        facts: Iterable[Fact] = (),
        schema: Schema | None = None,
    ) -> None:
        self._facts: frozenset[Fact] | None = frozenset(facts)
        inferred = Schema(fact.relation for fact in self._facts)
        if schema is None:
            self._schema = inferred
        else:
            for sym in inferred:
                if sym not in schema:
                    raise ValueError(f"fact uses symbol {sym} outside the schema")
            self._schema = schema
        # Interning is lazy: an instance that only ever serves the decoded
        # constant-level API (homomorphism search, DL templates, set algebra
        # over facts) never pays the intern-then-decode round trip.  The
        # interner and columns materialize on first touch of the row
        # protocol — i.e. the first time the instance is joined.
        self._interner: Interner | None = None
        self._columns: dict[RelationSymbol, ColumnarRelation] | None = None
        self._adom: frozenset | None = None
        self._grouped = False
        self._tuples_view: dict[RelationSymbol, frozenset] = {}
        self._position_view: dict[
            RelationSymbol, tuple[dict[Constant, frozenset[tuple]], ...]
        ] = {}
        self._by_constant: dict[Constant, frozenset[Fact]] | None = None

    # -- basic accessors -------------------------------------------------------

    def _force_facts(self) -> frozenset[Fact]:
        if self._facts is None:
            decode = self._interner.decode_row
            self._facts = frozenset(
                _fact(relation, decode(row))
                for relation, column in self._columns.items()
                for row in column.rows
            )
        return self._facts

    def _force_columns(self) -> dict[RelationSymbol, ColumnarRelation]:
        if self._columns is None:
            interner = Interner()
            grouped: dict[RelationSymbol, set] = {}
            for fact in self._facts:
                grouped.setdefault(fact.relation, set()).add(
                    interner.intern_row(fact.arguments)
                )
            self._interner = interner
            self._columns = {
                relation: ColumnarRelation(relation.arity, frozenset(rows))
                for relation, rows in grouped.items()
            }
        return self._columns

    @property
    def facts(self) -> frozenset[Fact]:
        return self._force_facts()

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def active_domain(self) -> frozenset:
        adom = self._adom
        if adom is None:
            adom = self._adom = frozenset(
                argument
                for fact in self._facts
                for argument in fact.arguments
            )
        return adom

    def adom(self) -> frozenset:
        """Alias matching the paper's notation ``adom(D)``."""
        return self.active_domain

    def __iter__(self) -> Iterator[Fact]:
        return iter(self._force_facts())

    def __len__(self) -> int:
        if self._facts is not None:
            return len(self._facts)
        return sum(len(column.rows) for column in self._columns.values())

    def __contains__(self, fact: object) -> bool:
        if not isinstance(fact, Fact):
            return False
        if self._columns is None:
            return fact in self._facts
        column = self._columns.get(fact.relation)
        if column is None:
            return False
        code_of = self._interner.code
        row = []
        for argument in fact.arguments:
            code = code_of(argument)
            if code is None:
                return False
            row.append(code)
        return tuple(row) in column.rows

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        if self is other:
            return True
        if (
            self._columns is not None
            and self._interner is other._interner
        ):
            # Same code space: row sets compare without decoding.
            mine = {r: c.rows for r, c in self._columns.items()}
            theirs = {r: c.rows for r, c in other._columns.items()}
            return mine == theirs
        return self._force_facts() == other._force_facts()

    def __hash__(self) -> int:
        return hash(self._force_facts())

    def __repr__(self) -> str:
        shown = ", ".join(sorted(str(f) for f in self._force_facts()))
        return f"Instance({{{shown}}})"

    def is_empty(self) -> bool:
        if self._facts is not None:
            return not self._facts
        return not self._columns

    # -- the interned row protocol ---------------------------------------------

    @property
    def interner(self) -> Interner:
        """The instance's (delta-copy-shared, append-only) interner."""
        self._force_columns()
        return self._interner

    def column(self, relation: RelationSymbol) -> ColumnarRelation | None:
        """The columnar store of ``relation`` (None when it has no facts)."""
        return self._force_columns().get(relation)

    def relation_rows(self, relation: RelationSymbol) -> frozenset:
        """The interned rows of ``relation``."""
        column = self._force_columns().get(relation)
        return column.rows if column is not None else _EMPTY_ROWS

    def row_bucket(
        self, relation: RelationSymbol, position: int, code: int
    ) -> frozenset:
        """All interned rows carrying ``code`` at ``position``."""
        column = self._force_columns().get(relation)
        if column is None:
            return _EMPTY_ROWS
        return column.bucket(position, code)

    def sorted_rows(self, relation: RelationSymbol) -> tuple:
        """The interned rows as one sorted run (cached on the column)."""
        column = self._force_columns().get(relation)
        return column.sorted_rows() if column is not None else ()

    def column_stats(
        self, relation: RelationSymbol | str
    ) -> tuple[int, tuple[int, ...]]:
        """O(1)-amortised ``(row count, per-position distinct counts)``.

        The planner's selectivity estimates read these on every atom; they
        come straight from the column's bucket index sizes, so repeated
        estimation costs dictionary-length lookups, not scans.
        """
        symbol = self._resolve(relation)
        if symbol is None:
            return 0, ()
        column = self._force_columns().get(symbol)
        if column is None:
            return 0, ()
        return len(column.rows), column.distinct_counts()

    # -- indexed access (decoded constant-level views) -------------------------

    def tuples(self, relation: RelationSymbol | str) -> frozenset[tuple]:
        """All argument tuples of facts over ``relation``.

        A lazily decoded (and cached) view over the interned column; delta
        copies share the parent's view for untouched relations.
        """
        if isinstance(relation, str):
            sym = self._schema.get(relation)
            if sym is None:
                return _EMPTY_ROWS
            relation = sym
        view = self._tuples_view.get(relation)
        if view is None:
            if self._columns is not None:
                column = self._columns.get(relation)
                if column is None:
                    return _EMPTY_ROWS
                decode = self._interner.decode_row
                view = frozenset(decode(row) for row in column.rows)
                self._tuples_view[relation] = view
            else:
                # fact-space instance: one grouping pass fills every
                # relation's view without interning anything
                self._group_facts()
                view = self._tuples_view.get(relation, _EMPTY_ROWS)
        return view

    def _group_facts(self) -> None:
        if not self._grouped:
            grouped: dict[RelationSymbol, set[tuple]] = {}
            for fact in self._facts:
                grouped.setdefault(fact.relation, set()).add(fact.arguments)
            for relation, rows in grouped.items():
                self._tuples_view.setdefault(relation, frozenset(rows))
            self._grouped = True

    def has_fact(self, relation: RelationSymbol, arguments: Sequence) -> bool:
        return Fact(relation, tuple(arguments)) in self

    def _resolve(self, relation: RelationSymbol | str) -> RelationSymbol | None:
        if isinstance(relation, str):
            return self._schema.get(relation)
        return relation

    def _position_index(
        self, relation: RelationSymbol
    ) -> tuple[dict[Constant, frozenset[tuple]], ...]:
        cached = self._position_view.get(relation)
        if cached is None:
            builders: tuple[dict[Constant, set[tuple]], ...] = tuple(
                {} for _ in range(relation.arity)
            )
            for row in self.tuples(relation):
                for position, value in enumerate(row):
                    builders[position].setdefault(value, set()).add(row)
            cached = tuple(
                {value: frozenset(rows) for value, rows in builder.items()}
                for builder in builders
            )
            self._position_view[relation] = cached
        return cached

    def tuples_with(
        self, relation: RelationSymbol | str, position: int, value: Constant
    ) -> frozenset[tuple]:
        """All tuples of ``relation`` carrying ``value`` at ``position``."""
        symbol = self._resolve(relation)
        if symbol is None:
            return _EMPTY_ROWS
        return self._position_index(symbol)[position].get(value, _EMPTY_ROWS)

    def position_values(
        self, relation: RelationSymbol | str, position: int
    ) -> frozenset:
        """The set of constants occurring at ``position`` of ``relation``."""
        symbol = self._resolve(relation)
        if symbol is None:
            return _EMPTY_ROWS
        return frozenset(self._position_index(symbol)[position])

    def position_value_count(
        self, relation: RelationSymbol | str, position: int
    ) -> int:
        """How many distinct constants occur at ``position`` of ``relation``.

        Served from the interned column statistics, so the join planner's
        selectivity estimates stay O(1) per position.
        """
        symbol = self._resolve(relation)
        if symbol is None:
            return 0
        if self._columns is None:
            # fact-space instance: count through the decoded position index
            # rather than forcing interning for a statistics read
            return len(self._position_index(symbol)[position])
        column = self._columns.get(symbol)
        if column is None:
            return 0
        return column.distinct_counts()[position]

    def _force_by_constant(self) -> dict[Constant, frozenset[Fact]]:
        if self._by_constant is None:
            index: dict[Constant, set[Fact]] = {}
            for fact in self._force_facts():
                for argument in fact.arguments:
                    index.setdefault(argument, set()).add(fact)
            self._by_constant = {
                value: frozenset(facts) for value, facts in index.items()
            }
        return self._by_constant

    def facts_with_constant(self, constant: Constant) -> frozenset[Fact]:
        """All facts mentioning ``constant`` (served from the per-constant index)."""
        return self._force_by_constant().get(constant, _EMPTY_ROWS)

    # -- construction ----------------------------------------------------------

    @classmethod
    def _from_parts(
        cls,
        facts: frozenset[Fact] | None,
        schema: Schema,
        adom: frozenset,
        interner: Interner | None,
        columns: dict[RelationSymbol, ColumnarRelation] | None,
        tuples_view: dict[RelationSymbol, frozenset] | None = None,
        position_view: (
            dict[RelationSymbol, tuple[dict[Constant, frozenset[tuple]], ...]] | None
        ) = None,
        by_constant: dict[Constant, frozenset[Fact]] | None = None,
    ) -> "Instance":
        """Internal fast path for delta copies, fixpoint freezes and interner
        merges: trust prebuilt parts.  ``facts`` may be ``None`` — the fact
        set is then decoded lazily from the columns on first use.
        ``interner``/``columns`` may both be ``None`` (fact-space instance,
        e.g. from :meth:`InstanceBuilder.build`) — they then materialize
        lazily on first touch of the row protocol."""
        instance = cls.__new__(cls)
        instance._facts = facts
        instance._schema = schema
        instance._adom = adom
        instance._interner = interner
        instance._columns = columns
        instance._grouped = False
        instance._tuples_view = tuples_view if tuples_view is not None else {}
        instance._position_view = (
            position_view if position_view is not None else {}
        )
        instance._by_constant = by_constant
        return instance

    def _derived_position_view(
        self, touched: set[RelationSymbol]
    ) -> dict[RelationSymbol, tuple[dict[Constant, frozenset[tuple]], ...]]:
        """Share the parent's decoded per-position views for untouched
        relations; touched relations rebuild lazily on demand."""
        return {
            rel: index
            for rel, index in self._position_view.items()
            if rel not in touched
        }

    def _derived_tuples_view(
        self,
        delta_rows: dict[RelationSymbol, set[tuple]],
        removing: bool,
    ) -> dict[RelationSymbol, frozenset]:
        """Delta-update the decoded ``tuples`` views the parent has built.

        Views the parent never built stay unbuilt in the child (they decode
        lazily if and when queried); built views are updated from the
        constant-level delta instead of being re-decoded.
        """
        view: dict[RelationSymbol, frozenset] = {}
        for rel, cached in self._tuples_view.items():
            delta = delta_rows.get(rel)
            if delta is None:
                view[rel] = cached
            elif removing:
                remaining = cached - delta
                if remaining:
                    view[rel] = remaining
            else:
                view[rel] = cached | delta
        return view

    def with_facts(self, facts: Iterable[Fact]) -> "Instance":
        """Extend by facts, delta-copying the interned columnar store.

        The child shares the parent's interner (append-only: codes stay
        valid) and the column objects — buckets included — of every
        relation the delta does not touch.  The schema is the parent schema
        grown by the symbols of the new facts — declared-but-empty
        relations are preserved, so a compiled query mentioning a relation
        keeps resolving it across the whole update stream.
        """
        added = {f for f in facts if f not in self}
        if not added:
            return self
        self._force_columns()
        new_facts = self._force_facts() | added
        adom = self.active_domain | {a for fact in added for a in fact.arguments}
        interner = self._interner
        added_rows: dict[RelationSymbol, set[IntRow]] = {}
        added_tuples: dict[RelationSymbol, set[tuple]] = {}
        for fact in added:
            added_rows.setdefault(fact.relation, set()).add(
                interner.intern_row(fact.arguments)
            )
            added_tuples.setdefault(fact.relation, set()).add(fact.arguments)
        touched = set(added_rows)
        columns = dict(self._columns)
        for relation, rows in added_rows.items():
            column = columns.get(relation)
            if column is None:
                columns[relation] = ColumnarRelation(
                    relation.arity, frozenset(rows)
                )
            else:
                columns[relation] = column.with_rows(rows)
        by_constant = None
        if self._by_constant is not None:
            by_constant = dict(self._by_constant)
            for fact in added:
                for argument in fact.arguments:
                    by_constant[argument] = by_constant.get(
                        argument, _EMPTY_ROWS
                    ) | {fact}
        new_symbols = [rel for rel in touched if rel not in self._schema]
        schema = (
            self._schema.union(new_symbols) if new_symbols else self._schema
        )
        return Instance._from_parts(
            new_facts,
            schema,
            adom,
            interner,
            columns,
            self._derived_tuples_view(added_tuples, removing=False),
            self._derived_position_view(touched),
            by_constant,
        )

    def without_facts(self, facts: Iterable[Fact]) -> "Instance":
        """Remove facts, delta-copying the interned columnar store.

        Constants are dropped from the active domain through the
        per-constant index (built once on the parent and carried forward),
        so a long chain of streaming deletions costs one scan total instead
        of one per step.  The interner is still shared — codes of dropped
        constants simply go stale until (if ever) the constant returns.
        The parent schema is preserved even when a relation loses its last
        fact: shrinking it made a compiled session/query that still
        mentions the relation unable to resolve it by name on the
        delete-to-empty instance (and re-inference on the next insert
        flip-flopped the schema), so an emptied relation stays declared.
        """
        removed_set = {f for f in facts if f in self}
        if not removed_set:
            return self
        self._force_columns()
        new_facts = self._force_facts() - removed_set
        interner = self._interner
        removed_rows: dict[RelationSymbol, set[IntRow]] = {}
        removed_tuples: dict[RelationSymbol, set[tuple]] = {}
        for fact in removed_set:
            removed_rows.setdefault(fact.relation, set()).add(
                interner.intern_row(fact.arguments)
            )
            removed_tuples.setdefault(fact.relation, set()).add(fact.arguments)
        touched = set(removed_rows)
        columns = dict(self._columns)
        for relation, rows in removed_rows.items():
            column = columns[relation].without_rows(rows)
            if column.rows:
                columns[relation] = column
            else:
                del columns[relation]
        # The per-constant index decides which constants leave the domain.
        by_constant = dict(self._force_by_constant())
        dropped: set[Constant] = set()
        for constant in {a for fact in removed_set for a in fact.arguments}:
            remaining_facts = by_constant.get(constant, _EMPTY_ROWS) - removed_set
            if remaining_facts:
                by_constant[constant] = remaining_facts
            else:
                by_constant.pop(constant, None)
                dropped.add(constant)
        return Instance._from_parts(
            new_facts,
            self._schema,
            self.active_domain - dropped,
            interner,
            columns,
            self._derived_tuples_view(removed_tuples, removing=True),
            self._derived_position_view(touched),
            by_constant,
        )

    def union(self, other: "Instance") -> "Instance":
        """Set union, implemented as interner merge + column concatenation.

        When both operands share one interner (delta copies of a common
        ancestor — the frequent case inside sessions), rows union directly;
        otherwise the right operand's code space is translated through one
        ``remap_from`` pass (one dict probe per *distinct* constant) and
        its rows are re-coded by O(1) array lookups — never by re-hashing
        every constant of every fact.
        """
        if other is self or other.is_empty():
            return self
        if self.is_empty() and self._schema == other._schema:
            return other
        self._force_columns()
        other._force_columns()
        interner = self._interner
        if other._interner is interner:

            def translate(rows: frozenset) -> frozenset:
                return rows
        else:
            mapping = interner.remap_from(other._interner)

            def translate(rows: frozenset) -> frozenset:
                return frozenset(
                    tuple(mapping[code] for code in row) for row in rows
                )

        columns = dict(self._columns)
        touched: set[RelationSymbol] = set()
        for relation, column in other._columns.items():
            mine = columns.get(relation)
            if mine is None:
                columns[relation] = ColumnarRelation(
                    relation.arity, translate(column.rows)
                )
                touched.add(relation)
            else:
                merged = mine.with_rows(translate(column.rows))
                if merged is not mine:
                    columns[relation] = merged
                    touched.add(relation)
        new_symbols = [
            rel for rel in other._columns if rel not in self._schema
        ]
        schema = (
            self._schema.union(new_symbols) if new_symbols else self._schema
        )
        facts = None
        if self._facts is not None and other._facts is not None:
            facts = self._facts | other._facts
        return Instance._from_parts(
            facts,
            schema,
            self.active_domain | other.active_domain,
            interner,
            columns,
            self._derived_tuples_view(
                {rel: set(other.tuples(rel)) for rel in touched},
                removing=False,
            ),
            self._derived_position_view(touched),
        )

    def __or__(self, other: "Instance") -> "Instance":
        return self.union(other)

    @classmethod
    def merge(
        cls, instances: Sequence["Instance"], extra_facts: Iterable[Fact] = ()
    ) -> "Instance":
        """The union of many instances by interner merge + row translation.

        The shard-merge primitive: the largest operand donates its interner
        and columns, every other operand ships its rows plus a one-shot
        code-translation dictionary.  Constants are hashed once per
        distinct value per operand, not once per occurrence.
        """
        instances = [inst for inst in instances if not inst.is_empty()]
        if not instances:
            return cls(extra_facts)
        base = max(instances, key=len)
        merged = base
        for inst in instances:
            if inst is not base:
                merged = merged.union(inst)
        extra = list(extra_facts)
        if extra:
            merged = merged.with_facts(extra)
        return merged

    def restrict_to_schema(self, schema: Schema) -> "Instance":
        """The reduct of this instance to the given schema."""
        return Instance(
            (f for f in self._force_facts() if f.relation in schema),
            schema=schema,
        )

    def restrict_to_domain(self, elements: Iterable[Constant]) -> "Instance":
        """The induced sub-instance on the given elements."""
        kept = set(elements)
        return Instance(
            f for f in self._force_facts() if all(a in kept for a in f.arguments)
        )

    def rename(self, mapping: Mapping[Constant, Constant]) -> "Instance":
        """Apply a renaming of constants (identity outside the mapping).

        Runs in the interned code space: the mapping is applied once per
        *distinct* constant to build a code-translation array, rows are
        re-coded by array lookups, and the fact set decodes lazily.  The
        renaming need not be injective — collapsed rows deduplicate in the
        row sets exactly as collapsed facts used to.
        """
        self._force_columns()
        old = self._interner
        interner = Interner()
        translate = [
            interner.intern(mapping.get(value, value))
            for value in old.decode_many(range(len(old)))
        ]
        columns = {
            relation: ColumnarRelation(
                relation.arity,
                frozenset(
                    tuple(translate[code] for code in row)
                    for row in column.rows
                ),
            )
            for relation, column in self._columns.items()
        }
        adom = frozenset(
            mapping.get(value, value) for value in self.active_domain
        )
        return Instance._from_parts(
            None, Schema(columns), adom, interner, columns
        )

    def disjoint_union(self, other: "Instance") -> "Instance":
        """Disjoint union; elements are tagged with 0 / 1 to force disjointness."""
        left = self.rename({a: (0, a) for a in self.active_domain})
        right = other.rename({a: (1, a) for a in other.active_domain})
        return left.union(right)

    def subinstances(self, max_size: int | None = None) -> Iterator["Instance"]:
        """All sub-instances (subsets of facts), optionally capped in fact count."""
        facts = sorted(self._force_facts(), key=str)
        upper = len(facts) if max_size is None else min(max_size, len(facts))
        for size in range(upper + 1):
            for subset in itertools.combinations(facts, size):
                yield Instance(subset)

    # -- convenience builders --------------------------------------------------

    @classmethod
    def from_tuples(
        cls,
        schema: Schema,
        data: Mapping[str, Iterable[Sequence]],
    ) -> "Instance":
        """Build an instance from ``{relation name: iterable of tuples}``."""
        facts = []
        for name, rows in data.items():
            sym = schema[name]
            for row in rows:
                row = tuple(row) if not isinstance(row, tuple) else row
                facts.append(Fact(sym, row))
        return cls(facts, schema=schema)


class InstanceBuilder:
    """Incremental construction of instances.

    The builder maintains the fact set, active domain and per-relation index
    as facts are added.  Typical use is accumulating facts before freezing
    (:meth:`build`) into an interned :class:`Instance` once.
    """

    def __init__(
        self,
        facts: Iterable[Fact] = (),
        schema: Schema | None = None,
    ) -> None:
        self._facts: set[Fact] = set()
        self._domain: set[Constant] = set()
        self._by_relation: dict[RelationSymbol, set[tuple]] = {}
        self._declared_schema = schema
        self.add_all(facts)

    @classmethod
    def from_instance(cls, instance: Instance) -> "InstanceBuilder":
        builder = cls(schema=None)
        builder._facts = set(instance.facts)
        builder._domain = set(instance.active_domain)
        for relation in {fact.relation for fact in builder._facts}:
            builder._by_relation[relation] = set(instance.tuples(relation))
        builder._declared_schema = instance.schema
        return builder

    def add(self, fact: Fact) -> bool:
        """Add one fact; returns True if it was new."""
        if fact in self._facts:
            return False
        self._facts.add(fact)
        self._domain.update(fact.arguments)
        self._by_relation.setdefault(fact.relation, set()).add(fact.arguments)
        return True

    def add_all(self, facts: Iterable[Fact]) -> int:
        """Add facts; returns how many were new."""
        return sum(1 for fact in facts if self.add(fact))

    def add_tuple(self, relation: RelationSymbol, arguments: Sequence) -> bool:
        return self.add(Fact(relation, tuple(arguments)))

    def __contains__(self, fact: object) -> bool:
        return fact in self._facts

    def __len__(self) -> int:
        return len(self._facts)

    def contains_tuple(self, relation: RelationSymbol, arguments: tuple) -> bool:
        return arguments in self._by_relation.get(relation, ())

    def tuples(self, relation: RelationSymbol) -> frozenset[tuple]:
        # a snapshot, not the live index: mutating it must not corrupt the builder
        return frozenset(self._by_relation.get(relation, ()))

    @property
    def active_domain(self) -> set:
        return self._domain

    def build(self) -> Instance:
        """Freeze into an :class:`Instance`.

        The schema is the declared schema (if any) grown by the symbols of
        the added facts — the builder mirrors ``Instance.with_facts``, which
        likewise re-infers symbols rather than rejecting new ones.  A name
        used with two arities still raises.  The built instance starts in
        fact space with its per-relation tuple views prefilled from the
        builder's index; interning happens lazily on first join.
        """
        used = Schema(self._by_relation)
        if self._declared_schema is not None:
            schema = self._declared_schema.union(used)
        else:
            schema = used
        instance = Instance._from_parts(
            frozenset(self._facts),
            schema,
            frozenset(self._domain),
            None,
            None,
            {rel: frozenset(rows) for rel, rows in self._by_relation.items()},
        )
        # the prefilled views cover every populated relation, so the
        # fact-grouping pass would be redundant
        instance._grouped = True
        return instance


class MutableIndexedInstance:
    """A mutable interned fact store speaking the engine's row protocol.

    Fixpoint loops (:meth:`repro.datalog.plain.DatalogProgram.least_fixpoint`
    and the DRed maintenance of :mod:`repro.service.delta`) keep **one**
    mutable columnar store across all semi-naive rounds: per-relation row
    sets and lazily-built per-position buckets are updated in place by
    :meth:`add_row`, and the batch join executor reads them live through
    the same row protocol (``relation_rows`` / ``row_bucket`` /
    ``column_stats``) it uses on frozen instances.  The store shares (and
    extends, in place — interners are append-only) the seed instance's
    interner, so rows interned here remain valid on every delta copy of
    the seed.

    Callers must not mutate while a join over the store is being consumed
    (the fixpoint loops buffer a round's derivations and apply them between
    rounds), and must not hold returned row sets across an ``add``.
    :meth:`freeze` emits a regular immutable :class:`Instance` — donating
    the built columns and buckets — once the loop saturates.
    """

    __slots__ = ("_interner", "_columns", "_domain_codes", "_size", "_declared_schema")

    def __init__(self, instance: Instance) -> None:
        self._interner = instance.interner
        self._columns: dict[RelationSymbol, MutableColumnarRelation] = {}
        size = 0
        for relation in instance.schema:
            column = instance.column(relation)
            if column is not None:
                self._columns[relation] = MutableColumnarRelation(
                    column.arity, column.rows
                )
                size += len(column.rows)
        self._size = size
        code_of = self._interner.code
        self._domain_codes: set[int] = {
            code_of(value) for value in instance.active_domain
        }
        self._declared_schema = instance.schema

    def __contains__(self, fact: object) -> bool:
        if not isinstance(fact, Fact):
            return False
        column = self._columns.get(fact.relation)
        if column is None:
            return False
        code_of = self._interner.code
        row = []
        for argument in fact.arguments:
            code = code_of(argument)
            if code is None:
                return False
            row.append(code)
        return tuple(row) in column.rows

    def __len__(self) -> int:
        return self._size

    def is_empty(self) -> bool:
        return self._size == 0

    @property
    def interner(self) -> Interner:
        return self._interner

    @property
    def active_domain(self) -> set:
        value = self._interner.value
        return {value(code) for code in self._domain_codes}

    @property
    def domain_codes(self) -> set[int]:
        return self._domain_codes

    def add(self, fact: Fact) -> bool:
        """Add one fact (interned on the way in); True if it was new."""
        return self.add_row(
            fact.relation, self._interner.intern_row(fact.arguments)
        )

    def add_row(self, relation: RelationSymbol, row: IntRow) -> bool:
        """Add one interned row, updating every built index; True if new."""
        column = self._columns.get(relation)
        if column is None:
            column = MutableColumnarRelation(relation.arity)
            self._columns[relation] = column
        if not column.add(row):
            return False
        self._size += 1
        self._domain_codes.update(row)
        return True

    def has_row(self, relation: RelationSymbol, row: IntRow) -> bool:
        column = self._columns.get(relation)
        return column is not None and row in column.rows

    # -- the engine's row protocol --------------------------------------------

    def relation_rows(self, relation: RelationSymbol) -> set | frozenset:
        """The live interned row set (do not mutate, do not hold)."""
        column = self._columns.get(relation)
        return column.rows if column is not None else _EMPTY_ROWS

    def row_bucket(
        self, relation: RelationSymbol, position: int, code: int
    ) -> set | frozenset:
        column = self._columns.get(relation)
        if column is None:
            return _EMPTY_ROWS
        return column.bucket(position, code)

    def column_stats(
        self, relation: RelationSymbol
    ) -> tuple[int, tuple[int, ...]]:
        column = self._columns.get(relation)
        if column is None:
            return 0, ()
        return len(column.rows), column.distinct_counts()

    # -- decoded compatibility views -------------------------------------------

    def tuples(self, relation: RelationSymbol) -> frozenset[tuple]:
        """A decoded snapshot of the relation (compatibility only — engine
        paths read :meth:`relation_rows` instead)."""
        column = self._columns.get(relation)
        if column is None:
            return _EMPTY_ROWS
        decode = self._interner.decode_row
        return frozenset(decode(row) for row in column.rows)

    def tuples_with(
        self, relation: RelationSymbol, position: int, value: Constant
    ) -> frozenset[tuple]:
        """Decoded positional probe (compatibility only)."""
        code = self._interner.code(value)
        if code is None:
            return _EMPTY_ROWS
        column = self._columns.get(relation)
        if column is None:
            return _EMPTY_ROWS
        decode = self._interner.decode_row
        return frozenset(decode(row) for row in column.bucket(position, code))

    def position_value_count(self, relation: RelationSymbol, position: int) -> int:
        column = self._columns.get(relation)
        if column is None:
            return 0
        return column.distinct_counts()[position]

    # -- freezing --------------------------------------------------------------

    def freeze(self) -> Instance:
        """One immutable :class:`Instance`, donating columns and buckets.

        The fact set decodes lazily on first use; the interner is the
        (shared) seed interner.
        """
        used = Schema(self._columns)
        schema = (
            self._declared_schema.union(used)
            if self._declared_schema is not None
            else used
        )
        columns = {
            relation: column.freeze()
            for relation, column in self._columns.items()
            if column.rows
        }
        value = self._interner.value
        adom = frozenset(value(code) for code in self._domain_codes)
        return Instance._from_parts(
            None, schema, adom, self._interner, columns
        )


class TupleIndexedInstance:
    """The pre-columnar tuple-at-a-time mutable store (reference twin).

    Kept verbatim for cross-validation and benchmarking of the interned
    columnar core against the previous representation: plain sets of
    constant tuples with per-position constant-keyed buckets, speaking the
    classic ``tuples`` / ``tuples_with`` / ``position_value_count``
    protocol of the tuple-at-a-time join path.
    """

    def __init__(self, instance: Instance) -> None:
        self._facts: set[Fact] = set(instance.facts)
        self._domain: set[Constant] = set(instance.active_domain)
        self._by_relation: dict[RelationSymbol, set[tuple]] = {
            relation: set(instance.tuples(relation))
            for relation in {fact.relation for fact in self._facts}
        }
        self._by_position: dict[
            RelationSymbol, tuple[dict[Constant, set[tuple]], ...]
        ] = {}
        self._declared_schema = instance.schema

    def __contains__(self, fact: object) -> bool:
        return fact in self._facts

    def __len__(self) -> int:
        return len(self._facts)

    def is_empty(self) -> bool:
        return not self._facts

    @property
    def active_domain(self) -> set:
        return self._domain

    def add(self, fact: Fact) -> bool:
        """Add one fact, updating every built index; True if it was new."""
        if fact in self._facts:
            return False
        self._facts.add(fact)
        self._domain.update(fact.arguments)
        self._by_relation.setdefault(fact.relation, set()).add(fact.arguments)
        positional = self._by_position.get(fact.relation)
        if positional is not None:
            for position, value in enumerate(fact.arguments):
                positional[position].setdefault(value, set()).add(fact.arguments)
        return True

    # -- the tuple-at-a-time join protocol -------------------------------------

    def tuples(self, relation: RelationSymbol) -> set[tuple]:
        """The live row set of ``relation`` (do not mutate, do not hold)."""
        return self._by_relation.get(relation, _EMPTY_ROWS)

    def _position_index(
        self, relation: RelationSymbol
    ) -> tuple[dict[Constant, set[tuple]], ...]:
        cached = self._by_position.get(relation)
        if cached is None:
            cached = tuple({} for _ in range(relation.arity))
            for row in self._by_relation.get(relation, ()):
                for position, value in enumerate(row):
                    cached[position].setdefault(value, set()).add(row)
            self._by_position[relation] = cached
        return cached

    def tuples_with(
        self, relation: RelationSymbol, position: int, value: Constant
    ) -> set[tuple]:
        if relation not in self._by_relation:
            return _EMPTY_ROWS
        return self._position_index(relation)[position].get(value, _EMPTY_ROWS)

    def position_values(self, relation: RelationSymbol, position: int) -> frozenset:
        if relation not in self._by_relation:
            return frozenset()
        return frozenset(self._position_index(relation)[position])

    def position_value_count(self, relation: RelationSymbol, position: int) -> int:
        if relation not in self._by_relation:
            return 0
        return len(self._position_index(relation)[position])

    # -- freezing --------------------------------------------------------------

    def freeze(self) -> Instance:
        """One immutable :class:`Instance` over the accumulated facts."""
        schema = (
            self._declared_schema.union(Schema(self._by_relation))
            if self._declared_schema is not None
            else Schema(self._by_relation)
        )
        return Instance(self._facts, schema=schema)


@dataclass(frozen=True)
class MarkedInstance:
    """An n-ary marked instance ``(D, d1, ..., dn)`` (Section 4.2).

    Every marked element must belong to the active domain of ``D``.
    """

    instance: Instance
    marks: tuple

    def __post_init__(self) -> None:
        for mark in self.marks:
            if mark not in self.instance.active_domain:
                raise ValueError(f"marked element {mark!r} is not in adom(D)")

    @property
    def arity(self) -> int:
        return len(self.marks)

    @property
    def schema(self) -> Schema:
        return self.instance.schema

    def to_unmarked(self, mark_symbols: Sequence[RelationSymbol]) -> Instance:
        """The instance ``(D, d)^c`` of Section 5.3: replace marks by fresh unary facts."""
        if len(mark_symbols) != len(self.marks):
            raise ValueError("need one unary symbol per marked element")
        extra = []
        for sym, mark in zip(mark_symbols, self.marks):
            if sym.arity != 1:
                raise ValueError(f"mark symbol {sym} must be unary")
            extra.append(Fact(sym, (mark,)))
        return self.instance.with_facts(extra)

    def __str__(self) -> str:
        return f"({self.instance!r}, {self.marks})"


def singleton_instance(facts_by_name: Mapping[str, int], element: Constant = "a") -> Instance:
    """A singleton instance: one element carrying the given relations reflexively.

    ``facts_by_name`` maps relation names to arities; each relation holds on the
    all-``element`` tuple.  Useful for the singleton-instance arguments of
    Theorems 3.5 and 3.8.
    """
    facts = []
    for name, arity in facts_by_name.items():
        sym = RelationSymbol(name, arity)
        facts.append(Fact(sym, tuple([element] * arity)))
    return Instance(facts)
