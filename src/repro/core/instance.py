"""Facts, instances and marked instances (Section 2 of the paper).

An *instance* over a schema ``S`` is a finite set of facts ``R(a1, ..., an)``
with ``R`` in ``S`` and constants ``ai``.  The *active domain* ``adom(D)`` is
the set of constants occurring in facts.  A *marked instance* additionally
carries a tuple of distinguished active-domain elements (Section 4.2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Iterator, Mapping, Sequence

from .schema import RelationSymbol, Schema

Constant = Hashable


@dataclass(frozen=True, order=True)
class Fact:
    """A ground fact ``R(a1, ..., an)``."""

    relation: RelationSymbol
    arguments: tuple

    def __post_init__(self) -> None:
        if len(self.arguments) != self.relation.arity:
            raise ValueError(
                f"relation {self.relation} expects {self.relation.arity} "
                f"arguments, got {len(self.arguments)}"
            )

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.arguments)
        return f"{self.relation.name}({args})"

    def map(self, mapping: Callable[[Constant], Constant]) -> "Fact":
        return Fact(self.relation, tuple(mapping(a) for a in self.arguments))


class Instance:
    """A finite set of facts over a schema.

    Instances are immutable; set-like operations return new instances.
    The schema is inferred from the facts unless given explicitly (a schema
    may declare symbols that do not occur in any fact).
    """

    def __init__(
        self,
        facts: Iterable[Fact] = (),
        schema: Schema | None = None,
    ) -> None:
        self._facts: frozenset[Fact] = frozenset(facts)
        inferred = Schema(fact.relation for fact in self._facts)
        if schema is None:
            self._schema = inferred
        else:
            for sym in inferred:
                if sym not in schema:
                    raise ValueError(f"fact uses symbol {sym} outside the schema")
            self._schema = schema
        domain: set[Constant] = set()
        for fact in self._facts:
            domain.update(fact.arguments)
        self._adom = frozenset(domain)
        self._by_relation: dict[RelationSymbol, frozenset[tuple]] | None = None

    # -- basic accessors -------------------------------------------------------

    @property
    def facts(self) -> frozenset[Fact]:
        return self._facts

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def active_domain(self) -> frozenset:
        return self._adom

    def adom(self) -> frozenset:
        """Alias matching the paper's notation ``adom(D)``."""
        return self._adom

    def __iter__(self) -> Iterator[Fact]:
        return iter(self._facts)

    def __len__(self) -> int:
        return len(self._facts)

    def __contains__(self, fact: object) -> bool:
        return fact in self._facts

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        return self._facts == other._facts

    def __hash__(self) -> int:
        return hash(self._facts)

    def __repr__(self) -> str:
        shown = ", ".join(sorted(str(f) for f in self._facts))
        return f"Instance({{{shown}}})"

    def is_empty(self) -> bool:
        return not self._facts

    # -- indexed access --------------------------------------------------------

    def tuples(self, relation: RelationSymbol | str) -> frozenset[tuple]:
        """All argument tuples of facts over ``relation``."""
        if self._by_relation is None:
            index: dict[RelationSymbol, set[tuple]] = {}
            for fact in self._facts:
                index.setdefault(fact.relation, set()).add(fact.arguments)
            self._by_relation = {rel: frozenset(tups) for rel, tups in index.items()}
        if isinstance(relation, str):
            sym = self._schema.get(relation)
            if sym is None:
                return frozenset()
            relation = sym
        return self._by_relation.get(relation, frozenset())

    def has_fact(self, relation: RelationSymbol, arguments: Sequence) -> bool:
        return Fact(relation, tuple(arguments)) in self._facts

    def facts_with_constant(self, constant: Constant) -> frozenset[Fact]:
        return frozenset(f for f in self._facts if constant in f.arguments)

    # -- construction ----------------------------------------------------------

    def with_facts(self, facts: Iterable[Fact]) -> "Instance":
        return Instance(self._facts | set(facts), schema=None)

    def without_facts(self, facts: Iterable[Fact]) -> "Instance":
        return Instance(self._facts - set(facts))

    def union(self, other: "Instance") -> "Instance":
        return Instance(self._facts | other._facts)

    def __or__(self, other: "Instance") -> "Instance":
        return self.union(other)

    def restrict_to_schema(self, schema: Schema) -> "Instance":
        """The reduct of this instance to the given schema."""
        return Instance(
            (f for f in self._facts if f.relation in schema), schema=schema
        )

    def restrict_to_domain(self, elements: Iterable[Constant]) -> "Instance":
        """The induced sub-instance on the given elements."""
        kept = set(elements)
        return Instance(
            f for f in self._facts if all(a in kept for a in f.arguments)
        )

    def rename(self, mapping: Mapping[Constant, Constant]) -> "Instance":
        """Apply a renaming of constants (identity outside the mapping)."""
        return Instance(f.map(lambda a: mapping.get(a, a)) for f in self._facts)

    def disjoint_union(self, other: "Instance") -> "Instance":
        """Disjoint union; elements are tagged with 0 / 1 to force disjointness."""
        left = self.rename({a: (0, a) for a in self._adom})
        right = other.rename({a: (1, a) for a in other._adom})
        return left.union(right)

    def subinstances(self, max_size: int | None = None) -> Iterator["Instance"]:
        """All sub-instances (subsets of facts), optionally capped in fact count."""
        facts = sorted(self._facts, key=str)
        upper = len(facts) if max_size is None else min(max_size, len(facts))
        for size in range(upper + 1):
            for subset in itertools.combinations(facts, size):
                yield Instance(subset)

    # -- convenience builders --------------------------------------------------

    @classmethod
    def from_tuples(
        cls,
        schema: Schema,
        data: Mapping[str, Iterable[Sequence]],
    ) -> "Instance":
        """Build an instance from ``{relation name: iterable of tuples}``."""
        facts = []
        for name, rows in data.items():
            sym = schema[name]
            for row in rows:
                row = tuple(row) if not isinstance(row, tuple) else row
                facts.append(Fact(sym, row))
        return cls(facts, schema=schema)


@dataclass(frozen=True)
class MarkedInstance:
    """An n-ary marked instance ``(D, d1, ..., dn)`` (Section 4.2).

    Every marked element must belong to the active domain of ``D``.
    """

    instance: Instance
    marks: tuple

    def __post_init__(self) -> None:
        for mark in self.marks:
            if mark not in self.instance.active_domain:
                raise ValueError(f"marked element {mark!r} is not in adom(D)")

    @property
    def arity(self) -> int:
        return len(self.marks)

    @property
    def schema(self) -> Schema:
        return self.instance.schema

    def to_unmarked(self, mark_symbols: Sequence[RelationSymbol]) -> Instance:
        """The instance ``(D, d)^c`` of Section 5.3: replace marks by fresh unary facts."""
        if len(mark_symbols) != len(self.marks):
            raise ValueError("need one unary symbol per marked element")
        extra = []
        for sym, mark in zip(mark_symbols, self.marks):
            if sym.arity != 1:
                raise ValueError(f"mark symbol {sym} must be unary")
            extra.append(Fact(sym, (mark,)))
        return self.instance.with_facts(extra)

    def __str__(self) -> str:
        return f"({self.instance!r}, {self.marks})"


def singleton_instance(facts_by_name: Mapping[str, int], element: Constant = "a") -> Instance:
    """A singleton instance: one element carrying the given relations reflexively.

    ``facts_by_name`` maps relation names to arities; each relation holds on the
    all-``element`` tuple.  Useful for the singleton-instance arguments of
    Theorems 3.5 and 3.8.
    """
    facts = []
    for name, arity in facts_by_name.items():
        sym = RelationSymbol(name, arity)
        facts.append(Fact(sym, tuple([element] * arity)))
    return Instance(facts)
