"""Facts, instances and marked instances (Section 2 of the paper).

An *instance* over a schema ``S`` is a finite set of facts ``R(a1, ..., an)``
with ``R`` in ``S`` and constants ``ai``.  The *active domain* ``adom(D)`` is
the set of constants occurring in facts.  A *marked instance* additionally
carries a tuple of distinguished active-domain elements (Section 4.2).

Instances carry three lazily-built indexes that the evaluation engine
(:mod:`repro.engine`) and the homomorphism search rely on:

* *by relation* — relation symbol → set of argument tuples (``tuples``);
* *by position* — (relation, position, constant) → matching tuples
  (``tuples_with`` / ``position_values``);
* *by constant* — constant → facts mentioning it (``facts_with_constant``).

Each index is built once on first use and kept on the (immutable) instance,
so repeated queries — the common case in grounding and backtracking search —
cost a dictionary lookup instead of a scan over the fact set.
:class:`InstanceBuilder` supports cheap incremental construction (e.g. the
least-fixpoint loop of plain datalog) without re-deriving the domain and
relation index from scratch on every ``with_facts`` round.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Iterator, Mapping, Sequence

from .schema import RelationSymbol, Schema

Constant = Hashable


@dataclass(frozen=True, order=True)
class Fact:
    """A ground fact ``R(a1, ..., an)``."""

    relation: RelationSymbol
    arguments: tuple

    def __post_init__(self) -> None:
        if len(self.arguments) != self.relation.arity:
            raise ValueError(
                f"relation {self.relation} expects {self.relation.arity} "
                f"arguments, got {len(self.arguments)}"
            )

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.arguments)
        return f"{self.relation.name}({args})"

    def map(self, mapping: Callable[[Constant], Constant]) -> "Fact":
        return Fact(self.relation, tuple(mapping(a) for a in self.arguments))


class Instance:
    """A finite set of facts over a schema.

    Instances are immutable; set-like operations return new instances.
    The schema is inferred from the facts unless given explicitly (a schema
    may declare symbols that do not occur in any fact).
    """

    def __init__(
        self,
        facts: Iterable[Fact] = (),
        schema: Schema | None = None,
    ) -> None:
        self._facts: frozenset[Fact] = frozenset(facts)
        inferred = Schema(fact.relation for fact in self._facts)
        if schema is None:
            self._schema = inferred
        else:
            for sym in inferred:
                if sym not in schema:
                    raise ValueError(f"fact uses symbol {sym} outside the schema")
            self._schema = schema
        domain: set[Constant] = set()
        for fact in self._facts:
            domain.update(fact.arguments)
        self._adom = frozenset(domain)
        self._by_relation: dict[RelationSymbol, frozenset[tuple]] | None = None
        self._by_position: (
            dict[RelationSymbol, tuple[dict[Constant, frozenset[tuple]], ...]] | None
        ) = None
        self._by_constant: dict[Constant, frozenset[Fact]] | None = None

    # -- basic accessors -------------------------------------------------------

    @property
    def facts(self) -> frozenset[Fact]:
        return self._facts

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def active_domain(self) -> frozenset:
        return self._adom

    def adom(self) -> frozenset:
        """Alias matching the paper's notation ``adom(D)``."""
        return self._adom

    def __iter__(self) -> Iterator[Fact]:
        return iter(self._facts)

    def __len__(self) -> int:
        return len(self._facts)

    def __contains__(self, fact: object) -> bool:
        return fact in self._facts

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        return self._facts == other._facts

    def __hash__(self) -> int:
        return hash(self._facts)

    def __repr__(self) -> str:
        shown = ", ".join(sorted(str(f) for f in self._facts))
        return f"Instance({{{shown}}})"

    def is_empty(self) -> bool:
        return not self._facts

    # -- indexed access --------------------------------------------------------

    def tuples(self, relation: RelationSymbol | str) -> frozenset[tuple]:
        """All argument tuples of facts over ``relation``."""
        self._force_by_relation()
        if isinstance(relation, str):
            sym = self._schema.get(relation)
            if sym is None:
                return frozenset()
            relation = sym
        return self._by_relation.get(relation, frozenset())

    def has_fact(self, relation: RelationSymbol, arguments: Sequence) -> bool:
        return Fact(relation, tuple(arguments)) in self._facts

    def _resolve(self, relation: RelationSymbol | str) -> RelationSymbol | None:
        if isinstance(relation, str):
            return self._schema.get(relation)
        return relation

    def _position_index(
        self, relation: RelationSymbol
    ) -> tuple[dict[Constant, frozenset[tuple]], ...]:
        if self._by_position is None:
            self._by_position = {}
        cached = self._by_position.get(relation)
        if cached is None:
            builders: tuple[dict[Constant, set[tuple]], ...] = tuple(
                {} for _ in range(relation.arity)
            )
            for row in self.tuples(relation):
                for position, value in enumerate(row):
                    builders[position].setdefault(value, set()).add(row)
            cached = tuple(
                {value: frozenset(rows) for value, rows in builder.items()}
                for builder in builders
            )
            self._by_position[relation] = cached
        return cached

    def tuples_with(
        self, relation: RelationSymbol | str, position: int, value: Constant
    ) -> frozenset[tuple]:
        """All tuples of ``relation`` carrying ``value`` at ``position``."""
        symbol = self._resolve(relation)
        if symbol is None:
            return frozenset()
        return self._position_index(symbol)[position].get(value, frozenset())

    def position_values(
        self, relation: RelationSymbol | str, position: int
    ) -> frozenset:
        """The set of constants occurring at ``position`` of ``relation``."""
        symbol = self._resolve(relation)
        if symbol is None:
            return frozenset()
        return frozenset(self._position_index(symbol)[position])

    def position_value_count(
        self, relation: RelationSymbol | str, position: int
    ) -> int:
        """How many distinct constants occur at ``position`` of ``relation``.

        The join planner's selectivity estimates ask this once per atom per
        seed binding; answering from the index dict's length (instead of
        materializing :meth:`position_values`) keeps the estimate O(1).
        """
        symbol = self._resolve(relation)
        if symbol is None:
            return 0
        return len(self._position_index(symbol)[position])

    def _force_by_constant(self) -> dict[Constant, frozenset[Fact]]:
        if self._by_constant is None:
            index: dict[Constant, set[Fact]] = {}
            for fact in self._facts:
                for argument in fact.arguments:
                    index.setdefault(argument, set()).add(fact)
            self._by_constant = {
                value: frozenset(facts) for value, facts in index.items()
            }
        return self._by_constant

    def facts_with_constant(self, constant: Constant) -> frozenset[Fact]:
        """All facts mentioning ``constant`` (served from the per-constant index)."""
        return self._force_by_constant().get(constant, frozenset())

    # -- construction ----------------------------------------------------------

    @classmethod
    def _from_parts(
        cls,
        facts: frozenset[Fact],
        schema: Schema,
        adom: frozenset,
        by_relation: dict[RelationSymbol, frozenset[tuple]],
        by_position: (
            dict[RelationSymbol, tuple[dict[Constant, frozenset[tuple]], ...]] | None
        ) = None,
        by_constant: dict[Constant, frozenset[Fact]] | None = None,
    ) -> "Instance":
        """Internal fast path for :class:`InstanceBuilder` and the delta copies
        of :meth:`with_facts` / :meth:`without_facts`: trust prebuilt parts."""
        instance = cls.__new__(cls)
        instance._facts = facts
        instance._schema = schema
        instance._adom = adom
        instance._by_relation = by_relation
        instance._by_position = by_position
        instance._by_constant = by_constant
        return instance

    def _force_by_relation(self) -> dict[RelationSymbol, frozenset[tuple]]:
        if self._by_relation is None:
            index: dict[RelationSymbol, set[tuple]] = {}
            for fact in self._facts:
                index.setdefault(fact.relation, set()).add(fact.arguments)
            self._by_relation = {rel: frozenset(tups) for rel, tups in index.items()}
        return self._by_relation

    def _derived_position_index(
        self, touched: set[RelationSymbol]
    ) -> dict[RelationSymbol, tuple[dict[Constant, frozenset[tuple]], ...]] | None:
        """Share the parent's per-position cache for untouched relations.

        Touched relations are dropped from the copy and rebuilt lazily on
        demand; an unbuilt parent cache stays unbuilt in the child.
        """
        if self._by_position is None:
            return None
        return {
            rel: index
            for rel, index in self._by_position.items()
            if rel not in touched
        }

    def with_facts(self, facts: Iterable[Fact]) -> "Instance":
        """Extend by facts, delta-copying the parent's indexes.

        The active domain and the per-relation / per-constant indexes are
        updated from the delta instead of being rediscovered by a full scan;
        per-position indexes are shared for relations the delta does not
        touch.  The schema is the parent schema grown by the symbols of the
        new facts — declared-but-empty relations are preserved, so a
        compiled query mentioning a relation keeps resolving it across the
        whole update stream.
        """
        added = {f for f in facts if f not in self._facts}
        if not added:
            return self
        new_facts = self._facts | added
        adom = self._adom | {a for fact in added for a in fact.arguments}
        by_relation = dict(self._force_by_relation())
        added_rows: dict[RelationSymbol, set[tuple]] = {}
        for fact in added:
            added_rows.setdefault(fact.relation, set()).add(fact.arguments)
        touched = set(added_rows)
        for relation, rows in added_rows.items():
            by_relation[relation] = by_relation.get(relation, frozenset()) | rows
        by_constant = None
        if self._by_constant is not None:
            by_constant = dict(self._by_constant)
            for fact in added:
                for argument in fact.arguments:
                    by_constant[argument] = by_constant.get(
                        argument, frozenset()
                    ) | {fact}
        new_symbols = [rel for rel in touched if rel not in self._schema]
        schema = (
            self._schema.union(new_symbols) if new_symbols else self._schema
        )
        return Instance._from_parts(
            new_facts,
            schema,
            adom,
            by_relation,
            self._derived_position_index(touched),
            by_constant,
        )

    def without_facts(self, facts: Iterable[Fact]) -> "Instance":
        """Remove facts, delta-copying the parent's indexes.

        Constants are dropped from the active domain through the per-constant
        index (built once on the parent and carried forward), so a long chain
        of streaming deletions costs one scan total instead of one per step.
        The parent schema is preserved even when a relation loses its last
        fact: shrinking it made a compiled session/query that still mentions
        the relation unable to resolve it by name on the delete-to-empty
        instance (and re-inference on the next insert flip-flopped the
        schema), so an emptied relation now stays declared.
        """
        removed_set = {f for f in facts if f in self._facts}
        if not removed_set:
            return self
        new_facts = self._facts - removed_set
        by_relation = dict(self._force_by_relation())
        removed_rows: dict[RelationSymbol, set[tuple]] = {}
        for fact in removed_set:
            removed_rows.setdefault(fact.relation, set()).add(fact.arguments)
        touched = set(removed_rows)
        for relation, rows in removed_rows.items():
            remaining = by_relation[relation] - rows
            if remaining:
                by_relation[relation] = remaining
            else:
                del by_relation[relation]
        # The per-constant index decides which constants leave the domain.
        by_constant = dict(self._force_by_constant())
        dropped: set[Constant] = set()
        for constant in {a for fact in removed_set for a in fact.arguments}:
            remaining_facts = by_constant.get(constant, frozenset()) - removed_set
            if remaining_facts:
                by_constant[constant] = remaining_facts
            else:
                by_constant.pop(constant, None)
                dropped.add(constant)
        return Instance._from_parts(
            new_facts,
            self._schema,
            self._adom - dropped,
            by_relation,
            self._derived_position_index(touched),
            by_constant,
        )

    def union(self, other: "Instance") -> "Instance":
        return self.with_facts(other._facts)

    def __or__(self, other: "Instance") -> "Instance":
        return self.union(other)

    def restrict_to_schema(self, schema: Schema) -> "Instance":
        """The reduct of this instance to the given schema."""
        return Instance(
            (f for f in self._facts if f.relation in schema), schema=schema
        )

    def restrict_to_domain(self, elements: Iterable[Constant]) -> "Instance":
        """The induced sub-instance on the given elements."""
        kept = set(elements)
        return Instance(
            f for f in self._facts if all(a in kept for a in f.arguments)
        )

    def rename(self, mapping: Mapping[Constant, Constant]) -> "Instance":
        """Apply a renaming of constants (identity outside the mapping)."""
        return Instance(f.map(lambda a: mapping.get(a, a)) for f in self._facts)

    def disjoint_union(self, other: "Instance") -> "Instance":
        """Disjoint union; elements are tagged with 0 / 1 to force disjointness."""
        left = self.rename({a: (0, a) for a in self._adom})
        right = other.rename({a: (1, a) for a in other._adom})
        return left.union(right)

    def subinstances(self, max_size: int | None = None) -> Iterator["Instance"]:
        """All sub-instances (subsets of facts), optionally capped in fact count."""
        facts = sorted(self._facts, key=str)
        upper = len(facts) if max_size is None else min(max_size, len(facts))
        for size in range(upper + 1):
            for subset in itertools.combinations(facts, size):
                yield Instance(subset)

    # -- convenience builders --------------------------------------------------

    @classmethod
    def from_tuples(
        cls,
        schema: Schema,
        data: Mapping[str, Iterable[Sequence]],
    ) -> "Instance":
        """Build an instance from ``{relation name: iterable of tuples}``."""
        facts = []
        for name, rows in data.items():
            sym = schema[name]
            for row in rows:
                row = tuple(row) if not isinstance(row, tuple) else row
                facts.append(Fact(sym, row))
        return cls(facts, schema=schema)


class InstanceBuilder:
    """Incremental construction of instances.

    The builder maintains the fact set, active domain and per-relation index
    as facts are added, so freezing (:meth:`build`) does not rescan the facts.
    Typical use is a fixpoint loop: seed from an instance, ``add`` facts per
    round, and ``build`` the frozen instance once saturated.
    """

    def __init__(
        self,
        facts: Iterable[Fact] = (),
        schema: Schema | None = None,
    ) -> None:
        self._facts: set[Fact] = set()
        self._domain: set[Constant] = set()
        self._by_relation: dict[RelationSymbol, set[tuple]] = {}
        self._declared_schema = schema
        self.add_all(facts)

    @classmethod
    def from_instance(cls, instance: Instance) -> "InstanceBuilder":
        builder = cls(schema=None)
        builder._facts = set(instance.facts)
        builder._domain = set(instance.active_domain)
        for relation in {fact.relation for fact in builder._facts}:
            builder._by_relation[relation] = set(instance.tuples(relation))
        builder._declared_schema = instance.schema
        return builder

    def add(self, fact: Fact) -> bool:
        """Add one fact; returns True if it was new."""
        if fact in self._facts:
            return False
        self._facts.add(fact)
        self._domain.update(fact.arguments)
        self._by_relation.setdefault(fact.relation, set()).add(fact.arguments)
        return True

    def add_all(self, facts: Iterable[Fact]) -> int:
        """Add facts; returns how many were new."""
        return sum(1 for fact in facts if self.add(fact))

    def add_tuple(self, relation: RelationSymbol, arguments: Sequence) -> bool:
        return self.add(Fact(relation, tuple(arguments)))

    def __contains__(self, fact: object) -> bool:
        return fact in self._facts

    def __len__(self) -> int:
        return len(self._facts)

    def contains_tuple(self, relation: RelationSymbol, arguments: tuple) -> bool:
        return arguments in self._by_relation.get(relation, ())

    def tuples(self, relation: RelationSymbol) -> frozenset[tuple]:
        # a snapshot, not the live index: mutating it must not corrupt the builder
        return frozenset(self._by_relation.get(relation, ()))

    @property
    def active_domain(self) -> set:
        return self._domain

    def build(self) -> Instance:
        """Freeze into an :class:`Instance` without rescanning the facts.

        The schema is the declared schema (if any) grown by the symbols of
        the added facts — the builder mirrors ``Instance.with_facts``, which
        likewise re-infers symbols rather than rejecting new ones.  A name
        used with two arities still raises.
        """
        used = Schema(self._by_relation)
        if self._declared_schema is not None:
            schema = self._declared_schema.union(used)
        else:
            schema = used
        return Instance._from_parts(
            frozenset(self._facts),
            schema,
            frozenset(self._domain),
            {rel: frozenset(rows) for rel, rows in self._by_relation.items()},
        )


class MutableIndexedInstance:
    """A mutable fact store speaking the join planner's query protocol.

    Fixpoint loops (:meth:`repro.datalog.plain.DatalogProgram.least_fixpoint`
    and the DRed maintenance of :mod:`repro.service.delta`) used to freeze an
    :class:`InstanceBuilder` into a fresh :class:`Instance` every round; the
    freeze itself skipped rescans, but each round still rebuilt frozenset
    copies of every relation's rows — O(total facts) per round, which
    dominates one-shot latency on deep recursion (many small rounds).  This
    class instead keeps **one** mutable index set across all rounds: the
    per-relation rows and the lazily-built per-position buckets are plain
    sets updated in place by :meth:`add`, and the join planner reads them
    live through the same ``tuples`` / ``tuples_with`` /
    ``position_value_count`` interface it uses on frozen instances.

    Callers must not mutate while a join over the store is being consumed
    (the fixpoint loops buffer a round's derivations and apply them between
    rounds), and must not hold the returned sets across an ``add``.
    :meth:`freeze` emits a regular immutable :class:`Instance` — donating
    the already-built indexes — once the loop saturates.
    """

    def __init__(self, instance: Instance) -> None:
        self._facts: set[Fact] = set(instance.facts)
        self._domain: set[Constant] = set(instance.active_domain)
        self._by_relation: dict[RelationSymbol, set[tuple]] = {
            relation: set(instance.tuples(relation))
            for relation in {fact.relation for fact in self._facts}
        }
        self._by_position: dict[
            RelationSymbol, tuple[dict[Constant, set[tuple]], ...]
        ] = {}
        self._declared_schema = instance.schema

    def __contains__(self, fact: object) -> bool:
        return fact in self._facts

    def __len__(self) -> int:
        return len(self._facts)

    def is_empty(self) -> bool:
        return not self._facts

    @property
    def active_domain(self) -> set:
        return self._domain

    def add(self, fact: Fact) -> bool:
        """Add one fact, updating every built index; True if it was new."""
        if fact in self._facts:
            return False
        self._facts.add(fact)
        self._domain.update(fact.arguments)
        self._by_relation.setdefault(fact.relation, set()).add(fact.arguments)
        positional = self._by_position.get(fact.relation)
        if positional is not None:
            for position, value in enumerate(fact.arguments):
                positional[position].setdefault(value, set()).add(fact.arguments)
        return True

    # -- the join planner's query protocol ------------------------------------

    def tuples(self, relation: RelationSymbol) -> set[tuple]:
        """The live row set of ``relation`` (do not mutate, do not hold)."""
        return self._by_relation.get(relation, _EMPTY_ROWS)

    def _position_index(
        self, relation: RelationSymbol
    ) -> tuple[dict[Constant, set[tuple]], ...]:
        cached = self._by_position.get(relation)
        if cached is None:
            cached = tuple({} for _ in range(relation.arity))
            for row in self._by_relation.get(relation, ()):
                for position, value in enumerate(row):
                    cached[position].setdefault(value, set()).add(row)
            self._by_position[relation] = cached
        return cached

    def tuples_with(
        self, relation: RelationSymbol, position: int, value: Constant
    ) -> set[tuple]:
        if relation not in self._by_relation:
            return _EMPTY_ROWS
        return self._position_index(relation)[position].get(value, _EMPTY_ROWS)

    def position_values(self, relation: RelationSymbol, position: int) -> frozenset:
        if relation not in self._by_relation:
            return frozenset()
        return frozenset(self._position_index(relation)[position])

    def position_value_count(self, relation: RelationSymbol, position: int) -> int:
        if relation not in self._by_relation:
            return 0
        return len(self._position_index(relation)[position])

    # -- freezing --------------------------------------------------------------

    def freeze(self) -> Instance:
        """One immutable :class:`Instance`, donating the built indexes."""
        used = Schema(self._by_relation)
        schema = (
            self._declared_schema.union(used)
            if self._declared_schema is not None
            else used
        )
        by_position = {
            relation: tuple(
                {value: frozenset(rows) for value, rows in bucket.items()}
                for bucket in positional
            )
            for relation, positional in self._by_position.items()
        }
        return Instance._from_parts(
            frozenset(self._facts),
            schema,
            frozenset(self._domain),
            {rel: frozenset(rows) for rel, rows in self._by_relation.items()},
            by_position or None,
        )


_EMPTY_ROWS: frozenset = frozenset()


@dataclass(frozen=True)
class MarkedInstance:
    """An n-ary marked instance ``(D, d1, ..., dn)`` (Section 4.2).

    Every marked element must belong to the active domain of ``D``.
    """

    instance: Instance
    marks: tuple

    def __post_init__(self) -> None:
        for mark in self.marks:
            if mark not in self.instance.active_domain:
                raise ValueError(f"marked element {mark!r} is not in adom(D)")

    @property
    def arity(self) -> int:
        return len(self.marks)

    @property
    def schema(self) -> Schema:
        return self.instance.schema

    def to_unmarked(self, mark_symbols: Sequence[RelationSymbol]) -> Instance:
        """The instance ``(D, d)^c`` of Section 5.3: replace marks by fresh unary facts."""
        if len(mark_symbols) != len(self.marks):
            raise ValueError("need one unary symbol per marked element")
        extra = []
        for sym, mark in zip(mark_symbols, self.marks):
            if sym.arity != 1:
                raise ValueError(f"mark symbol {sym} must be unary")
            extra.append(Fact(sym, (mark,)))
        return self.instance.with_facts(extra)

    def __str__(self) -> str:
        return f"({self.instance!r}, {self.marks})"


def singleton_instance(facts_by_name: Mapping[str, int], element: Constant = "a") -> Instance:
    """A singleton instance: one element carrying the given relations reflexively.

    ``facts_by_name`` maps relation names to arities; each relation holds on the
    all-``element`` tuple.  Useful for the singleton-instance arguments of
    Theorems 3.5 and 3.8.
    """
    facts = []
    for name, arity in facts_by_name.items():
        sym = RelationSymbol(name, arity)
        facts.append(Fact(sym, tuple([element] * arity)))
    return Instance(facts)
