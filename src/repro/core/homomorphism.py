"""Homomorphisms between instances.

Homomorphism existence between relational structures is the computational
backbone of the paper: conjunctive-query evaluation, CSPs (``D -> B``),
forbidden-pattern problems and obstruction sets all reduce to it.

The search combines arc-consistency style pruning with backtracking on the
smallest-candidate-set variable, which is ample for the laptop-scale
structures used in the reproduction.
"""

from __future__ import annotations

from typing import Hashable, Iterator, Mapping, Sequence

from .instance import Fact, Instance, MarkedInstance

Element = Hashable
PartialMap = Mapping[Element, Element]


def _candidate_sets(
    source: Instance,
    target: Instance,
    fixed: PartialMap,
) -> dict[Element, set[Element]] | None:
    """Initial per-element candidate sets; ``None`` when some set is empty."""
    target_domain = set(target.active_domain)
    candidates: dict[Element, set[Element]] = {}
    for element in source.active_domain:
        if element in fixed:
            image = fixed[element]
            candidates[element] = {image} if image in target_domain else set()
        else:
            candidates[element] = set(target_domain)
        if not candidates[element]:
            return None
    # Unary pruning: an element must map to something satisfying all its
    # unary facts, and more generally each fact constrains each position.
    for fact in source:
        tuples = target.tuples(fact.relation)
        if not tuples:
            return None
        for position, element in enumerate(fact.arguments):
            allowed = {t[position] for t in tuples}
            candidates[element] &= allowed
            if not candidates[element]:
                return None
    return candidates


def _propagate(
    source: Instance,
    target: Instance,
    candidates: dict[Element, set[Element]],
) -> bool:
    """Generalised arc consistency over all source facts.  Returns False on wipe-out."""
    changed = True
    while changed:
        changed = False
        for fact in source:
            tuples = target.tuples(fact.relation)
            args = fact.arguments
            supported: list[set[Element]] = [set() for _ in args]
            for candidate_tuple in tuples:
                if all(
                    candidate_tuple[i] in candidates[args[i]] for i in range(len(args))
                ):
                    for i in range(len(args)):
                        supported[i].add(candidate_tuple[i])
            for i, element in enumerate(args):
                new = candidates[element] & supported[i]
                if new != candidates[element]:
                    candidates[element] = new
                    changed = True
                if not new:
                    return False
    return True


def _search(
    source: Instance,
    target: Instance,
    candidates: dict[Element, set[Element]],
    find_all: bool,
) -> Iterator[dict[Element, Element]]:
    if not _propagate(source, target, candidates):
        return
    undecided = [e for e, cands in candidates.items() if len(cands) > 1]
    if not undecided:
        yield {e: next(iter(cands)) for e, cands in candidates.items()}
        return
    pivot = min(undecided, key=lambda e: len(candidates[e]))
    for value in sorted(candidates[pivot], key=repr):
        branch = {e: set(c) for e, c in candidates.items()}
        branch[pivot] = {value}
        yielded = False
        for result in _search(source, target, branch, find_all):
            yielded = True
            yield result
            if not find_all:
                return
        if yielded and not find_all:
            return


def homomorphisms(
    source: Instance,
    target: Instance,
    fixed: PartialMap | None = None,
) -> Iterator[dict[Element, Element]]:
    """Enumerate all homomorphisms from ``source`` to ``target`` extending ``fixed``."""
    fixed = dict(fixed or {})
    if not source.active_domain:
        # The empty instance maps anywhere via the empty map.
        yield {}
        return
    candidates = _candidate_sets(source, target, fixed)
    if candidates is None:
        return
    yield from _search(source, target, candidates, find_all=True)


def find_homomorphism(
    source: Instance,
    target: Instance,
    fixed: PartialMap | None = None,
) -> dict[Element, Element] | None:
    """One homomorphism from ``source`` to ``target`` extending ``fixed``, or None."""
    fixed = dict(fixed or {})
    if not source.active_domain:
        return {}
    candidates = _candidate_sets(source, target, fixed)
    if candidates is None:
        return None
    for hom in _search(source, target, candidates, find_all=False):
        return hom
    return None


def has_homomorphism(
    source: Instance,
    target: Instance,
    fixed: PartialMap | None = None,
) -> bool:
    """``source -> target`` in the paper's notation."""
    return find_homomorphism(source, target, fixed) is not None


def marked_homomorphism_exists(
    source: MarkedInstance,
    target: MarkedInstance,
) -> bool:
    """``(D, d) -> (B, b)``: a homomorphism mapping each mark to the matching mark."""
    if source.arity != target.arity:
        raise ValueError("marked instances must have the same arity")
    fixed: dict[Element, Element] = {}
    for src_mark, tgt_mark in zip(source.marks, target.marks):
        if src_mark in fixed and fixed[src_mark] != tgt_mark:
            return False
        fixed[src_mark] = tgt_mark
    return has_homomorphism(source.instance, target.instance, fixed)


def homomorphically_equivalent(first: Instance, second: Instance) -> bool:
    """Homomorphisms exist in both directions."""
    return has_homomorphism(first, second) and has_homomorphism(second, first)


def homomorphically_incomparable(first: Instance, second: Instance) -> bool:
    """No homomorphism in either direction (used by Proposition 5.11)."""
    return not has_homomorphism(first, second) and not has_homomorphism(second, first)


def is_homomorphism(
    mapping: Mapping[Element, Element], source: Instance, target: Instance
) -> bool:
    """Check that ``mapping`` is a homomorphism from ``source`` to ``target``."""
    for element in source.active_domain:
        if element not in mapping:
            return False
    for fact in source:
        image = Fact(fact.relation, tuple(mapping[a] for a in fact.arguments))
        if image not in target:
            return False
    return True


def endomorphisms(instance: Instance) -> Iterator[dict[Element, Element]]:
    """All homomorphisms from an instance to itself."""
    yield from homomorphisms(instance, instance)


def core(instance: Instance) -> Instance:
    """A core of ``instance``: a minimal induced sub-instance it retracts onto.

    The core is unique up to isomorphism; CSP templates are interchangeable
    with their cores, which the FO-definability and bounded-width tests rely on.
    """
    current = instance
    changed = True
    while changed:
        changed = False
        domain = sorted(current.active_domain, key=repr)
        for element in domain:
            remaining = [d for d in domain if d != element]
            candidate = current.restrict_to_domain(remaining)
            folding = find_homomorphism(current, candidate)
            if folding is not None:
                # The homomorphic image of ``current`` under the folding is a
                # retract with strictly fewer elements; iterating reaches the core.
                current = Instance(fact.map(folding.__getitem__) for fact in current)
                changed = True
                break
    return current


def is_core(instance: Instance) -> bool:
    """True if every endomorphism of the instance is surjective on its domain."""
    size = len(instance.active_domain)
    for endo in endomorphisms(instance):
        if len(set(endo.values())) < size:
            return False
    return True


def retracts_onto(instance: Instance, sub_domain: Sequence[Element]) -> bool:
    """Is there a retraction of ``instance`` onto the sub-instance induced by ``sub_domain``?"""
    kept = set(sub_domain)
    candidate = instance.restrict_to_domain(kept)
    return (
        find_homomorphism(instance, candidate, fixed={d: d for d in kept}) is not None
    )
