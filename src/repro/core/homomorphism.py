"""Homomorphisms between instances.

Homomorphism existence between relational structures is the computational
backbone of the paper: conjunctive-query evaluation, CSPs (``D -> B``),
forbidden-pattern problems and obstruction sets all reduce to it.

The search maintains generalised arc consistency over the source facts and
backtracks on the smallest-candidate-set element (MAC).  All support queries
go through the target instance's per-relation / per-position indexes
(:meth:`Instance.tuples_with`, :meth:`Instance.position_values`), so a
propagation round touches only the tuples compatible with the current
candidate sets instead of rescanning every tuple of every relation.

:class:`HomomorphismSearch` packages the precomputed data (fact incidence,
base candidate sets) for one (source, target) pair so that callers answering
many queries against the same pair — e.g. the marked-template coCSP queries
of Section 4.2, which re-solve with different fixed marks — pay the set-up
cost once.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterator, Mapping, Sequence

from .instance import Fact, Instance, MarkedInstance

Element = Hashable
PartialMap = Mapping[Element, Element]


class HomomorphismSearch:
    """Reusable indexed homomorphism search from ``source`` into ``target``.

    Construction precomputes, per source element, the *base* candidate set
    (the target elements surviving unary/positional pruning) and, per
    element, the facts it occurs in (the incidence list driving propagation).
    Each :meth:`solve` / :meth:`all` call then starts from the base sets,
    which is what makes re-solving under different ``fixed`` maps cheap.
    """

    def __init__(self, source: Instance, target: Instance) -> None:
        self.source = source
        self.target = target
        # Per fact: (relation, arguments, first occurrence position per argument).
        # The first-occurrence tuple lets propagation enforce equality of
        # repeated arguments with one comparison per position.
        self._facts: list[tuple] = []
        self._incidence: dict[Element, list[int]] = {
            element: [] for element in source.active_domain
        }
        self._unsatisfiable = False
        for fact in source:
            index = len(self._facts)
            arguments = fact.arguments
            first = tuple(arguments.index(element) for element in arguments)
            self._facts.append((fact.relation, arguments, first))
            for element in set(arguments):
                self._incidence[element].append(index)
            if not target.tuples(fact.relation):
                self._unsatisfiable = True
        self._base: dict[Element, frozenset] = {}
        if not self._unsatisfiable:
            base: dict[Element, set] = {
                element: set(target.active_domain)
                for element in source.active_domain
            }
            for relation, arguments, _first in self._facts:
                for position, element in enumerate(arguments):
                    base[element] &= target.position_values(relation, position)
                    if not base[element]:
                        self._unsatisfiable = True
            self._base = {element: frozenset(cands) for element, cands in base.items()}

    # -- propagation -----------------------------------------------------------

    def _supported_rows(
        self, relation, arguments: tuple, candidates: dict[Element, set]
    ) -> Iterator[tuple]:
        """Target tuples of ``relation`` compatible with the candidate sets.

        Enumerates via the position index of the most constrained argument
        when that is cheaper than scanning the relation's full tuple set.
        """
        pivot = min(range(len(arguments)), key=lambda i: len(candidates[arguments[i]]))
        pivot_candidates = candidates[arguments[pivot]]
        all_rows = self.target.tuples(relation)
        if len(pivot_candidates) < len(all_rows):
            for value in pivot_candidates:
                yield from self.target.tuples_with(relation, pivot, value)
        else:
            yield from all_rows

    def _propagate(
        self, candidates: dict[Element, set], queue: deque[int]
    ) -> bool:
        """Generalised arc consistency restricted to the queued facts.

        Facts incident to any element whose candidate set shrinks are
        re-queued; returns False on wipe-out.
        """
        queued = set(queue)
        while queue:
            index = queue.popleft()
            queued.discard(index)
            relation, arguments, first = self._facts[index]
            if not arguments:
                continue  # nullary facts were checked at construction
            supported: dict[Element, set] = {
                element: set() for element in set(arguments)
            }
            for row in self._supported_rows(relation, arguments, candidates):
                consistent = True
                for position, element in enumerate(arguments):
                    # membership in the candidate set, and equality with the
                    # first occurrence for repeated arguments
                    if row[position] not in candidates[element] or (
                        row[first[position]] != row[position]
                    ):
                        consistent = False
                        break
                if not consistent:
                    continue
                for position, element in enumerate(arguments):
                    supported[element].add(row[position])
            for element in set(arguments):
                if candidates[element] <= supported[element]:
                    continue
                candidates[element] &= supported[element]
                if not candidates[element]:
                    return False
                for affected in self._incidence[element]:
                    if affected not in queued:
                        queue.append(affected)
                        queued.add(affected)
        return True

    # -- search ----------------------------------------------------------------

    def _initial_candidates(self, fixed: PartialMap) -> dict[Element, set] | None:
        candidates: dict[Element, set] = {}
        for element, base in self._base.items():
            if element in fixed:
                image = fixed[element]
                narrowed = {image} if image in base else set()
            else:
                narrowed = set(base)
            if not narrowed:
                return None
            candidates[element] = narrowed
        return candidates

    def _search(
        self, candidates: dict[Element, set], queue: deque[int], find_all: bool
    ) -> Iterator[dict[Element, Element]]:
        if not self._propagate(candidates, queue):
            return
        undecided = [e for e, cands in candidates.items() if len(cands) > 1]
        if not undecided:
            yield {e: next(iter(cands)) for e, cands in candidates.items()}
            return
        pivot = min(undecided, key=lambda e: len(candidates[e]))
        for value in sorted(candidates[pivot], key=repr):
            branch = {e: set(c) for e, c in candidates.items()}
            branch[pivot] = {value}
            for result in self._search(
                branch, deque(self._incidence[pivot]), find_all
            ):
                yield result
                if not find_all:
                    return

    def all(self, fixed: PartialMap | None = None) -> Iterator[dict[Element, Element]]:
        """Enumerate all homomorphisms extending ``fixed``."""
        # _unsatisfiable must win over the empty-domain shortcut: a source
        # with only nullary facts has an empty active domain, yet the empty
        # map is a homomorphism only when those facts hold in the target.
        if self._unsatisfiable:
            return
        if not self.source.active_domain:
            yield {}
            return
        candidates = self._initial_candidates(dict(fixed or {}))
        if candidates is None:
            return
        yield from self._search(candidates, deque(range(len(self._facts))), True)

    def solve(self, fixed: PartialMap | None = None) -> dict[Element, Element] | None:
        """One homomorphism extending ``fixed``, or None."""
        if self._unsatisfiable:
            return None
        if not self.source.active_domain:
            return {}
        candidates = self._initial_candidates(dict(fixed or {}))
        if candidates is None:
            return None
        for result in self._search(
            candidates, deque(range(len(self._facts))), False
        ):
            return result
        return None

    def exists(self, fixed: PartialMap | None = None) -> bool:
        return self.solve(fixed) is not None


def homomorphisms(
    source: Instance,
    target: Instance,
    fixed: PartialMap | None = None,
) -> Iterator[dict[Element, Element]]:
    """Enumerate all homomorphisms from ``source`` to ``target`` extending ``fixed``."""
    yield from HomomorphismSearch(source, target).all(fixed)


def find_homomorphism(
    source: Instance,
    target: Instance,
    fixed: PartialMap | None = None,
) -> dict[Element, Element] | None:
    """One homomorphism from ``source`` to ``target`` extending ``fixed``, or None."""
    return HomomorphismSearch(source, target).solve(fixed)


def has_homomorphism(
    source: Instance,
    target: Instance,
    fixed: PartialMap | None = None,
) -> bool:
    """``source -> target`` in the paper's notation."""
    return find_homomorphism(source, target, fixed) is not None


def marked_homomorphism_exists(
    source: MarkedInstance,
    target: MarkedInstance,
) -> bool:
    """``(D, d) -> (B, b)``: a homomorphism mapping each mark to the matching mark."""
    if source.arity != target.arity:
        raise ValueError("marked instances must have the same arity")
    fixed = marks_as_fixed_map(source.marks, target.marks)
    if fixed is None:
        return False
    return has_homomorphism(source.instance, target.instance, fixed)


def marks_as_fixed_map(
    source_marks: Sequence[Element], target_marks: Sequence[Element]
) -> dict[Element, Element] | None:
    """The fixed map sending each source mark to its target mark, or None when
    a repeated source mark would need two distinct images."""
    fixed: dict[Element, Element] = {}
    for src_mark, tgt_mark in zip(source_marks, target_marks):
        if src_mark in fixed and fixed[src_mark] != tgt_mark:
            return None
        fixed[src_mark] = tgt_mark
    return fixed


def homomorphically_equivalent(first: Instance, second: Instance) -> bool:
    """Homomorphisms exist in both directions."""
    return has_homomorphism(first, second) and has_homomorphism(second, first)


def homomorphically_incomparable(first: Instance, second: Instance) -> bool:
    """No homomorphism in either direction (used by Proposition 5.11)."""
    return not has_homomorphism(first, second) and not has_homomorphism(second, first)


def is_homomorphism(
    mapping: Mapping[Element, Element], source: Instance, target: Instance
) -> bool:
    """Check that ``mapping`` is a homomorphism from ``source`` to ``target``."""
    for element in source.active_domain:
        if element not in mapping:
            return False
    for fact in source:
        image = Fact(fact.relation, tuple(mapping[a] for a in fact.arguments))
        if image not in target:
            return False
    return True


def endomorphisms(instance: Instance) -> Iterator[dict[Element, Element]]:
    """All homomorphisms from an instance to itself."""
    yield from homomorphisms(instance, instance)


def core(instance: Instance) -> Instance:
    """A core of ``instance``: a minimal induced sub-instance it retracts onto.

    The core is unique up to isomorphism; CSP templates are interchangeable
    with their cores, which the FO-definability and bounded-width tests rely on.
    """
    current = instance
    changed = True
    while changed:
        changed = False
        domain = sorted(current.active_domain, key=repr)
        for element in domain:
            remaining = [d for d in domain if d != element]
            candidate = current.restrict_to_domain(remaining)
            folding = find_homomorphism(current, candidate)
            if folding is not None:
                # The homomorphic image of ``current`` under the folding is a
                # retract with strictly fewer elements; iterating reaches the core.
                current = Instance(fact.map(folding.__getitem__) for fact in current)
                changed = True
                break
    return current


def is_core(instance: Instance) -> bool:
    """True if every endomorphism of the instance is surjective on its domain."""
    size = len(instance.active_domain)
    return all(
        len(set(endo.values())) >= size for endo in endomorphisms(instance)
    )


def retracts_onto(instance: Instance, sub_domain: Sequence[Element]) -> bool:
    """Is there a retraction of ``instance`` onto the sub-instance induced by ``sub_domain``?"""
    kept = set(sub_domain)
    candidate = instance.restrict_to_domain(kept)
    return (
        find_homomorphism(instance, candidate, fixed={d: d for d in kept}) is not None
    )
