"""Operations on relational structures: products, powers, quotients, expansions.

These constructions are used by the CSP machinery (polymorphism detection
works on powers ``B^k``, the Larose–Loten–Tardif FO-definability test works
on ``B x B``) and by the obstruction-set reasoning of Section 5.3.
"""

from __future__ import annotations

import itertools
from typing import Hashable, Iterable, Mapping, Sequence

from .instance import Fact, Instance
from .schema import RelationSymbol, Schema

Element = Hashable


def direct_product(first: Instance, second: Instance) -> Instance:
    """The direct (categorical) product of two instances over a common schema.

    The domain is the Cartesian product of the active domains; a fact
    ``R((a1,b1), ..., (an,bn))`` holds iff ``R(a)`` holds in the first and
    ``R(b)`` in the second instance.
    """
    schema = first.schema | second.schema
    facts = []
    for symbol in schema:
        left = first.tuples(symbol)
        right = second.tuples(symbol)
        for tuple_left in left:
            for tuple_right in right:
                combined = tuple(zip(tuple_left, tuple_right))
                facts.append(Fact(symbol, combined))
    return Instance(facts, schema=schema)


def power(instance: Instance, exponent: int) -> Instance:
    """The ``exponent``-th direct power ``B^k`` with k-tuples as elements."""
    if exponent < 1:
        raise ValueError("exponent must be at least 1")
    schema = instance.schema
    facts = []
    for symbol in schema:
        base_tuples = list(instance.tuples(symbol))
        for combination in itertools.product(base_tuples, repeat=exponent):
            # combination is a k-tuple of arity-n tuples; transpose it to an
            # arity-n tuple of k-tuples.
            arity = symbol.arity
            transposed = tuple(
                tuple(combination[j][i] for j in range(exponent)) for i in range(arity)
            )
            facts.append(Fact(symbol, transposed))
    return Instance(facts, schema=schema)


def diagonal(instance: Instance, exponent: int = 2) -> frozenset:
    """The diagonal elements of ``B^exponent``: constant tuples."""
    return frozenset(tuple([a] * exponent) for a in instance.active_domain)


def quotient(instance: Instance, classes: Mapping[Element, Element]) -> Instance:
    """The quotient of an instance under a map to class representatives."""
    return instance.rename(dict(classes))


def disjoint_union(instances: Sequence[Instance]) -> Instance:
    """Disjoint union of a family of instances (elements tagged by index)."""
    facts = []
    for index, instance in enumerate(instances):
        tagged = instance.rename({a: (index, a) for a in instance.active_domain})
        facts.extend(tagged.facts)
    return Instance(facts)


def expansion_with_constants(
    instance: Instance,
    marks: Sequence[Element],
    mark_prefix: str = "P",
) -> tuple[Instance, tuple[RelationSymbol, ...]]:
    """The expansion ``(B, b)^c`` of Section 5.3.

    Marked elements are replaced by fresh unary relation symbols ``P1 ... Pn``
    holding exactly at the respective mark.  Returns the expanded instance and
    the tuple of fresh symbols used.
    """
    symbols = tuple(
        RelationSymbol(f"{mark_prefix}{i + 1}", 1) for i in range(len(marks))
    )
    extra = [Fact(sym, (mark,)) for sym, mark in zip(symbols, marks)]
    return instance.with_facts(extra), symbols


def collapse_marked_expansion(
    instance: Instance,
    mark_symbols: Sequence[RelationSymbol],
) -> tuple[Instance, tuple, bool]:
    """The collapse of an S_P-instance (Appendix C of the paper).

    Elements carrying the same mark symbol ``Pi`` are identified; the result is
    the collapsed instance over the original schema, the tuple of collapsed
    marks, and a flag telling whether the collapse is defined (every ``Pi``
    non-empty).
    """
    mark_set = set(mark_symbols)
    groups: dict[RelationSymbol, set] = {sym: set() for sym in mark_symbols}
    for fact in instance:
        if fact.relation in mark_set:
            groups[fact.relation].add(fact.arguments[0])
    if any(not members for members in groups.values()):
        return instance, (), False

    # Union-find over elements identified through shared marks.
    parent: dict = {}

    def find(x):
        parent.setdefault(x, x)
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(x, y):
        root_x, root_y = find(x), find(y)
        if root_x != root_y:
            parent[root_x] = root_y

    for members in groups.values():
        members = sorted(members, key=repr)
        for other in members[1:]:
            union(members[0], other)

    mapping = {a: find(a) for a in instance.active_domain}
    kept_facts = [f for f in instance if f.relation not in mark_set]
    collapsed = Instance(kept_facts).rename(mapping)
    marks = tuple(find(next(iter(sorted(groups[sym], key=repr)))) for sym in mark_symbols)
    return collapsed, marks, True


def reduct(instance: Instance, schema: Schema) -> Instance:
    """The reduct of an instance to a sub-schema."""
    return instance.restrict_to_schema(schema)


def all_instances_over(
    schema: Schema,
    domain: Sequence[Element],
    max_facts: int | None = None,
) -> Iterable[Instance]:
    """Enumerate all instances over a schema with elements from ``domain``.

    Used by exhaustive equivalence checks in tests; the number of instances is
    doubly exponential, so keep ``domain`` and ``schema`` tiny.
    """
    possible_facts = []
    for symbol in schema:
        for args in itertools.product(domain, repeat=symbol.arity):
            possible_facts.append(Fact(symbol, args))
    upper = len(possible_facts) if max_facts is None else min(max_facts, len(possible_facts))
    for size in range(upper + 1):
        for subset in itertools.combinations(possible_facts, size):
            yield Instance(subset, schema=schema)
