"""Conjunctive queries, UCQs, atomic queries and the ``tree(q)`` machinery.

Evaluation of a CQ over an instance is implemented via homomorphisms from the
query's canonical instance (variables as elements) into the data.  The module
also implements the query-shape analysis used in the proof of Theorem 3.3:
*fork elimination*, detection of tree-shaped components, and the set
``tree(q)`` of rooted / Boolean tree-shaped subqueries.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Mapping, Sequence, cast

from .homomorphism import homomorphisms
from .instance import Fact, Instance
from .schema import RelationSymbol, Schema


@dataclass(frozen=True, order=True)
class Variable:
    """A query variable."""

    name: str

    def __str__(self) -> str:
        return self.name


Term = Hashable  # either a Variable or a constant


@dataclass(frozen=True, order=True)
class Atom:
    """A relational atom ``R(t1, ..., tn)`` over variables and constants."""

    relation: RelationSymbol
    arguments: tuple[Term, ...]

    def __post_init__(self) -> None:
        if len(self.arguments) != self.relation.arity:
            raise ValueError(
                f"atom over {self.relation} expects {self.relation.arity} "
                f"arguments, got {len(self.arguments)}"
            )

    def __str__(self) -> str:
        return f"{self.relation.name}({', '.join(str(a) for a in self.arguments)})"

    @property
    def variables(self) -> tuple[Variable, ...]:
        return tuple(a for a in self.arguments if isinstance(a, Variable))

    def substitute(self, mapping: Mapping[Term, Term]) -> "Atom":
        return Atom(self.relation, tuple(mapping.get(a, a) for a in self.arguments))


def var(name: str) -> Variable:
    return Variable(name)


def vars_(*names: str) -> tuple[Variable, ...]:
    return tuple(Variable(name) for name in names)


class ConjunctiveQuery:
    """A conjunctive query: existentially quantified conjunction of atoms.

    ``answer_variables`` is the tuple of free variables (possibly with
    repetitions, which encode equality constraints between answer positions).
    All other variables are existentially quantified.
    """

    def __init__(
        self,
        answer_variables: Sequence[Variable],
        atoms: Iterable[Atom],
    ) -> None:
        self.answer_variables: tuple[Variable, ...] = tuple(answer_variables)
        self.atoms: frozenset[Atom] = frozenset(atoms)
        all_vars: set[Variable] = set()
        for atom in self.atoms:
            all_vars.update(atom.variables)
        missing = [v for v in self.answer_variables if v not in all_vars]
        if missing and self.atoms:
            raise ValueError(
                f"answer variables {missing} do not occur in any atom"
            )
        self._variables = frozenset(all_vars) | set(self.answer_variables)

    # -- basic accessors -------------------------------------------------------

    @property
    def arity(self) -> int:
        return len(self.answer_variables)

    @property
    def variables(self) -> frozenset[Variable]:
        return self._variables

    @property
    def existential_variables(self) -> frozenset[Variable]:
        return self._variables - set(self.answer_variables)

    def is_boolean(self) -> bool:
        return self.arity == 0

    def schema(self) -> Schema:
        return Schema(atom.relation for atom in self.atoms)

    def width(self) -> int:
        """Number of variables (the ``width of q`` in Theorem 3.3)."""
        return len(self._variables)

    def size(self) -> int:
        """Syntactic size: relation symbols, terms and parentheses."""
        return sum(2 + len(atom.arguments) for atom in self.atoms) + self.arity

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConjunctiveQuery):
            return NotImplemented
        return (
            self.answer_variables == other.answer_variables
            and self.atoms == other.atoms
        )

    def __hash__(self) -> int:
        return hash((self.answer_variables, self.atoms))

    def __repr__(self) -> str:
        body = " & ".join(sorted(str(a) for a in self.atoms))
        head = ", ".join(str(v) for v in self.answer_variables)
        return f"CQ({head} :- {body})"

    # -- structure -------------------------------------------------------------

    def canonical_instance(self) -> tuple[Instance, tuple[Term, ...]]:
        """The canonical instance of the query (variables become constants).

        Returns the instance together with the tuple of (images of the) answer
        variables.  Constants occurring in the query remain themselves.
        """
        facts = [Fact(atom.relation, atom.arguments) for atom in self.atoms]
        return Instance(facts), tuple(self.answer_variables)

    def substitute(self, mapping: Mapping[Term, Term]) -> "ConjunctiveQuery":
        # Fork elimination only ever merges variables into variables (or drops
        # an answer variable onto a constant representative, which the
        # ConjunctiveQuery constructor then rejects), hence the cast.
        return ConjunctiveQuery(
            tuple(cast(Variable, mapping.get(v, v)) for v in self.answer_variables),
            (atom.substitute(mapping) for atom in self.atoms),
        )

    def connected_components(self) -> list["ConjunctiveQuery"]:
        """Split into connected components of the variable co-occurrence graph.

        Answer variables are kept on the component containing them; a component
        without any answer variable becomes a Boolean CQ.
        """
        if not self.atoms:
            return [self]
        parent: dict[Term, Term] = {}

        def find(x: Term) -> Term:
            parent.setdefault(x, x)
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(x: Term, y: Term) -> None:
            rx, ry = find(x), find(y)
            if rx != ry:
                parent[rx] = ry

        for atom in self.atoms:
            terms = list(atom.arguments)
            for other in terms[1:]:
                union(terms[0], other)
        groups: dict[Term | None, list[Atom]] = {}
        for atom in self.atoms:
            root = find(atom.arguments[0]) if atom.arguments else None
            groups.setdefault(root, []).append(atom)
        components: list[ConjunctiveQuery] = []
        for atoms in groups.values():
            terms_here = {t for atom in atoms for t in atom.arguments}
            answers = tuple(v for v in self.answer_variables if v in terms_here)
            components.append(ConjunctiveQuery(answers, atoms))
        return components

    def is_connected(self) -> bool:
        return len(self.connected_components()) <= 1

    # -- evaluation ------------------------------------------------------------

    def evaluate(self, instance: Instance) -> frozenset[tuple[Term, ...]]:
        """The answer set ``q(D)`` (set of tuples over ``adom(D)``)."""
        canonical, answer_terms = self.canonical_instance()
        answers: set[tuple[Term, ...]] = set()
        if not self.atoms:
            # An atomless query is satisfied trivially; with answer variables it
            # would be unsafe, so only the Boolean case is meaningful here.
            return frozenset({()}) if self.arity == 0 else frozenset()
        for hom in homomorphisms(canonical, instance):
            answers.add(tuple(hom.get(t, t) for t in answer_terms))
        return frozenset(answers)

    def holds_in(self, instance: Instance, answer: Sequence[Term] = ()) -> bool:
        """Does the tuple ``answer`` belong to ``q(D)``?"""
        canonical, answer_terms = self.canonical_instance()
        if not self.atoms:
            return self.arity == 0
        fixed: dict[Term, Term] = {}
        for term, value in zip(answer_terms, answer):
            if term in fixed and fixed[term] != value:
                return False
            fixed[term] = value
        for _hom in homomorphisms(canonical, instance, fixed=fixed):
            return True
        return False


class UnionOfConjunctiveQueries:
    """A UCQ: a disjunction of CQs sharing the same answer arity."""

    def __init__(self, disjuncts: Iterable[ConjunctiveQuery]) -> None:
        self.disjuncts: tuple[ConjunctiveQuery, ...] = tuple(disjuncts)
        if not self.disjuncts:
            raise ValueError("a UCQ needs at least one disjunct")
        arities = {d.arity for d in self.disjuncts}
        if len(arities) != 1:
            raise ValueError(f"disjuncts disagree on arity: {arities}")

    @property
    def arity(self) -> int:
        return self.disjuncts[0].arity

    def is_boolean(self) -> bool:
        return self.arity == 0

    def schema(self) -> Schema:
        result = Schema()
        for disjunct in self.disjuncts:
            result = result | disjunct.schema()
        return result

    def width(self) -> int:
        return max(d.width() for d in self.disjuncts)

    def size(self) -> int:
        return sum(d.size() for d in self.disjuncts)

    def evaluate(self, instance: Instance) -> frozenset[tuple[Term, ...]]:
        answers: set[tuple[Term, ...]] = set()
        for disjunct in self.disjuncts:
            answers.update(disjunct.evaluate(instance))
        return frozenset(answers)

    def holds_in(self, instance: Instance, answer: Sequence[Term] = ()) -> bool:
        return any(d.holds_in(instance, answer) for d in self.disjuncts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UnionOfConjunctiveQueries):
            return NotImplemented
        return set(self.disjuncts) == set(other.disjuncts)

    def __hash__(self) -> int:
        return hash(frozenset(self.disjuncts))

    def __repr__(self) -> str:
        return " | ".join(repr(d) for d in self.disjuncts)

    def __iter__(self) -> Iterator[ConjunctiveQuery]:
        return iter(self.disjuncts)


def atomic_query(concept_name: str, variable: Variable | None = None) -> ConjunctiveQuery:
    """An atomic query ``A(x)`` (AQ)."""
    x = variable or Variable("x")
    return ConjunctiveQuery((x,), [Atom(RelationSymbol(concept_name, 1), (x,))])


def boolean_atomic_query(concept_name: str) -> ConjunctiveQuery:
    """A Boolean atomic query ``∃x A(x)`` (BAQ)."""
    x = Variable("x")
    return ConjunctiveQuery((), [Atom(RelationSymbol(concept_name, 1), (x,))])


def is_atomic_query(query: ConjunctiveQuery) -> bool:
    if query.arity != 1 or len(query.atoms) != 1:
        return False
    atom = next(iter(query.atoms))
    return atom.relation.arity == 1 and atom.arguments == (query.answer_variables[0],)


def is_boolean_atomic_query(query: ConjunctiveQuery) -> bool:
    if query.arity != 0 or len(query.atoms) != 1:
        return False
    atom = next(iter(query.atoms))
    return atom.relation.arity == 1


def as_ucq(query: "ConjunctiveQuery | UnionOfConjunctiveQueries") -> UnionOfConjunctiveQueries:
    if isinstance(query, UnionOfConjunctiveQueries):
        return query
    return UnionOfConjunctiveQueries([query])


# ---------------------------------------------------------------------------
# Fork elimination and tree(q): the query-shape analysis of Theorem 3.3.
# ---------------------------------------------------------------------------


def eliminate_forks(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """Exhaustive fork elimination over a binary-schema CQ.

    Whenever two atoms ``R(y1, x)`` and ``R(y2, x)`` with ``y1 != y2`` share the
    same role and target, ``y1`` and ``y2`` are identified (Theorem 3.3 proof,
    Step 1).  Answer variables absorb existential variables they are merged with.
    """
    current = query
    changed = True
    while changed:
        changed = False
        binary_atoms = [a for a in current.atoms if a.relation.arity == 2]
        by_role_target: dict[tuple[RelationSymbol, Term], list[Term]] = {}
        for atom in binary_atoms:
            by_role_target.setdefault((atom.relation, atom.arguments[1]), []).append(
                atom.arguments[0]
            )
        for sources in by_role_target.values():
            distinct = sorted(set(sources), key=str)
            if len(distinct) > 1:
                keep, merge = _pick_representative(distinct, current.answer_variables)
                mapping = {m: keep for m in merge}
                current = current.substitute(mapping)
                changed = True
                break
    return current


def _pick_representative(
    terms: Sequence[Term], answer_variables: Sequence[Variable]
) -> tuple[Term, list[Term]]:
    """Prefer keeping an answer variable (or a constant) as the representative."""
    answers = set(answer_variables)
    preferred = [t for t in terms if t in answers or not isinstance(t, Variable)]
    keep = preferred[0] if preferred else terms[0]
    merge = [t for t in terms if t != keep]
    return keep, merge


def is_tree_shaped(query: ConjunctiveQuery) -> bool:
    """Tree-shapedness per the paper: the directed graph on the binary atoms is a
    tree and no two parallel edges carry different roles (or the same role twice).
    """
    binary_atoms = [a for a in query.atoms if a.relation.arity == 2]
    if not binary_atoms and len({t for a in query.atoms for t in a.arguments}) <= 1:
        return True
    edges = [(a.arguments[0], a.arguments[1]) for a in binary_atoms]
    nodes = {t for a in query.atoms for t in a.arguments}
    if len(set(edges)) != len(edges):
        return False
    # no multi-edges with different roles
    if len({(a.arguments[0], a.arguments[1]) for a in binary_atoms}) != len(binary_atoms):
        return False
    # each node has at most one incoming edge, exactly one root, acyclic, connected
    targets = [t for (_s, t) in edges]
    if len(targets) != len(set(targets)):
        return False
    roots = [n for n in nodes if n not in set(targets)]
    if len(roots) != 1:
        return False
    # connectivity and acyclicity: reachable set from root covers all nodes
    adjacency: dict[Term, list[Term]] = {}
    for source, target in edges:
        adjacency.setdefault(source, []).append(target)
    seen = set()
    stack = [roots[0]]
    while stack:
        node = stack.pop()
        if node in seen:
            return False
        seen.add(node)
        stack.extend(adjacency.get(node, []))
    return seen == nodes


def tree_root(query: ConjunctiveQuery) -> Term:
    """The root of a tree-shaped CQ."""
    binary_atoms = [a for a in query.atoms if a.relation.arity == 2]
    if not binary_atoms:
        terms = {t for a in query.atoms for t in a.arguments}
        return next(iter(terms))
    targets = {a.arguments[1] for a in binary_atoms}
    sources = {a.arguments[0] for a in binary_atoms}
    roots = sources - targets
    return next(iter(roots))


def _restriction_reachable_from(
    query: ConjunctiveQuery, start: Term
) -> ConjunctiveQuery:
    """The restriction ``q|_y`` of a CQ to terms reachable from ``start``
    (viewing binary atoms as directed edges)."""
    adjacency: dict[Term, set[Term]] = {}
    for atom in query.atoms:
        if atom.relation.arity == 2:
            adjacency.setdefault(atom.arguments[0], set()).add(atom.arguments[1])
    reachable = {start}
    frontier = [start]
    while frontier:
        node = frontier.pop()
        for successor in adjacency.get(node, ()):
            if successor not in reachable:
                reachable.add(successor)
                frontier.append(successor)
    atoms = [
        a for a in query.atoms if all(t in reachable for t in a.arguments)
    ]
    return ConjunctiveQuery((), atoms)


def tree_queries(query: "ConjunctiveQuery | UnionOfConjunctiveQueries") -> list[ConjunctiveQuery]:
    """The set ``tree(q)`` of Theorem 3.3.

    For each disjunct ``q'`` of the UCQ: perform fork elimination, then collect
    (i) every connected component that is tree-shaped and answer-variable free
    (as a Boolean CQ), and (ii) for every atom ``R(x, y)`` whose reachable
    restriction ``q|_y`` is tree-shaped and answer-variable free, the rooted CQ
    ``{R(x, y)} ∪ q|_y`` with ``x`` as its only answer variable.
    """
    ucq = as_ucq(query)
    collected: list[ConjunctiveQuery] = []
    seen: set[tuple[tuple[Variable, ...], frozenset[Atom]]] = set()

    def add(candidate: ConjunctiveQuery) -> None:
        key = (candidate.answer_variables, candidate.atoms)
        if key not in seen:
            seen.add(key)
            collected.append(candidate)

    for disjunct in ucq.disjuncts:
        reduced = eliminate_forks(disjunct)
        answer_set = set(reduced.answer_variables)
        for component in reduced.connected_components():
            if not component.answer_variables and is_tree_shaped(component):
                add(ConjunctiveQuery((), component.atoms))
        for atom in reduced.atoms:
            if atom.relation.arity != 2:
                continue
            source, target = atom.arguments
            restriction = _restriction_reachable_from(reduced, target)
            touches_answer = any(
                isinstance(t, Variable) and t in answer_set
                for a in restriction.atoms
                for t in a.arguments
            )
            if touches_answer or not is_tree_shaped(restriction):
                continue
            reachable_terms = {t for a in restriction.atoms for t in a.arguments} | {target}
            if source in reachable_terms:
                continue  # the edge would close a cycle
            # Maximality (cf. the Theorem 3.3 example): a non-core component
            # attached below ``target`` contains *every* atom incident to the
            # reachable part, so a candidate is only valid when no other atom
            # of the query dangles into it.
            dangling = any(
                other != atom
                and other not in restriction.atoms
                and any(t in reachable_terms for t in other.arguments)
                for other in reduced.atoms
            )
            if dangling:
                continue
            rooted_atoms = set(restriction.atoms) | {atom}
            if isinstance(source, Variable):
                add(ConjunctiveQuery((source,), rooted_atoms))
    return collected


def all_cqs_up_to(
    schema: Schema,
    num_variables: int,
    max_atoms: int,
    arity: int = 0,
) -> Iterator[ConjunctiveQuery]:
    """Enumerate CQs over a schema with bounded variables and atoms (test helper)."""
    variables = vars_(*(f"x{i}" for i in range(num_variables)))
    possible_atoms: list[Atom] = []
    for symbol in schema:
        for args in itertools.product(variables, repeat=symbol.arity):
            possible_atoms.append(Atom(symbol, args))
    for size in range(1, max_atoms + 1):
        for atoms in itertools.combinations(possible_atoms, size):
            used = {v for a in atoms for v in a.variables}
            answers = tuple(sorted(used))[:arity]
            if len(answers) < arity:
                continue
            yield ConjunctiveQuery(answers, atoms)
