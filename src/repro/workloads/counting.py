"""Counting instances (Figure 1) and the succinctness workloads of Section 3.1.

The *counting instance of length k* is an ``R⁻;R``-path whose even positions
cycle through the markers ``Y0, Y1, Y2``.  Theorem 3.7 uses these instances to
separate (ALCI, UCQ) from (ALCHU, UCQ) in succinctness: an (ALCI, UCQ) query
of size polynomial in ``k`` can say "the path has length at least k" while any
(ALCHU, UCQ) query for the same family must have size at least ``2^{k/3}``.

The full counter construction of Lutz (2007/2008) realises a 2^k-bit counter
inside the attached trees; reproducing its *size shape* does not require the
full gadget, so this module provides (i) the counting instances themselves,
(ii) a polynomial-size (ALCI, UCQ) query family detecting path length ≥ k via
an explicit chain CQ, and (iii) the exponential-size inverse-free UCQ family
that the lower bound forces, so the succinctness gap can be measured
experimentally (benchmark E-F1).
"""

from __future__ import annotations

from ..core.cq import Atom, ConjunctiveQuery, UnionOfConjunctiveQueries, Variable
from ..core.instance import Fact, Instance
from ..core.schema import RelationSymbol, Schema
from ..dl.concepts import ConceptName, Exists, Role, inverse
from ..dl.ontology import ConceptInclusion, Ontology
from ..omq.query import OntologyMediatedQuery

R = RelationSymbol("R", 2)
Y = [RelationSymbol("Y0", 1), RelationSymbol("Y1", 1), RelationSymbol("Y2", 1)]


def counting_schema() -> Schema:
    return Schema([R] + Y)


def counting_instance(length: int) -> Instance:
    """The counting instance C_k of Figure 1: elements a_0..a_{2k}, odd elements
    pointing at both neighbours via R, even elements marked Y_{(i/2) mod 3}."""
    facts = []
    for i in range(0, 2 * length + 1):
        if i % 2 == 1:
            facts.append(Fact(R, (f"a{i}", f"a{i - 1}")))
            facts.append(Fact(R, (f"a{i}", f"a{i + 1}")))
        else:
            facts.append(Fact(Y[(i // 2) % 3], (f"a{i}",)))
    return Instance(facts, schema=counting_schema())


def path_detection_cq(length: int) -> ConjunctiveQuery:
    """A Boolean CQ asserting an ``R⁻;R``-path of length ``length`` with the
    correct Y-markers — satisfied by C_l exactly when l ≥ length."""
    atoms = []
    for i in range(0, 2 * length + 1):
        if i % 2 == 1:
            atoms.append(Atom(R, (Variable(f"x{i}"), Variable(f"x{i - 1}"))))
            atoms.append(Atom(R, (Variable(f"x{i}"), Variable(f"x{i + 1}"))))
        else:
            atoms.append(Atom(Y[(i // 2) % 3], (Variable(f"x{i}"),)))
    return ConjunctiveQuery((), atoms)


def alci_length_query(length: int) -> OntologyMediatedQuery:
    """A polynomial-size (ALCI, UCQ) query true on C_l iff l ≥ length.

    An inverse-role ontology marks, level by level, the elements lying at the
    start of an ``R⁻;R``-chain of the required length; the UCQ then asks for
    the top-level marker.  The construction is a compact stand-in for the
    exponential counter of Theorem 3.7: it is polynomial in ``length`` because
    each level is described by one axiom using an inverse role.
    """
    role = Role("R")
    axioms = []
    # Level_i holds at an even element whose (i steps further) chain continues.
    axioms.append(ConceptInclusion(ConceptName("Y0"), ConceptName("Level_0")))
    for i in range(1, length + 1):
        previous = ConceptName(f"Level_{i - 1}")
        marker = ConceptName(f"Y{i % 3}")
        axioms.append(
            ConceptInclusion(
                Exists(inverse("R"), Exists(role, previous)) & marker,
                ConceptName(f"Level_{i}"),
            )
        )
    ontology = Ontology(axioms)
    x = Variable("x")
    query = ConjunctiveQuery((), [Atom(RelationSymbol(f"Level_{length}", 1), (x,))])
    return OntologyMediatedQuery(
        ontology=ontology, query=query, data_schema=counting_schema()
    )


def inverse_free_length_query(length: int) -> OntologyMediatedQuery:
    """The inverse-free (ALC, UCQ) counterpart, whose only available strategy is
    to spell out the whole path in the query — its size grows linearly in the
    *data path length* it must describe, i.e. exponentially in the number of
    bits, which is the shape the Theorem 3.7 lower bound predicts."""
    ontology = Ontology([])
    query = UnionOfConjunctiveQueries([path_detection_cq(length)])
    return OntologyMediatedQuery(
        ontology=ontology, query=query, data_schema=counting_schema()
    )


def succinctness_measurements(max_length: int) -> list[dict]:
    """Sizes of the two query families for k = 1..max_length (benchmark E-F1)."""
    rows = []
    for k in range(1, max_length + 1):
        with_inverse = alci_length_query(k)
        without_inverse = inverse_free_length_query(k)
        rows.append(
            {
                "k": k,
                "alci_size": with_inverse.size(),
                "inverse_free_size": without_inverse.size(),
            }
        )
    return rows
