"""Separating instance families from Theorem 3.10 and Proposition 3.15.

These are the D0 / D1 families used with Lemma 3.9 to show that
(S, UCQ), (ALCF, UCQ) and (GFO, UCQ) can express Boolean queries beyond
MDDlog.  The benchmark E-310 re-runs the combinatorial core of those proofs:
for concrete colour counts ``k`` and sizes ``n`` it checks that the paper's
homomorphism pattern (Q(D0) = 0, Q(D1) = 1, and the colour-transfer property)
holds on the generated instances.
"""

from __future__ import annotations

import itertools

from ..core.cq import Atom, ConjunctiveQuery, Variable
from ..core.instance import Fact, Instance
from ..core.schema import RelationSymbol, Schema
from ..dl.concepts import Role
from ..dl.ontology import FunctionalRole, Ontology, TransitiveRole
from ..omq.query import OntologyMediatedQuery

R = RelationSymbol("R", 2)
S = RelationSymbol("S", 2)
P3 = RelationSymbol("P", 3)
A = RelationSymbol("A", 1)
B = RelationSymbol("B", 1)


def transitive_roles_omq() -> OntologyMediatedQuery:
    """The (S, UCQ) query of Theorem 3.10: O = {trans(R), trans(S)},
    q = ∃x∃y (R(x,y) ∧ S(x,y))."""
    x, y = Variable("x"), Variable("y")
    query = ConjunctiveQuery((), [Atom(R, (x, y)), Atom(S, (x, y))])
    ontology = Ontology([TransitiveRole(Role("R")), TransitiveRole(Role("S"))])
    return OntologyMediatedQuery(
        ontology=ontology, query=query, data_schema=Schema([R, S])
    )


def transitive_d1(m: int) -> Instance:
    """D1 of Theorem 3.10: an R-path and an S-path of length m+1 sharing both
    endpoints — the transitive closures meet, so the query holds."""
    facts = []
    r_nodes = ["e"] + [f"a{i}" for i in range(1, m + 1)] + ["f"]
    s_nodes = ["e"] + [f"b{i}" for i in range(1, m + 1)] + ["f"]
    for source, target in zip(r_nodes, r_nodes[1:]):
        facts.append(Fact(R, (source, target)))
    for source, target in zip(s_nodes, s_nodes[1:]):
        facts.append(Fact(S, (source, target)))
    return Instance(facts, schema=Schema([R, S]))


def transitive_d0(m: int, m_prime: int) -> Instance:
    """D0 of Theorem 3.10: many R-paths e^i → f^i and S-paths e^i → f^j with
    j < i, so no pair of elements is joined by both an R- and an S-path."""
    facts = []
    for i in range(1, m_prime + 1):
        r_nodes = [f"e{i}"] + [f"a{i}_{k}" for k in range(1, m + 1)] + [f"f{i}"]
        for source, target in zip(r_nodes, r_nodes[1:]):
            facts.append(Fact(R, (source, target)))
        for j in range(1, i):
            s_nodes = (
                [f"e{i}"] + [f"b{i}_{j}_{k}" for k in range(1, m + 1)] + [f"f{j}"]
            )
            for source, target in zip(s_nodes, s_nodes[1:]):
                facts.append(Fact(S, (source, target)))
    return Instance(facts, schema=Schema([R, S]))


def functional_role_omq() -> OntologyMediatedQuery:
    """The (ALCF, AQ) query of Theorem 3.10 separating ALCF from MDDlog:
    O = {func(R)}, q = A(x); not preserved under homomorphisms."""
    from ..core.cq import atomic_query

    ontology = Ontology([FunctionalRole(Role("R"))])
    return OntologyMediatedQuery(
        ontology=ontology,
        query=atomic_query("A"),
        data_schema=Schema([R, A]),
    )


def functional_violation_instance() -> Instance:
    """D = {R(a, b1), R(a, b2)}: inconsistent with func(R) under the SNA."""
    return Instance(
        [Fact(R, ("a", "b1")), Fact(R, ("a", "b2"))], schema=Schema([R, A])
    )


def functional_ok_instance() -> Instance:
    """D' = {R(a, b)}: consistent with func(R)."""
    return Instance([Fact(R, ("a", "b"))], schema=Schema([R, A]))


def gfo_reachability_query_schema() -> Schema:
    return Schema([P3, A, B])


def gfo_d1(n: int) -> Instance:
    """D1 of Proposition 3.15: a P-chain d1..dn through a single middle element e."""
    facts = [Fact(A, ("d1",)), Fact(B, (f"d{n}",))]
    for i in range(1, n):
        facts.append(Fact(P3, (f"d{i}", "e", f"d{i + 1}")))
    return Instance(facts, schema=gfo_reachability_query_schema())


def gfo_d0(n: int) -> Instance:
    """D0 of Proposition 3.15: the chain exists but every middle element e_j is
    skipped at step j, so no single element witnesses the whole chain."""
    facts = [Fact(A, ("d1",)), Fact(B, (f"d{n}",))]
    for i in range(1, n):
        for j in range(1, n):
            if j != i:
                facts.append(Fact(P3, (f"d{i}", f"e{j}", f"d{i + 1}")))
    return Instance(facts, schema=gfo_reachability_query_schema())


def gfo_query_holds(instance: Instance) -> bool:
    """Direct evaluation of the Boolean query (†) of Proposition 3.15: is there
    a P-chain from an A-element to a B-element through one shared middle element?"""
    middles = sorted(instance.active_domain, key=repr)
    a_elements = {t[0] for t in instance.tuples(A)}
    b_elements = {t[0] for t in instance.tuples(B)}
    triples = instance.tuples(P3)
    for middle in middles:
        successors: dict = {}
        for (x, z, y) in triples:
            if z == middle:
                successors.setdefault(x, set()).add(y)
        # BFS from each A-element through this middle element.
        for start in a_elements:
            seen = {start}
            frontier = [start]
            while frontier:
                node = frontier.pop()
                for nxt in successors.get(node, ()):
                    if nxt not in seen:
                        seen.add(nxt)
                        frontier.append(nxt)
            if (seen - {start}) & b_elements:
                return True
    return False


def colourings(instance: Instance, num_colours: int):
    """All k-colourings of an instance (Lemma 3.9's notion), as colour maps."""
    elements = sorted(instance.active_domain, key=repr)
    for assignment in itertools.product(range(num_colours), repeat=len(elements)):
        yield dict(zip(elements, assignment))
