"""Classic CSP templates used throughout Section 5's dichotomy discussion.

The zoo pairs each template with its textbook complexity so the dichotomy
classifier and the rewritability tests can be validated against ground truth:
2-colourability (PTIME, datalog), 3-colourability (NP-hard), 2-SAT (PTIME),
Horn-3-SAT (PTIME, datalog, not FO), linear equations mod 2 (PTIME via
Gaussian elimination, *not* bounded width), and simple order/reachability
templates with finite duality (FO-rewritable complements).
"""

from __future__ import annotations

import itertools

from ..core.instance import Fact, Instance
from ..core.schema import RelationSymbol, Schema

EDGE = RelationSymbol("edge", 2)


def clique_template(size: int) -> Instance:
    """K_n: CSP(K_n) is n-colourability (PTIME for n ≤ 2, NP-hard for n ≥ 3)."""
    facts = [
        Fact(EDGE, (i, j))
        for i, j in itertools.product(range(size), repeat=2)
        if i != j
    ]
    return Instance(facts, schema=Schema([EDGE]))


def two_colourability_template() -> Instance:
    return clique_template(2)


def three_colourability_template() -> Instance:
    return clique_template(3)


def reflexive_edge_template() -> Instance:
    """A single reflexive vertex: every graph maps into it (trivial CSP)."""
    return Instance([Fact(EDGE, (0, 0))], schema=Schema([EDGE]))


def directed_path_template(length: int = 2) -> Instance:
    """A directed path with ``length`` edges.

    ``CSP(P_k)`` is solvable by arc consistency (bounded width, so the
    complement is datalog-rewritable), but only the single edge ``P_1`` has
    finite duality: for ``k ≥ 2`` the "short-cut" instance
    ``{a→b, b→c, a→c}`` is a non-tree critical obstruction, so the complement
    is not FO-rewritable.
    """
    facts = [Fact(EDGE, (i, i + 1)) for i in range(length)]
    return Instance(facts, schema=Schema([EDGE]))


def transitive_tournament_template(size: int = 3) -> Instance:
    """The transitive tournament ``TT_n``.

    By the Gallai–Roy theorem a digraph maps to ``TT_n`` iff it has no directed
    path on ``n + 1`` vertices, so the single obstruction is a path (a tree):
    ``CSP(TT_n)`` has finite duality and its complement is FO-rewritable.
    """
    facts = [Fact(EDGE, (i, j)) for i in range(size) for j in range(i + 1, size)]
    return Instance(facts, schema=Schema([EDGE]))


def two_sat_template() -> Instance:
    """2-SAT as a CSP over the Boolean domain with one relation per clause type."""
    domain = (0, 1)
    or_00 = RelationSymbol("or_pp", 2)  # x ∨ y
    or_01 = RelationSymbol("or_pn", 2)  # x ∨ ¬y
    or_11 = RelationSymbol("or_nn", 2)  # ¬x ∨ ¬y
    facts = []
    for x, y in itertools.product(domain, repeat=2):
        if x or y:
            facts.append(Fact(or_00, (x, y)))
        if x or (not y):
            facts.append(Fact(or_01, (x, y)))
        if (not x) or (not y):
            facts.append(Fact(or_11, (x, y)))
    return Instance(facts, schema=Schema([or_00, or_01, or_11]))


def horn_sat_template() -> Instance:
    """Horn-3-SAT: implications x ∧ y → z plus unary ``true`` / ``false``."""
    domain = (0, 1)
    implies = RelationSymbol("implies", 3)
    is_true = RelationSymbol("is_true", 1)
    is_false = RelationSymbol("is_false", 1)
    facts = [Fact(is_true, (1,)), Fact(is_false, (0,))]
    for x, y, z in itertools.product(domain, repeat=3):
        if not (x and y) or z:
            facts.append(Fact(implies, (x, y, z)))
    return Instance(facts, schema=Schema([implies, is_true, is_false]))


def linear_equations_template() -> Instance:
    """x + y + z = 0 and = 1 over GF(2): PTIME but unbounded width
    (datalog cannot express it), the classic separating example."""
    domain = (0, 1)
    even = RelationSymbol("sum_even", 3)
    odd = RelationSymbol("sum_odd", 3)
    facts = []
    for x, y, z in itertools.product(domain, repeat=3):
        if (x + y + z) % 2 == 0:
            facts.append(Fact(even, (x, y, z)))
        else:
            facts.append(Fact(odd, (x, y, z)))
    return Instance(facts, schema=Schema([even, odd]))


def one_in_three_sat_template() -> Instance:
    """Positive 1-in-3-SAT: NP-hard even without negation."""
    domain = (0, 1)
    one_in_three = RelationSymbol("one_in_three", 3)
    facts = [
        Fact(one_in_three, (x, y, z))
        for x, y, z in itertools.product(domain, repeat=3)
        if x + y + z == 1
    ]
    return Instance(facts, schema=Schema([one_in_three]))


ZOO: dict[str, dict] = {
    "2-colourability": {
        "template": two_colourability_template,
        "tractable": True,
        "fo": False,
        "datalog": True,
    },
    "3-colourability": {
        "template": three_colourability_template,
        "tractable": False,
        "fo": False,
        "datalog": False,
    },
    "directed-path": {
        "template": directed_path_template,
        "tractable": True,
        "fo": False,
        "datalog": True,
    },
    "transitive-tournament": {
        "template": transitive_tournament_template,
        "tractable": True,
        "fo": True,
        "datalog": True,
    },
    "2-SAT": {
        "template": two_sat_template,
        "tractable": True,
        "fo": False,
        "datalog": True,
    },
    "Horn-3-SAT": {
        "template": horn_sat_template,
        "tractable": True,
        "fo": False,
        "datalog": True,
    },
    "linear-equations-mod-2": {
        "template": linear_equations_template,
        "tractable": True,
        "fo": False,
        "datalog": False,
    },
    "1-in-3-SAT": {
        "template": one_in_three_sat_template,
        "tractable": False,
        "fo": False,
        "datalog": False,
    },
}


def random_graph(num_vertices: int, edge_probability: float, seed: int = 0) -> Instance:
    """An Erdős–Rényi style directed graph over the ``edge`` schema."""
    import random

    rng = random.Random(seed)
    facts = []
    for i, j in itertools.permutations(range(num_vertices), 2):
        if rng.random() < edge_probability:
            facts.append(Fact(EDGE, (f"v{i}", f"v{j}")))
    return Instance(facts, schema=Schema([EDGE]))


def cycle_graph(length: int) -> Instance:
    """A directed cycle of the given length (odd cycles are not 2-colourable)."""
    facts = [Fact(EDGE, (f"v{i}", f"v{(i + 1) % length}")) for i in range(length)]
    return Instance(facts, schema=Schema([EDGE]))
