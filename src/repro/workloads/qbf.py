"""Theorem 3.1: the 2QBF reduction showing Πp2-hardness of MDDlog evaluation.

A 2QBF instance ``∀x1..xm ∃y1..yn ϕ`` (ϕ a 3CNF) is encoded as an instance
``D_ϕ`` plus an MDDlog program Π such that the formula is valid iff the
Boolean query defined by Π evaluates to true on ``D_ϕ``.  The encoding is the
one in the proof of Theorem 3.1.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass

from ..core.cq import Atom, Variable
from ..core.instance import Fact, Instance
from ..core.schema import RelationSymbol, Schema
from ..datalog.ddlog import DisjunctiveDatalogProgram, Rule, goal_atom

START = RelationSymbol("start", 2)
V = [RelationSymbol("V1", 2), RelationSymbol("V2", 2), RelationSymbol("V3", 2)]


@dataclass(frozen=True)
class TwoQbf:
    """``∀ universals ∃ existentials ϕ`` with ϕ a 3CNF over integer variables.

    Clauses are triples of literals; a literal is ``(variable, polarity)`` with
    ``polarity`` True for positive occurrences.  Universals are variables
    ``0..num_universals-1``; the rest are existential.
    """

    num_universals: int
    num_existentials: int
    clauses: tuple[tuple[tuple[int, bool], tuple[int, bool], tuple[int, bool]], ...]

    def variables(self) -> range:
        return range(self.num_universals + self.num_existentials)

    def is_valid(self) -> bool:
        """Brute-force validity check (for testing the reduction)."""
        universals = range(self.num_universals)
        existentials = range(self.num_universals, self.num_universals + self.num_existentials)
        for universal_bits in itertools.product((False, True), repeat=len(universals)):
            satisfied = False
            for existential_bits in itertools.product(
                (False, True), repeat=len(existentials)
            ):
                assignment = dict(zip(universals, universal_bits))
                assignment.update(zip(existentials, existential_bits))
                if self._satisfies(assignment):
                    satisfied = True
                    break
            if not satisfied:
                return False
        return True

    def _satisfies(self, assignment: dict[int, bool]) -> bool:
        return all(
            any(assignment[v] == polarity for v, polarity in clause)
            for clause in self.clauses
        )


def qbf_schema(num_clauses: int) -> Schema:
    clause_symbols = [RelationSymbol(f"C{i + 1}", 1) for i in range(num_clauses)]
    return Schema(clause_symbols + V + [START])


def qbf_instance(qbf: TwoQbf) -> Instance:
    """The instance D_ϕ of the reduction: one element per satisfying assignment
    of each clause, linked to the truth values it assigns, plus ``start(0, 1)``."""
    facts = [Fact(START, (0, 1))]
    for index, clause in enumerate(qbf.clauses):
        symbol = RelationSymbol(f"C{index + 1}", 1)
        for bits in itertools.product((0, 1), repeat=3):
            if any(bool(b) == polarity for b, (_v, polarity) in zip(bits, clause)):
                element = f"a{index + 1}_{bits[0]}{bits[1]}{bits[2]}"
                facts.append(Fact(symbol, (element,)))
                for position in range(3):
                    facts.append(Fact(V[position], (element, bits[position])))
    return Instance(facts, schema=qbf_schema(len(qbf.clauses)))


def qbf_program(qbf: TwoQbf) -> DisjunctiveDatalogProgram:
    """The MDDlog program Π of Theorem 3.1."""
    u0, u1 = Variable("u0"), Variable("u1")
    rules: list[Rule] = []
    universal_predicates = [
        RelationSymbol(f"X{i + 1}", 1) for i in range(qbf.num_universals)
    ]
    for predicate in universal_predicates:
        rules.append(
            Rule(
                (Atom(predicate, (u0,)), Atom(predicate, (u1,))),
                (Atom(START, (u0, u1)),),
            )
        )
    # Goal rule: the selected truth assignment extends to a model of ϕ.  The
    # datalog variable for a QBF variable is shared across all clauses that
    # mention it, which is what makes the per-clause rows consistent.
    body: list[Atom] = []
    for index, clause in enumerate(qbf.clauses):
        clause_variable = Variable(f"z{index + 1}")
        body.append(Atom(RelationSymbol(f"C{index + 1}", 1), (clause_variable,)))
        for position, (variable, _polarity) in enumerate(clause):
            body.append(Atom(V[position], (clause_variable, Variable(f"var_{variable}"))))
    for variable in range(qbf.num_universals):
        body.append(
            Atom(universal_predicates[variable], (Variable(f"var_{variable}"),))
        )
    rules.append(Rule((goal_atom(),), tuple(body)))
    return DisjunctiveDatalogProgram(rules)


def random_qbf(
    num_universals: int, num_existentials: int, num_clauses: int, seed: int = 0
) -> TwoQbf:
    """A random 2QBF instance for the benchmark sweeps of experiment E-31."""
    rng = random.Random(seed)
    total = num_universals + num_existentials
    clauses = []
    for _ in range(num_clauses):
        variables = rng.sample(range(total), k=min(3, total))
        while len(variables) < 3:
            variables.append(rng.randrange(total))
        clause = tuple((v, rng.random() < 0.5) for v in variables)
        clauses.append(clause)
    return TwoQbf(num_universals, num_existentials, tuple(clauses))
