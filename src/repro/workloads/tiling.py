"""The exponential grid tiling problem used in the lower bounds of Section 5.

Theorems 5.7 and 5.16 reduce the NEXPTIME-complete 2^n × 2^n tiling problem to
query containment and to (FO-/datalog-) rewritability of (ALC, AQ) queries.
This module provides the tiling problem itself — instances, a brute-force
solver for small parameters, and generators of satisfiable / unsatisfiable
families — so the reductions' *input side* can be exercised and benchmarked.
The grid is kept at ``2^n`` for small ``n`` (the reduction's ontologies encode
the same counters symbolically; see EXPERIMENTS.md for the scope note).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True)
class TilingProblem:
    """An exponential grid tiling problem instance.

    ``tiles`` are tile-type names; ``horizontal`` / ``vertical`` are the allowed
    adjacent pairs; ``initial`` is the bottom-row prefix that must be placed at
    positions (0,0) .. (len(initial)-1, 0); ``n`` gives the 2^n × 2^n grid.
    """

    n: int
    tiles: tuple[str, ...]
    horizontal: frozenset[tuple[str, str]]
    vertical: frozenset[tuple[str, str]]
    initial: tuple[str, ...]

    @property
    def width(self) -> int:
        return 2**self.n

    def is_solution(self, assignment: dict[tuple[int, int], str]) -> bool:
        width = self.width
        for x, y in itertools.product(range(width), repeat=2):
            if (x, y) not in assignment:
                return False
        for index, tile in enumerate(self.initial):
            if assignment.get((index, 0)) != tile:
                return False
        for x, y in itertools.product(range(width), repeat=2):
            if x + 1 < width and (assignment[(x, y)], assignment[(x + 1, y)]) not in self.horizontal:
                return False
            if y + 1 < width and (assignment[(x, y)], assignment[(x, y + 1)]) not in self.vertical:
                return False
        return True

    def solve(self) -> dict[tuple[int, int], str] | None:
        """Backtracking search for a solution (small ``n`` only)."""
        width = self.width
        positions = [(x, y) for y in range(width) for x in range(width)]
        assignment: dict[tuple[int, int], str] = {}

        def candidates(position: tuple[int, int]) -> Iterable[str]:
            x, y = position
            if y == 0 and x < len(self.initial):
                return (self.initial[x],)
            return self.tiles

        def consistent(position: tuple[int, int], tile: str) -> bool:
            x, y = position
            if x > 0 and (assignment[(x - 1, y)], tile) not in self.horizontal:
                return False
            if y > 0 and (assignment[(x, y - 1)], tile) not in self.vertical:
                return False
            return True

        def search(index: int) -> bool:
            if index == len(positions):
                return True
            position = positions[index]
            for tile in candidates(position):
                if consistent(position, tile):
                    assignment[position] = tile
                    if search(index + 1):
                        return True
                    del assignment[position]
            return False

        if search(0):
            return dict(assignment)
        return None

    def has_solution(self) -> bool:
        return self.solve() is not None


def solvable_tiling(n: int = 1) -> TilingProblem:
    """A trivially solvable instance: one tile compatible with itself."""
    return TilingProblem(
        n=n,
        tiles=("white",),
        horizontal=frozenset({("white", "white")}),
        vertical=frozenset({("white", "white")}),
        initial=("white",),
    )


def checkerboard_tiling(n: int = 1) -> TilingProblem:
    """A solvable instance that forces a checkerboard pattern."""
    horizontal = frozenset({("black", "white"), ("white", "black")})
    vertical = frozenset({("black", "white"), ("white", "black")})
    return TilingProblem(
        n=n,
        tiles=("black", "white"),
        horizontal=horizontal,
        vertical=vertical,
        initial=("black",),
    )


def unsolvable_tiling(n: int = 1) -> TilingProblem:
    """An unsolvable instance: the initial tile has no right neighbour."""
    return TilingProblem(
        n=n,
        tiles=("a", "b"),
        horizontal=frozenset({("b", "b")}),
        vertical=frozenset({("a", "a"), ("b", "b")}),
        initial=("a",),
    )
