"""Workloads: the paper's worked examples, separating families, reductions and
classic CSP templates used by the tests, examples and benchmarks."""

from . import counting, csp_zoo, medical, qbf, separations, tiling

__all__ = ["counting", "csp_zoo", "medical", "qbf", "separations", "tiling"]
