"""The paper's running medical example (Table I, Examples 2.1, 2.2 and 4.5).

The ontology states that a finding of Erythema Migrans is sufficient for a
Lyme-disease diagnosis, that Lyme disease and Listeriosis are bacterial
infections, and that hereditary predispositions propagate from parents.
"""

from __future__ import annotations

from ..core.cq import Atom, ConjunctiveQuery, Variable, atomic_query
from ..core.instance import Instance
from ..core.schema import RelationSymbol, Schema
from ..dl.concepts import ConceptName, Exists, Role
from ..dl.ontology import ConceptInclusion, Ontology
from ..omq.query import OntologyMediatedQuery

# Concept names
ERYTHEMA_MIGRANS = ConceptName("ErythemaMigrans")
LYME_DISEASE = ConceptName("LymeDisease")
LISTERIOSIS = ConceptName("Listeriosis")
BACTERIAL_INFECTION = ConceptName("BacterialInfection")
HEREDITARY_PREDISPOSITION = ConceptName("HereditaryPredisposition")

# Role names
HAS_FINDING = Role("HasFinding")
HAS_DIAGNOSIS = Role("HasDiagnosis")
HAS_PARENT = Role("HasParent")


def medical_ontology() -> Ontology:
    """The ALC ontology of Table I (lower half)."""
    return Ontology(
        [
            ConceptInclusion(
                Exists(HAS_FINDING, ERYTHEMA_MIGRANS),
                Exists(HAS_DIAGNOSIS, LYME_DISEASE),
            ),
            ConceptInclusion(LYME_DISEASE | LISTERIOSIS, BACTERIAL_INFECTION),
            ConceptInclusion(
                Exists(HAS_PARENT, HEREDITARY_PREDISPOSITION),
                HEREDITARY_PREDISPOSITION,
            ),
        ]
    )


def medical_schema() -> Schema:
    """The data schema S of Example 2.1."""
    return Schema.binary(
        concept_names=[
            "ErythemaMigrans",
            "LymeDisease",
            "Listeriosis",
            "HereditaryPredisposition",
        ],
        role_names=["HasFinding", "HasDiagnosis", "HasParent"],
    )


def patient_instance() -> Instance:
    """The data instance D of Example 2.1."""
    schema = medical_schema()
    return Instance.from_tuples(
        schema,
        {
            "HasFinding": [("patient1", "jan12find1")],
            "ErythemaMigrans": [("jan12find1",)],
            "HasDiagnosis": [("patient2", "may7diag2")],
            "Listeriosis": [("may7diag2",)],
        },
    )


def bacterial_infection_query() -> ConjunctiveQuery:
    """q(x) = ∃y (HasDiagnosis(x, y) ∧ BacterialInfection(y)) of Example 2.1."""
    x, y = Variable("x"), Variable("y")
    return ConjunctiveQuery(
        (x,),
        [
            Atom(RelationSymbol("HasDiagnosis", 2), (x, y)),
            Atom(RelationSymbol("BacterialInfection", 1), (y,)),
        ],
    )


def example_2_1_omq() -> OntologyMediatedQuery:
    """The ontology-mediated query (S, O, q) of Example 2.1."""
    return OntologyMediatedQuery(
        ontology=medical_ontology(),
        query=bacterial_infection_query(),
        data_schema=medical_schema(),
    )


def example_2_2_q1_omq() -> OntologyMediatedQuery:
    """Example 2.2: q1(x) = BacterialInfection(x), equivalent to a UCQ."""
    return OntologyMediatedQuery(
        ontology=medical_ontology(),
        query=atomic_query("BacterialInfection"),
        data_schema=medical_schema(),
    )


def example_2_2_q2_omq() -> OntologyMediatedQuery:
    """Example 2.2: q2(x) = HereditaryPredisposition(x), datalog- but not
    FO-rewritable."""
    return OntologyMediatedQuery(
        ontology=medical_ontology(),
        query=atomic_query("HereditaryPredisposition"),
        data_schema=medical_schema(),
    )


def example_4_5_ontology() -> Ontology:
    """The single-axiom fragment used in Example 4.5."""
    return Ontology(
        [
            ConceptInclusion(
                Exists(HAS_PARENT, HEREDITARY_PREDISPOSITION),
                HEREDITARY_PREDISPOSITION,
            )
        ]
    )


def example_4_5_schema() -> Schema:
    return Schema.binary(
        concept_names=["HereditaryPredisposition"], role_names=["HasParent"]
    )


def example_4_5_omq() -> OntologyMediatedQuery:
    """The (ALC, AQ) query of Example 4.5, whose complement is a CSP with one
    marked element."""
    return OntologyMediatedQuery(
        ontology=example_4_5_ontology(),
        query=atomic_query("HereditaryPredisposition"),
        data_schema=example_4_5_schema(),
    )


def family_instance(generations: int = 3, predisposed_root: bool = True) -> Instance:
    """A chain of ``HasParent`` facts; the oldest ancestor optionally carries
    the hereditary predisposition (exercises Example 2.2's recursion)."""
    schema = example_4_5_schema()
    parents = [(f"person{i}", f"person{i + 1}") for i in range(generations)]
    concepts = [(f"person{generations}",)] if predisposed_root else []
    return Instance.from_tuples(
        schema, {"HasParent": parents, "HereditaryPredisposition": concepts}
    )
