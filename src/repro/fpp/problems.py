"""Forbidden patterns problems (Section 3, before Proposition 3.2).

A C-coloured S-instance assigns exactly one colour (from a finite palette of
fresh unary symbols) to every element.  A forbidden patterns problem is given
by a finite set F of coloured instances; an S-instance belongs to ``Forb(F)``
iff it admits a colouring into which no forbidden pattern maps.  ``coFPP``
queries are the complements, and Proposition 3.2 identifies them with Boolean
MDDlog — the translation lives in :mod:`repro.translations.fpp_mddlog`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..core.homomorphism import has_homomorphism
from ..core.instance import Fact, Instance
from ..core.schema import RelationSymbol, Schema


@dataclass(frozen=True)
class ColouredInstance:
    """An S ∪ C-instance in which every element carries exactly one colour."""

    instance: Instance
    colours: tuple[RelationSymbol, ...]

    def __post_init__(self) -> None:
        palette = set(self.colours)
        for element in self.instance.active_domain:
            count = sum(
                1
                for fact in self.instance.facts_with_constant(element)
                if fact.relation in palette and fact.arguments == (element,)
            )
            if count != 1:
                raise ValueError(
                    f"element {element!r} carries {count} colours, expected exactly 1"
                )

    def data_part(self) -> Instance:
        """The restriction to the data schema (colours removed)."""
        return Instance(
            fact for fact in self.instance if fact.relation not in set(self.colours)
        )


class ForbiddenPatternsProblem:
    """A forbidden patterns problem given by a palette and a set of patterns."""

    def __init__(
        self,
        schema: Schema,
        colours: Sequence[RelationSymbol],
        patterns: Iterable[ColouredInstance],
    ) -> None:
        self.schema = schema
        self.colours = tuple(colours)
        self.patterns = tuple(patterns)
        for colour in self.colours:
            if colour.arity != 1:
                raise ValueError("colours must be unary relation symbols")
        for pattern in self.patterns:
            if tuple(pattern.colours) != self.colours:
                raise ValueError("patterns must use the problem's palette")

    # -- semantics -------------------------------------------------------------------

    def colourings(self, data: Instance) -> Iterable[Instance]:
        """All colourings of a data instance (every element gets one colour)."""
        elements = sorted(data.active_domain, key=repr)
        for choice in itertools.product(self.colours, repeat=len(elements)):
            extra = [
                Fact(colour, (element,))
                for element, colour in zip(elements, choice)
            ]
            yield data.with_facts(extra)

    def admits_good_colouring(self, data: Instance) -> bool:
        """Is the instance in ``Forb(F)``: some colouring avoids all patterns?"""
        return any(
            not any(
                has_homomorphism(pattern.instance, coloured)
                for pattern in self.patterns
            )
            for coloured in self.colourings(data)
        )

    def in_forb(self, data: Instance) -> bool:
        return self.admits_good_colouring(data)

    def co_fpp_query(self, data: Instance) -> bool:
        """The coFPP query: true iff the instance is *not* in Forb(F)."""
        if not data.active_domain:
            return False
        return not self.admits_good_colouring(data)


def make_palette(size: int, prefix: str = "C") -> tuple[RelationSymbol, ...]:
    return tuple(RelationSymbol(f"{prefix}{i + 1}", 1) for i in range(size))


def colour_instance(
    data: Instance,
    colours: Sequence[RelationSymbol],
    assignment: dict,
) -> ColouredInstance:
    """Build a coloured instance from a data instance and a colour assignment."""
    extra = [Fact(assignment[element], (element,)) for element in data.active_domain]
    return ColouredInstance(data.with_facts(extra), tuple(colours))
