"""Forbidden patterns problems (coFPP) and coloured instances."""

from .problems import (
    ColouredInstance,
    ForbiddenPatternsProblem,
    colour_instance,
    make_palette,
)

__all__ = [
    "ColouredInstance",
    "ForbiddenPatternsProblem",
    "colour_instance",
    "make_palette",
]
