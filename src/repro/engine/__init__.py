"""The shared indexed evaluation engine.

This package hosts the two performance-critical primitives every compute
layer of the reproduction bottoms out in:

* **join-planned grounding** (:mod:`repro.engine.joins`,
  :mod:`repro.engine.grounder`) — rule bodies are satisfied by a greedy
  selectivity-ordered join over the instance's position indexes, and ground
  clause sets are deduplicated and subsumption-reduced;
* **incremental solving** (:mod:`repro.engine.sat`) — a watched-literal
  DPLL solver with assumption literals, so a program is grounded once per
  instance and all candidate answer tuples are decided against one
  persistent solver state.

The datalog, CSP, OMQ and OBDA layers all sit on this engine (together with
the indexed homomorphism search in :mod:`repro.core.homomorphism`); see
``ARCHITECTURE.md`` at the repository root for the layer diagram.
"""

from .grounder import Clause, GroundAtom, GroundProgram, ground_program
from .joins import (
    JoinPlan,
    canonical_key,
    compile_join,
    execute_join,
    extend_assignment,
    join_assignments,
    join_exists,
    matching_rows,
    order_atoms,
)
from .parallel import ParallelEvaluator, ReplicaPool, parallel_certain_answers, resolve_workers
from .sat import ClauseSolver, TseitinAux, solver_for_clauses, tseitin_clauses, tseitin_encode

__all__ = [
    "Clause",
    "ClauseSolver",
    "GroundAtom",
    "GroundProgram",
    "JoinPlan",
    "ParallelEvaluator",
    "ReplicaPool",
    "TseitinAux",
    "canonical_key",
    "compile_join",
    "execute_join",
    "extend_assignment",
    "ground_program",
    "join_assignments",
    "join_exists",
    "matching_rows",
    "order_atoms",
    "parallel_certain_answers",
    "resolve_workers",
    "solver_for_clauses",
    "tseitin_clauses",
    "tseitin_encode",
]
