"""Join planning and execution over indexed instances.

Grounding a datalog rule means enumerating the variable assignments that
satisfy its EDB body atoms.  The seed implementation seeded bindings from
EDB atoms in syntactic order and then ran ``itertools.product`` over
``domain ** len(free)`` — near-cartesian whenever atoms were ordered badly.

Two join engines live here:

* The **set-at-a-time interned engine** — :class:`JoinPlan` /
  :func:`compile_join` / :func:`execute_join` / :func:`join_exists` —
  compiles a rule body once per (atoms, bound-variable set) into a slotted
  plan over *int rows* (constants pre-interned to dense codes, variables
  mapped to row slots), then executes each body atom as one batch step over
  whole partial-row batches, probing the store's persistent per-position
  bucket indexes.  Fixpoints, delta maintenance and grounding run on this
  engine; plans are cached by the callers and stay valid across rounds and
  epochs because interners are append-only and delta copies share them.

* The **tuple-at-a-time engine** — :func:`order_atoms` /
  :func:`matching_rows` / :func:`join_assignments` — binds variables
  atom-by-atom, depth-first, over decoded constant tuples.  It is the
  pre-columnar implementation, kept as the cross-validation reference and
  the benchmark baseline for the interned engine.

Both engines pick greedy join orders by estimated selectivity; estimates
come from O(1) column statistics (row counts and per-position distinct
counts) served by the store's interned columns.

Assignments are deduplicated by their canonical ``(variable name, value)``
pair sequence (sorted by variable name), never by ``repr`` — distinct
constants with identical reprs stay distinct.  The interned engine gets the
same guarantee for free: codes are assigned per *constant*, not per repr.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Mapping, Sequence

from ..core.cq import Atom, Variable
from ..core.instance import Instance
from ..core.interning import IntRow
from ..obs import telemetry as _telemetry

Element = Hashable
Assignment = dict[Variable, Element]

_EMPTY_ROWSET: frozenset = frozenset()


def canonical_key(assignment: Mapping[Variable, Element]) -> tuple:
    """A canonical dedup key: (name, value) pairs sorted by variable name.

    Variable names are unique within an assignment, so the sort never
    compares the (arbitrary, possibly unorderable) values, and the key is
    equal exactly for equal assignments.
    """
    return tuple(
        sorted(((v.name, value) for v, value in assignment.items()), key=lambda p: p[0])
    )


def _estimated_rows(atom: Atom, bound: set[Variable], instance: Instance) -> float:
    """Estimate how many rows of ``atom`` match once ``bound`` variables have values.

    With no bound position this is the relation's cardinality; with bound
    positions it is the smallest average index-bucket size over them
    (cardinality divided by the number of distinct values at the position).
    Constants count as bound positions.

    On interned stores the estimate is served entirely from the column
    statistics — the row count and per-position distinct counts memoized on
    the :class:`~repro.core.interning.ColumnarRelation` itself — so
    repeated estimation inside fixpoint loops costs O(1) per position
    instead of rescanning (or re-decoding) the relation every round.
    """
    stats = getattr(instance, "column_stats", None)
    if stats is not None:
        total, distinct_counts = stats(atom.relation)
        if total == 0:
            return 0.0
        best = float(total)
        for position, term in enumerate(atom.arguments):
            if isinstance(term, Variable):
                if term not in bound:
                    continue
                distinct = distinct_counts[position]
                if distinct:
                    best = min(best, total / distinct)
            else:
                # constants give an exact bucket size via the int-keyed index
                code = instance.interner.code(term)
                if code is None:
                    return 0.0
                best = min(
                    best,
                    float(len(instance.row_bucket(atom.relation, position, code))),
                )
        return best
    total = len(instance.tuples(atom.relation))
    if total == 0:
        return 0.0
    best = float(total)
    for position, term in enumerate(atom.arguments):
        if isinstance(term, Variable):
            if term not in bound:
                continue
            distinct = instance.position_value_count(atom.relation, position)
            if distinct:
                best = min(best, total / distinct)
        else:
            # constants give an exact bucket size
            best = min(best, float(len(instance.tuples_with(atom.relation, position, term))))
    return best


def order_atoms(
    atoms: Sequence[Atom],
    instance: Instance,
    bound: Iterable[Variable] = (),
) -> list[Atom]:
    """Greedy join order: repeatedly take the cheapest atom given bound variables."""
    remaining = list(atoms)
    bound_now: set[Variable] = set(bound)
    ordered: list[Atom] = []
    while remaining:
        best = min(
            range(len(remaining)),
            key=lambda i: _estimated_rows(remaining[i], bound_now, instance),
        )
        atom = remaining.pop(best)
        ordered.append(atom)
        bound_now.update(atom.variables)
    return ordered


def matching_rows(
    atom: Atom, instance: Instance, assignment: Mapping[Variable, Element]
) -> Iterator[tuple]:
    """Rows of ``atom``'s relation compatible with the partial assignment.

    Uses the position index of the most selective bound argument (constant or
    already-bound variable) when one exists; callers still re-check every
    position via :func:`extend_assignment`.
    """
    best_rows = None
    for position, term in enumerate(atom.arguments):
        if isinstance(term, Variable):
            if term not in assignment:
                continue
            value = assignment[term]
        else:
            value = term
        rows = instance.tuples_with(atom.relation, position, value)
        if best_rows is None or len(rows) < len(best_rows):
            best_rows = rows
            if not best_rows:
                break
    if best_rows is None:
        best_rows = instance.tuples(atom.relation)
    return iter(best_rows)


def extend_assignment(
    atom: Atom, row: tuple, assignment: Mapping[Variable, Element]
) -> Assignment | None:
    """Extend the assignment so that ``atom`` maps onto ``row``; None on clash."""
    extended = dict(assignment)
    for term, value in zip(atom.arguments, row):
        if isinstance(term, Variable):
            existing = extended.get(term, _MISSING)
            if existing is _MISSING:
                extended[term] = value
            elif existing != value:
                return None
        elif term != value:
            return None
    return extended


_MISSING = object()


def join_assignments(
    atoms: Sequence[Atom],
    instance: Instance,
    initial: Mapping[Variable, Element] | None = None,
    ordered: Sequence[Atom] | None = None,
) -> Iterator[Assignment]:
    """All assignments of the atoms' variables satisfied by the instance.

    The atoms are joined depth-first in greedy selectivity order; every
    yielded assignment binds exactly the variables of ``atoms`` plus those of
    ``initial``.  Callers issuing many joins that differ only in the seed
    *values* (semi-naive delta rounds) may precompute the order once with
    :func:`order_atoms` and pass it as ``ordered``.
    """
    seed: Assignment = dict(initial or {})
    if ordered is None:
        ordered = order_atoms(atoms, instance, bound=seed)

    def walk(index: int, assignment: Assignment) -> Iterator[Assignment]:
        if index == len(ordered):
            yield assignment
            return
        atom = ordered[index]
        for row in matching_rows(atom, instance, assignment):
            extended = extend_assignment(atom, row, assignment)
            if extended is not None:
                yield from walk(index + 1, extended)

    yield from walk(0, seed)


# ---------------------------------------------------------------------------
# The set-at-a-time interned join engine
# ---------------------------------------------------------------------------


class _JoinStep:
    """One compiled body atom of a :class:`JoinPlan`.

    ``probes`` are the positions whose value is known before the atom runs —
    ``(position, is_slot, key)`` with ``key`` a partial-row slot when
    ``is_slot`` else a raw constant (interned lazily per store at
    execution).  At execution the smallest bucket over the probes seeds
    the candidate row set (the store's persistent per-position bucket
    index *is* the hash-join index); the remaining probes become residual
    equality checks.  ``intra`` pairs
    ``(p, q)`` force ``row[p] == row[q]`` for variables repeated within the
    atom; ``writes`` lists the positions whose codes extend the partial
    row, in slot order.  Because every position is a probe, an intra
    duplicate or a write, each candidate row extends a given partial in at
    most one way — batches stay duplicate-free as long as the seeds were.
    """

    __slots__ = ("relation", "probes", "intra", "write_positions")

    def __init__(self, relation, probes, intra, write_positions) -> None:
        self.relation = relation
        self.probes = probes
        self.intra = intra
        self.write_positions = write_positions


class JoinPlan:
    """A join compiled once per (body atoms, bound-variable set).

    ``variables`` is the full slot order — the bound (seed) variables
    first, then each new variable in the order the greedily-ordered atoms
    first write it.  Executed rows are int rows in this slot order; decode
    through the plan's :meth:`assignment`.

    Plans are interner-*independent*: body constants are stored as raw
    values and resolved to codes lazily per interner through a one-slot
    identity-guarded memo (:meth:`resolve`).  A plan compiled once per
    program therefore serves every instance — delta copies, fixpoint
    stores, and entirely fresh interners alike; only the (cheap) constant
    resolution re-runs when the interner changes.
    """

    __slots__ = ("atoms", "variables", "bound_variables", "steps", "_resolved")

    def __init__(self, atoms, variables, bound_variables, steps) -> None:
        self.atoms = atoms
        self.variables = variables
        self.bound_variables = bound_variables
        self.steps = steps
        self._resolved = None

    def resolve(self, interner):
        """Per-interner ``(step, probes)`` pairs with constants as codes.

        Returns ``None`` when some body constant is unknown to the
        interner — that atom can match no row, so the whole join is empty.
        Memoized on interner identity; cross-epoch callers hit the memo
        because delta copies share one append-only interner.
        """
        memo = self._resolved
        if memo is not None and memo[0] is interner:
            return memo[1]
        code_of = interner.code
        resolved: list | None = []
        for step in self.steps:
            probes = []
            for position, is_slot, key in step.probes:
                if is_slot:
                    probes.append((position, True, key))
                else:
                    code = code_of(key)
                    if code is None:
                        resolved = None
                        break
                    probes.append((position, False, code))
            if resolved is None:
                break
            resolved.append((step, tuple(probes)))
        self._resolved = (interner, resolved)
        return resolved

    def assignment(self, row: IntRow, interner) -> Assignment:
        """Decode one executed row into a variable assignment."""
        value = interner.value
        return {
            variable: value(code) for variable, code in zip(self.variables, row)
        }

    def assignments(self, rows: Iterable[IntRow], interner) -> Iterator[Assignment]:
        value = interner.value
        variables = self.variables
        for row in rows:
            yield {v: value(code) for v, code in zip(variables, row)}

    def intern_seed(
        self, assignment: Mapping[Variable, Element], interner
    ) -> IntRow:
        """Intern a seed assignment into a row over ``bound_variables``."""
        intern = interner.intern
        return tuple(intern(assignment[v]) for v in self.bound_variables)


def compile_join(
    atoms: Sequence[Atom],
    store,
    bound: Iterable[Variable] = (),
) -> JoinPlan:
    """Compile ``atoms`` into a :class:`JoinPlan` over an interned store.

    ``store`` is anything speaking the row protocol (``interner``,
    ``relation_rows``, ``row_bucket``, ``column_stats``) — a frozen
    :class:`~repro.core.instance.Instance` or a mutable fixpoint store.
    ``bound`` lists the variables the caller will supply through seed rows
    (sorted by name to fix the seed slot order).  Ordering uses the same
    greedy selectivity heuristic as the tuple engine, read from the O(1)
    column statistics of the compile-time store; the resulting plan itself
    carries no interner state and is reusable on any store.
    """
    ordered = order_atoms(atoms, store, bound=bound)
    bound_variables = tuple(sorted(set(bound), key=lambda v: v.name))
    slot_of: dict[Variable, int] = {
        variable: slot for slot, variable in enumerate(bound_variables)
    }
    variables = list(bound_variables)
    steps = []
    for atom in ordered:
        probes: list[tuple[int, bool, int]] = []
        intra: list[tuple[int, int]] = []
        write_positions: list[int] = []
        first_position: dict[Variable, int] = {}
        for position, term in enumerate(atom.arguments):
            if isinstance(term, Variable):
                slot = slot_of.get(term)
                if slot is not None:
                    probes.append((position, True, slot))
                elif term in first_position:
                    intra.append((first_position[term], position))
                else:
                    first_position[term] = position
                    write_positions.append(position)
            else:
                probes.append((position, False, term))
        for position in write_positions:
            term = atom.arguments[position]
            slot_of[term] = len(variables)
            variables.append(term)
        steps.append(
            _JoinStep(
                atom.relation,
                tuple(probes),
                tuple(intra),
                tuple(write_positions),
            )
        )
    return JoinPlan(
        tuple(atoms), tuple(variables), bound_variables, tuple(steps)
    )


def _step_candidates(step: _JoinStep, probes, store, partial: IntRow):
    """The candidate rows for one partial: the smallest probe bucket, or the
    whole relation when the step has no probe."""
    best = None
    for position, is_slot, key in probes:
        rows = store.row_bucket(
            step.relation, position, partial[key] if is_slot else key
        )
        if best is None or len(rows) < len(best):
            best = rows
            if not best:
                return _EMPTY_ROWSET
    if best is None:
        return store.relation_rows(step.relation)
    return best


def _row_matches(step: _JoinStep, probes, row: IntRow, partial: IntRow) -> bool:
    for position, is_slot, key in probes:
        if row[position] != (partial[key] if is_slot else key):
            return False
    # Explicit loop, not all(...): this runs per candidate row, and a
    # generator frame per call is measurable on the join hot path.
    for left, right in step.intra:  # noqa: SIM110
        if row[left] != row[right]:
            return False
    return True


def execute_join(
    plan: JoinPlan,
    store,
    seeds: Iterable[IntRow] = ((),),
) -> list[IntRow]:
    """Run the plan set-at-a-time: one pass per body atom over the whole
    batch of partial rows.

    ``seeds`` are int rows over ``plan.bound_variables`` (deduplicated by
    the caller; the executor introduces no duplicates beyond them).
    Returns full rows over ``plan.variables``.
    """
    resolved = plan.resolve(store.interner)
    if resolved is None:
        return []
    partials: list[IntRow] = seeds if isinstance(seeds, list) else list(seeds)
    tel = _telemetry.ACTIVE
    if tel is not None:
        tel.count("join.plans_executed")
        tel.count("join.rows_in", len(partials))
    for step, probes in resolved:
        if not partials:
            break
        if tel is not None:
            # step granularity, not row granularity: a probed step does one
            # bucket probe per surviving partial; a probe-less step merges
            # the whole relation against the batch
            if probes:
                tel.count("join.bucket_probe_steps")
                tel.count("join.bucket_probes", len(partials))
            else:
                tel.count("join.merge_steps")
        out: list[IntRow] = []
        append = out.append
        writes = step.write_positions
        if writes:
            for partial in partials:
                for row in _step_candidates(step, probes, store, partial):
                    if _row_matches(step, probes, row, partial):
                        append(partial + tuple(row[p] for p in writes))
        else:
            # semi-join: the atom binds nothing new, keep each partial at
            # most once (existence), never once per matching row
            for partial in partials:
                for row in _step_candidates(step, probes, store, partial):
                    if _row_matches(step, probes, row, partial):
                        append(partial)
                        break
        partials = out
    if tel is not None:
        tel.count("join.rows_out", len(partials))
    return partials


def join_exists(plan: JoinPlan, store, seed: IntRow = ()) -> bool:
    """Depth-first early-exit existence check for one seed row.

    The batch executor is breadth-first; consumers that only need *one*
    witness (constraint firing, satisfiability screening, DRed
    rederivation) use this instead so a hit on the first branch never
    materialises the remaining batch.
    """

    resolved = plan.resolve(store.interner)
    if resolved is None:
        return False
    tel = _telemetry.ACTIVE
    if tel is not None:
        tel.count("join.exists_calls")

    def walk(index: int, partial: IntRow) -> bool:
        if index == len(resolved):
            return True
        step, probes = resolved[index]
        writes = step.write_positions
        for row in _step_candidates(step, probes, store, partial):
            if _row_matches(step, probes, row, partial):
                if writes:
                    if walk(index + 1, partial + tuple(row[p] for p in writes)):
                        return True
                else:
                    return walk(index + 1, partial)
        return False

    return walk(0, seed)
