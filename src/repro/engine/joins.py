"""Greedy selectivity-ordered join planning over indexed instances.

Grounding a datalog rule means enumerating the variable assignments that
satisfy its EDB body atoms.  The seed implementation seeded bindings from
EDB atoms in syntactic order and then ran ``itertools.product`` over
``domain ** len(free)`` — near-cartesian whenever atoms were ordered badly.
This module binds variables atom-by-atom instead:

* :func:`order_atoms` picks a greedy join order, at each step choosing the
  atom with the smallest estimated number of matching rows given the
  variables already bound (estimates come from the instance's per-relation
  and per-position index sizes);
* :func:`matching_rows` enumerates the rows compatible with a partial
  assignment through the position index of the most selective bound
  argument, instead of scanning the relation;
* :func:`join_assignments` composes the two into a depth-first join.

Assignments are deduplicated by their canonical ``(variable name, value)``
pair sequence (sorted by variable name), never by ``repr`` — distinct
constants with identical reprs stay distinct.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Mapping, Sequence

from ..core.cq import Atom, Variable
from ..core.instance import Instance

Element = Hashable
Assignment = dict[Variable, Element]


def canonical_key(assignment: Mapping[Variable, Element]) -> tuple:
    """A canonical dedup key: (name, value) pairs sorted by variable name.

    Variable names are unique within an assignment, so the sort never
    compares the (arbitrary, possibly unorderable) values, and the key is
    equal exactly for equal assignments.
    """
    return tuple(
        sorted(((v.name, value) for v, value in assignment.items()), key=lambda p: p[0])
    )


def _estimated_rows(atom: Atom, bound: set[Variable], instance: Instance) -> float:
    """Estimate how many rows of ``atom`` match once ``bound`` variables have values.

    With no bound position this is the relation's cardinality; with bound
    positions it is the smallest average index-bucket size over them
    (cardinality divided by the number of distinct values at the position).
    Constants count as bound positions.
    """
    total = len(instance.tuples(atom.relation))
    if total == 0:
        return 0.0
    best = float(total)
    for position, term in enumerate(atom.arguments):
        if isinstance(term, Variable):
            if term not in bound:
                continue
            distinct = instance.position_value_count(atom.relation, position)
            if distinct:
                best = min(best, total / distinct)
        else:
            # constants give an exact bucket size
            best = min(best, float(len(instance.tuples_with(atom.relation, position, term))))
    return best


def order_atoms(
    atoms: Sequence[Atom],
    instance: Instance,
    bound: Iterable[Variable] = (),
) -> list[Atom]:
    """Greedy join order: repeatedly take the cheapest atom given bound variables."""
    remaining = list(atoms)
    bound_now: set[Variable] = set(bound)
    ordered: list[Atom] = []
    while remaining:
        best = min(
            range(len(remaining)),
            key=lambda i: _estimated_rows(remaining[i], bound_now, instance),
        )
        atom = remaining.pop(best)
        ordered.append(atom)
        bound_now.update(atom.variables)
    return ordered


def matching_rows(
    atom: Atom, instance: Instance, assignment: Mapping[Variable, Element]
) -> Iterator[tuple]:
    """Rows of ``atom``'s relation compatible with the partial assignment.

    Uses the position index of the most selective bound argument (constant or
    already-bound variable) when one exists; callers still re-check every
    position via :func:`extend_assignment`.
    """
    best_rows = None
    for position, term in enumerate(atom.arguments):
        if isinstance(term, Variable):
            if term not in assignment:
                continue
            value = assignment[term]
        else:
            value = term
        rows = instance.tuples_with(atom.relation, position, value)
        if best_rows is None or len(rows) < len(best_rows):
            best_rows = rows
            if not best_rows:
                break
    if best_rows is None:
        best_rows = instance.tuples(atom.relation)
    return iter(best_rows)


def extend_assignment(
    atom: Atom, row: tuple, assignment: Mapping[Variable, Element]
) -> Assignment | None:
    """Extend the assignment so that ``atom`` maps onto ``row``; None on clash."""
    extended = dict(assignment)
    for term, value in zip(atom.arguments, row):
        if isinstance(term, Variable):
            existing = extended.get(term, _MISSING)
            if existing is _MISSING:
                extended[term] = value
            elif existing != value:
                return None
        elif term != value:
            return None
    return extended


_MISSING = object()


def join_assignments(
    atoms: Sequence[Atom],
    instance: Instance,
    initial: Mapping[Variable, Element] | None = None,
    ordered: Sequence[Atom] | None = None,
) -> Iterator[Assignment]:
    """All assignments of the atoms' variables satisfied by the instance.

    The atoms are joined depth-first in greedy selectivity order; every
    yielded assignment binds exactly the variables of ``atoms`` plus those of
    ``initial``.  Callers issuing many joins that differ only in the seed
    *values* (semi-naive delta rounds) may precompute the order once with
    :func:`order_atoms` and pass it as ``ordered``.
    """
    seed: Assignment = dict(initial or {})
    if ordered is None:
        ordered = order_atoms(atoms, instance, bound=seed)

    def walk(index: int, assignment: Assignment) -> Iterator[Assignment]:
        if index == len(ordered):
            yield assignment
            return
        atom = ordered[index]
        for row in matching_rows(atom, instance, assignment):
            extended = extend_assignment(atom, row, assignment)
            if extended is not None:
                yield from walk(index + 1, extended)

    yield from walk(0, seed)
