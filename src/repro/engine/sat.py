"""Incremental propositional solving for the evaluation engine.

:class:`ClauseSolver` is a small DPLL solver with two-watched-literal unit
propagation and *assumption literals*: clauses are added once, and each
:meth:`solve` call decides satisfiability under a set of temporarily forced
atoms, backtracking to the root level afterwards so the clause database,
watch lists and root-level units persist across queries.  This is what lets
certain-answer evaluation ground a program once and decide every candidate
answer tuple against the same solver state (the restart-per-candidate DPLL
it replaces re-simplified the full clause set for every tuple).

Variables are arbitrary hashable *atoms* (the engine uses ground IDB atoms
``(relation, argument_tuple)``; the FO layer uses :class:`Fact` objects and
Tseitin auxiliaries).  A clause is given as (negative atoms, positive atoms)
and is satisfied when some negative atom is false or some positive atom is
true — the shape produced by grounding disjunctive datalog rules.

:func:`tseitin_clauses` converts the ground NNF formulas of
:mod:`repro.fo.grounding` into this clause form using the one-sided
(Plaisted–Greenbaum) encoding, which is sound and complete for the
satisfiability queries the bounded counter-model engine issues.
"""

from __future__ import annotations

import heapq
from typing import Hashable, Iterable, Sequence

from ..obs import telemetry as _telemetry

Atom = Hashable


class SolverStats:
    """Always-on search statistics for one :class:`ClauseSolver`.

    Plain integer attributes bumped inside the search loop — cheap enough
    to keep unconditionally, which is what lets tests cross-validate the
    telemetry counters against the solver's own ground truth.  ``restarts``
    counts per-:meth:`ClauseSolver.solve` root restarts (this solver keeps
    no in-search restart schedule; every call restarts from the root and
    re-asserts its assumptions).
    """

    __slots__ = (
        "conflicts",
        "propagations",
        "decisions",
        "learned_clauses",
        "learned_literals",
        "restarts",
        "solve_calls",
    )

    def __init__(self) -> None:
        self.conflicts = 0
        self.propagations = 0
        self.decisions = 0
        self.learned_clauses = 0
        self.learned_literals = 0
        self.restarts = 0
        self.solve_calls = 0

    def describe(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


class ClauseSolver:
    """Conflict-driven clause learning (CDCL) with persistent state.

    Literals are encoded as ``2 * var`` (positive) and ``2 * var + 1``
    (negated).  The solver implements two-watched-literal propagation, 1UIP
    conflict analysis with non-chronological backjumping, and a decaying
    activity heuristic; decisions prefer the negative phase, which steers
    satisfying assignments towards minimal models — the natural choice when
    searching for counter-models of certain answers.

    Assumptions are handled MiniSat-style: they occupy the first decision
    levels and are re-asserted after backjumps, so learned clauses carry over
    between :meth:`solve` calls.
    """

    _ACTIVITY_DECAY = 1.0 / 0.95
    _ACTIVITY_LIMIT = 1e100

    def __init__(self) -> None:
        self._var_of: dict[Atom, int] = {}
        self._atoms: list[Atom] = []
        self._clauses: list[list[int]] = []
        self._watches: list[list[int]] = []  # literal -> clause indices
        self._assign: list[int] = []  # var -> +1 true / -1 false / 0 unassigned
        self._reason: list[int | None] = []  # var -> implying clause index
        self._level: list[int] = []  # var -> decision level of assignment
        self._activity: list[float] = []
        self._heap: list[tuple[float, int]] = []  # lazy (-activity, var) entries
        self._bump = 1.0
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._qhead = 0
        self._ok = True  # False once a root-level conflict is derived
        self._sticky: dict[Atom, bool] = {}  # persistent assumptions
        self.last_model: dict[Atom, bool] = {}
        self.stats = SolverStats()

    # -- atoms and literals ----------------------------------------------------

    def _var(self, atom: Atom) -> int:
        index = self._var_of.get(atom)
        if index is None:
            index = len(self._atoms)
            self._var_of[atom] = index
            self._atoms.append(atom)
            self._assign.append(0)
            self._reason.append(None)
            self._level.append(0)
            self._activity.append(0.0)
            heapq.heappush(self._heap, (0.0, index))
            self._watches.append([])
            self._watches.append([])
        return index

    def has_atom(self, atom: Atom) -> bool:
        """Does the atom occur in any clause added so far?"""
        return atom in self._var_of

    def _lit_value(self, lit: int) -> int:
        value = self._assign[lit >> 1]
        if value == 0:
            return 0
        return -value if lit & 1 else value

    # -- clause management -----------------------------------------------------

    def add_clause(self, negative: Iterable[Atom], positive: Iterable[Atom]) -> None:
        """Add the clause ``(∨_{a∈negative} ¬a) ∨ (∨_{a∈positive} a)``.

        Clauses may be added between :meth:`solve` calls; they are simplified
        against the root-level assignment first, because watches must sit on
        literals that are not already (permanently) false — a false watched
        literal whose falsifying assignment predates the clause would never
        be revisited by propagation.
        """
        if self._trail_lim:
            raise RuntimeError("clauses must be added at the root level")
        literals: list[int] = []
        seen: set[int] = set()
        for atom in positive:
            literals.append(self._var(atom) << 1)
        for atom in negative:
            literals.append((self._var(atom) << 1) | 1)
        deduped: list[int] = []
        for lit in literals:
            if lit ^ 1 in seen:
                return  # tautology
            if lit in seen:
                continue
            seen.add(lit)
            value = self._lit_value(lit)
            if value > 0:
                return  # satisfied at the root level: permanently redundant
            if value == 0:
                deduped.append(lit)
            # root-false literals are permanently false and dropped
        if not deduped:
            self._ok = False
            return
        if len(deduped) == 1:
            self._assign_lit(deduped[0], None)
            return
        self._attach(deduped)

    def _attach(self, clause: list[int]) -> int:
        index = len(self._clauses)
        self._clauses.append(clause)
        self._watches[clause[0]].append(index)
        self._watches[clause[1]].append(index)
        return index

    def clause_count(self) -> int:
        """How many (non-unit) clauses the database holds, learned included.

        Record this before a batch of ``solve`` calls and pass it to
        :meth:`export_clauses` afterwards to extract exactly the clauses
        learned by that batch.
        """
        return len(self._clauses)

    def export_clauses(
        self, start: int = 0, max_width: int | None = None
    ) -> list[Clause]:
        """Decode database clauses ``[start:]`` back into atom form.

        Every returned ``(negative atoms, positive atoms)`` pair is implied
        by the clauses added so far (learned clauses are consequences of the
        problem clauses alone, never of assumptions), so feeding them to
        another solver over the same problem is sound.  ``max_width`` drops
        wider clauses — the parallel evaluator ships only short summaries.
        """
        exported: list[Clause] = []
        for clause in self._clauses[start:]:
            if max_width is not None and len(clause) > max_width:
                continue
            negative = frozenset(
                self._atoms[lit >> 1] for lit in clause if lit & 1
            )
            positive = frozenset(
                self._atoms[lit >> 1] for lit in clause if not lit & 1
            )
            exported.append((negative, positive))
        return exported

    # -- assignment control ----------------------------------------------------

    def _assign_lit(self, lit: int, reason: int | None) -> None:
        var = lit >> 1
        self._assign[var] = -1 if lit & 1 else 1
        self._reason[var] = reason
        self._level[var] = len(self._trail_lim)
        self._trail.append(lit)

    def _new_level(self) -> None:
        self._trail_lim.append(len(self._trail))

    def _backtrack(self, level: int) -> None:
        while len(self._trail_lim) > level:
            mark = self._trail_lim.pop()
            while len(self._trail) > mark:
                var = self._trail.pop() >> 1
                self._assign[var] = 0
                self._reason[var] = None
                # re-enter the branching heap with the current activity
                heapq.heappush(self._heap, (-self._activity[var], var))
        self._qhead = min(self._qhead, len(self._trail))

    def _propagate(self) -> int | None:
        """Exhaust unit propagation; returns a conflicting clause index or None."""
        propagated = 0
        while self._qhead < len(self._trail):
            lit = self._trail[self._qhead]
            self._qhead += 1
            false_lit = lit ^ 1
            watchers = self._watches[false_lit]
            self._watches[false_lit] = []
            for position, index in enumerate(watchers):
                clause = self._clauses[index]
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                if self._lit_value(clause[0]) > 0:
                    self._watches[false_lit].append(index)
                    continue
                for k in range(2, len(clause)):
                    if self._lit_value(clause[k]) >= 0:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watches[clause[1]].append(index)
                        break
                else:
                    self._watches[false_lit].append(index)
                    if self._lit_value(clause[0]) < 0:
                        # conflict: restore the untraversed watchers and bail
                        self._watches[false_lit].extend(watchers[position + 1 :])
                        self._qhead = len(self._trail)
                        self.stats.propagations += propagated
                        return index
                    self._assign_lit(clause[0], index)
                    propagated += 1
        self.stats.propagations += propagated
        return None

    # -- conflict analysis -----------------------------------------------------

    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._bump
        if self._activity[var] > self._ACTIVITY_LIMIT:
            scale = 1.0 / self._ACTIVITY_LIMIT
            self._activity = [a * scale for a in self._activity]
            self._bump *= scale
            self._rebuild_heap()
        else:
            heapq.heappush(self._heap, (-self._activity[var], var))

    def _rebuild_heap(self) -> None:
        self._heap = [
            (-activity, var)
            for var, activity in enumerate(self._activity)
            if self._assign[var] == 0
        ]
        heapq.heapify(self._heap)

    def _analyze(self, conflict: int) -> tuple[list[int], int]:
        """1UIP conflict analysis: (learned clause, backjump level).

        The learned clause's first literal is the asserting literal (unit at
        the backjump level).
        """
        current = len(self._trail_lim)
        learned: list[int] = []
        seen: set[int] = set()
        counter = 0
        p: int | None = None
        index = len(self._trail) - 1
        clause = self._clauses[conflict]
        while True:
            for lit in clause:
                if p is not None and lit == p:
                    continue
                var = lit >> 1
                if var in seen or self._level[var] == 0:
                    continue
                seen.add(var)
                self._bump_var(var)
                if self._level[var] == current:
                    counter += 1
                else:
                    learned.append(lit)
            while self._trail[index] >> 1 not in seen:
                index -= 1
            p = self._trail[index]
            index -= 1
            seen.discard(p >> 1)
            counter -= 1
            if counter == 0:
                break
            clause = self._clauses[self._reason[p >> 1]]
        learned.insert(0, p ^ 1)
        if len(learned) == 1:
            return learned, 0
        # place a literal of the backjump level at the second watch position
        widest = max(range(1, len(learned)), key=lambda i: self._level[learned[i] >> 1])
        learned[1], learned[widest] = learned[widest], learned[1]
        return learned, self._level[learned[1] >> 1]

    def _pick_branch(self) -> int | None:
        """The unassigned variable of maximal activity (lowest index on ties).

        The heap holds lazy ``(-activity, var)`` entries: every variable
        creation, activity bump and unassignment pushes a fresh entry, so an
        entry is discarded when its variable is assigned or its recorded
        activity is stale (a fresher entry must then exist).
        """
        heap = self._heap
        if len(heap) > 4 * len(self._atoms) + 1024:
            self._rebuild_heap()
            heap = self._heap
        while heap:
            negated, var = heap[0]
            if self._assign[var] != 0 or -negated != self._activity[var]:
                heapq.heappop(heap)
                continue
            return var
        return None

    # -- persistent assumptions ------------------------------------------------

    def assume(self, atom: Atom, value: bool = True) -> None:
        """Register a *persistent* assumption applied to every ``solve`` call.

        Unlike a root-level unit clause, a persistent assumption can later be
        withdrawn with :meth:`retract_assumption` — this is what lets the
        serving layer guard each ground clause with an activation literal and
        retract a whole epoch of clauses without touching the clause database
        or the learned clauses (MiniSat-style assumption interface).
        """
        self._sticky[atom] = value

    def retract_assumption(self, atom: Atom) -> None:
        """Withdraw a persistent assumption; the atom becomes free again."""
        self._sticky.pop(atom, None)

    @property
    def persistent_assumptions(self) -> dict[Atom, bool]:
        return dict(self._sticky)

    # -- solving ---------------------------------------------------------------

    def solve(
        self,
        false_atoms: Iterable[Atom] = (),
        true_atoms: Iterable[Atom] = (),
    ) -> bool:
        """Satisfiability under the assumptions; solver state survives the call.

        Persistent assumptions (:meth:`assume`) are applied first, then the
        per-call atoms.  Atoms never mentioned in a clause are unconstrained,
        so assuming them true/false cannot conflict and they are skipped
        (except that mutually contradictory assumptions still answer False).
        """
        stats = self.stats
        stats.solve_calls += 1
        stats.restarts += 1  # every call restarts search from the root level
        tel = _telemetry.ACTIVE
        if tel is None:
            return self._solve(false_atoms, true_atoms)
        before = (
            stats.conflicts,
            stats.propagations,
            stats.decisions,
            stats.learned_clauses,
        )
        result = self._solve(false_atoms, true_atoms)
        tel.count("sat.solve_calls")
        tel.count("sat.restarts")
        tel.count("sat.conflicts", stats.conflicts - before[0])
        tel.count("sat.propagations", stats.propagations - before[1])
        tel.count("sat.decisions", stats.decisions - before[2])
        tel.count("sat.learned_clauses", stats.learned_clauses - before[3])
        return result

    def _solve(
        self,
        false_atoms: Iterable[Atom],
        true_atoms: Iterable[Atom],
    ) -> bool:
        self._backtrack(0)
        if not self._ok or self._propagate() is not None:
            self._ok = False
            return False
        assumed: dict[Atom, bool] = {}
        assumptions: list[int] = []
        for atom, polarity in (
            list(self._sticky.items())
            + [(a, False) for a in false_atoms]
            + [(a, True) for a in true_atoms]
        ):
            if atom in assumed:
                if assumed[atom] != polarity:
                    return False
                continue
            assumed[atom] = polarity
            if atom in self._var_of:
                var = self._var_of[atom]
                assumptions.append(var << 1 if polarity else (var << 1) | 1)
        result = self._search(assumptions)
        if result:
            self.last_model = {
                atom: self._assign[var] > 0
                for atom, var in self._var_of.items()
            }
        self._backtrack(0)
        return result

    def _search(self, assumptions: list[int]) -> bool:
        while True:
            conflict = self._propagate()
            if conflict is None:
                depth = len(self._trail_lim)
                if depth < len(assumptions):
                    # (re-)assert the next assumption as a decision
                    lit = assumptions[depth]
                    value = self._lit_value(lit)
                    if value < 0:
                        return False
                    self._new_level()
                    if value == 0:
                        self._assign_lit(lit, None)
                    continue
                var = self._pick_branch()
                if var is None:
                    return True
                self._new_level()
                self._assign_lit((var << 1) | 1, None)  # negative phase first
                self.stats.decisions += 1
                continue
            self.stats.conflicts += 1
            if not self._trail_lim:
                self._ok = False  # conflict at the root level: no model at all
                return False
            learned, backjump = self._analyze(conflict)
            self.stats.learned_clauses += 1
            self.stats.learned_literals += len(learned)
            self._backtrack(backjump)
            if len(learned) == 1:
                self._assign_lit(learned[0], None)
            else:
                self._assign_lit(learned[0], self._attach(learned))
            self._bump *= self._ACTIVITY_DECAY


# ---------------------------------------------------------------------------
# Tseitin conversion of ground NNF formulas
# ---------------------------------------------------------------------------

Clause = tuple[frozenset, frozenset]


class TseitinAux:
    """A fresh auxiliary atom standing for a subformula (identity-hashed)."""

    __slots__ = ("index",)

    def __init__(self, index: int) -> None:
        self.index = index

    def __repr__(self) -> str:
        return f"TseitinAux({self.index})"


def tseitin_encode(
    formulas: Sequence,
) -> tuple[list[Clause], list[tuple]] | None:
    """Encode ground NNF formulas (see :mod:`repro.fo.grounding`) as clauses.

    Returns ``(definitional clauses, root literals)`` — one root literal
    ``(atom, polarity)`` per non-trivially-true formula — or ``None`` when
    some formula is syntactically false.  Asserting every root literal on
    top of the definitional clauses is equisatisfiable with the conjunction
    of the inputs (one-sided encoding: formulas are in NNF and only asserted
    positively).  Callers may instead guard individual roots with activation
    atoms for incremental solving.
    """
    clauses: list[Clause] = []
    counter = [0]

    def fresh() -> TseitinAux:
        counter[0] += 1
        return TseitinAux(counter[0])

    def literal(node) -> tuple:
        """Encode a non-boolean node as a literal (atom, polarity)."""
        tag = node[0]
        if tag == "lit":
            return (node[1], node[2])
        aux = fresh()
        children = [c for c in node[1] if not isinstance(c, bool)]
        booleans = [c for c in node[1] if isinstance(c, bool)]
        if tag == "and":
            if any(c is False for c in booleans):
                clauses.append((frozenset([aux]), frozenset()))  # aux -> ⊥
                return (aux, True)
            for child in children:
                atom, polarity = literal(child)
                if polarity:
                    clauses.append((frozenset([aux]), frozenset([atom])))
                else:
                    clauses.append((frozenset([aux, atom]), frozenset()))
            return (aux, True)
        if tag == "or":
            if any(c is True for c in booleans):
                return (aux, True)  # unconstrained aux
            negative, positive = {aux}, set()
            for child in children:
                atom, polarity = literal(child)
                (positive if polarity else negative).add(atom)
            clauses.append((frozenset(negative), frozenset(positive)))
            return (aux, True)
        raise TypeError(f"unexpected ground formula node {node!r}")

    roots: list[tuple] = []
    for formula in formulas:
        if formula is True:
            continue
        if formula is False:
            return None
        roots.append(literal(formula))
    return clauses, roots


def tseitin_clauses(formulas: Sequence) -> list[Clause] | None:
    """Clauses equisatisfiable with the conjunction of the ground formulas.

    Convenience wrapper over :func:`tseitin_encode` that asserts every root
    literal; ``None`` when the conjunction is syntactically unsatisfiable.
    """
    encoded = tseitin_encode(formulas)
    if encoded is None:
        return None
    clauses, roots = encoded
    for atom, polarity in roots:
        if polarity:
            clauses.append((frozenset(), frozenset([atom])))
        else:
            clauses.append((frozenset([atom]), frozenset()))
    return clauses


def solver_for_clauses(clauses: Iterable[Clause]) -> ClauseSolver:
    """A :class:`ClauseSolver` loaded with (negative, positive) clauses."""
    solver = ClauseSolver()
    for negative, positive in clauses:
        solver.add_clause(negative, positive)
    return solver
