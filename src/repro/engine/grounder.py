"""Join-planned grounding of disjunctive datalog programs.

:func:`ground_program` grounds a program over ``adom(D)`` exactly once into
a :class:`GroundProgram`: per rule, the EDB body atoms are satisfied by a
selectivity-ordered join (:mod:`repro.engine.joins`) instead of a cartesian
enumeration, remaining variables range over the active domain, and the
resulting clauses are deduplicated and subsumption-reduced before solving.
The ground clause set is then loaded once into a persistent
:class:`~repro.engine.sat.ClauseSolver`, and every certain-answer query —
one per candidate tuple — is an assumption-literal ``solve`` against that
shared state.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Hashable, Iterable, Iterator, Sequence

from ..core.cq import Atom, Variable
from ..core.instance import Instance
from ..obs import telemetry as _telemetry
from .joins import canonical_key, compile_join, execute_join, join_assignments
from .sat import Clause, ClauseSolver, solver_for_clauses

if TYPE_CHECKING:  # imported lazily at runtime to avoid an import cycle
    from ..datalog.ddlog import DisjunctiveDatalogProgram, Rule

Element = Hashable
GroundAtom = tuple  # (RelationSymbol, argument tuple)

# Above this many clauses the quadratic-ish subsumption pass is skipped
# (plain deduplication always runs).
_SUBSUMPTION_LIMIT = 20_000


def instantiate_atom(atom: Atom, assignment: dict[Variable, Element]) -> GroundAtom:
    """Ground an atom under a variable assignment into a ``GroundAtom``."""
    arguments = tuple(
        assignment[a] if isinstance(a, Variable) else a for a in atom.arguments
    )
    return (atom.relation, arguments)


def _split_body(
    rule: Rule, idb_names: frozenset[str], adom_name: str
) -> tuple[list[Atom], list[Atom], list[Atom]]:
    """Partition a rule body into (EDB atoms, adom atoms, IDB atoms)."""
    edb_atoms: list[Atom] = []
    adom_atoms: list[Atom] = []
    idb_atoms: list[Atom] = []
    for atom in rule.body:
        name = atom.relation.name
        if name == adom_name:
            adom_atoms.append(atom)
        elif name in idb_names:
            idb_atoms.append(atom)
        else:
            edb_atoms.append(atom)
    return edb_atoms, adom_atoms, idb_atoms


class GroundAux:
    """A fresh auxiliary atom factoring an independent free-variable block.

    When a rule's free variables split into blocks that share no literal,
    the conjunction of its ground clauses factors as
    ``bound-part ∨ (∧_σ1 C1σ1) ∨ ... ∨ (∧_σm Cmσm)`` — one auxiliary atom
    per block replaces the ``|domain|^(k1+...+km)`` cartesian product by
    ``|domain|^k1 + ... + |domain|^km`` definitional clauses (one-sided
    encoding, sound for the satisfiability queries the engine issues).
    """

    __slots__ = ("index",)

    def __init__(self, index: int) -> None:
        self.index = index

    def __repr__(self) -> str:
        return f"GroundAux({self.index})"


def _instantiate_literals(
    literals: Sequence[tuple[Atom, bool]], assignment: dict[Variable, Element]
) -> tuple[frozenset, frozenset]:
    negative = frozenset(
        instantiate_atom(atom, assignment) for atom, pos in literals if not pos
    )
    positive = frozenset(
        instantiate_atom(atom, assignment) for atom, pos in literals if pos
    )
    return negative, positive


def _free_variable_blocks(
    free: Sequence[Variable], literals: Sequence[tuple[Atom, bool]]
) -> tuple[list[tuple[list[Variable], list[tuple[Atom, bool]]]], list]:
    """Partition free variables and literals into co-occurrence blocks.

    Two free variables belong to the same block when some literal mentions
    both (transitively); a literal belongs to the block of its free
    variables.  Returns ``(blocks, bound_literals)`` where bound literals
    mention no free variable at all.  Free variables mentioned by no literal
    (they occur only in variable ``adom`` atoms) span no block: enumerating
    them would only multiply duplicate clauses.
    """
    free_set = set(free)
    parent: dict[Variable, Variable] = {v: v for v in free}

    def find(v: Variable) -> Variable:
        while parent[v] != v:
            parent[v] = parent[parent[v]]
            v = parent[v]
        return v

    bound_literals: list[tuple[Atom, bool]] = []
    placed: list[tuple[tuple[Atom, bool], list[Variable]]] = []
    for literal in literals:
        atom_free = [v for v in literal[0].variables if v in free_set]
        if not atom_free:
            bound_literals.append(literal)
            continue
        placed.append((literal, atom_free))
        for other in atom_free[1:]:
            root_a, root_b = find(atom_free[0]), find(other)
            if root_a != root_b:
                parent[root_a] = root_b
    blocks: dict[Variable, tuple[list[Variable], list[tuple[Atom, bool]]]] = {}
    for variable in free:
        root = find(variable)
        if root not in blocks:
            blocks[root] = ([], [])
        blocks[root][0].append(variable)
    for literal, atom_free in placed:
        blocks[find(atom_free[0])][1].append(literal)
    ordered = sorted(
        (block for block in blocks.values() if block[1]),
        key=lambda block: str(block[0][0]),
    )
    return ordered, bound_literals


def _edb_partials(
    edb_atoms: list[Atom],
    instance: Instance,
    engine: str,
    plan_cache: dict | None = None,
    cache_key=None,
) -> Iterator[dict[Variable, Element]]:
    """The deduplicated EDB body matches of a rule.

    The default ``columnar`` engine compiles the atoms once and executes
    set-at-a-time over interned rows; the executor's batches carry each
    variable assignment exactly once (its semi-join steps collapse the
    multiple derivation paths the tuple engine has to dedup by canonical
    key), and rows decode to constants only here, at the clause boundary.
    Plans are interner-independent, so ``plan_cache`` (stored on the
    program object) carries them across groundings of unrelated instances.
    """
    if engine == "columnar":
        plan = None if plan_cache is None else plan_cache.get(cache_key)
        if plan is None:
            plan = compile_join(edb_atoms, instance)
            if plan_cache is not None:
                plan_cache[cache_key] = plan
        yield from plan.assignments(
            execute_join(plan, instance), instance.interner
        )
        return
    seen_partials: set[tuple] = set()
    for partial in join_assignments(edb_atoms, instance):
        # Canonical (variable name, value) dedup key — never repr-based, so
        # distinct constants with identical reprs cannot collide.
        key = canonical_key(partial)
        if key in seen_partials:
            continue
        seen_partials.add(key)
        yield partial


def _rule_clauses(
    rule: Rule,
    instance: Instance,
    idb_names: frozenset[str],
    adom_name: str,
    domain: Sequence[Element],
    aux_counter: Iterator[int],
    engine: str = "columnar",
    plan_cache: dict | None = None,
    cache_key=None,
) -> Iterator[Clause]:
    edb_atoms, adom_atoms, idb_atoms = _split_body(rule, idb_names, adom_name)
    # Constant adom atoms are static guards; variable ones are subsumed by the
    # free-variable enumeration over the domain below.
    domain_set = instance.active_domain
    for atom in adom_atoms:
        term = atom.arguments[0]
        if not isinstance(term, Variable) and term not in domain_set:
            return
    free = sorted(
        {v for v in rule.variables if not any(v in a.variables for a in edb_atoms)},
        key=str,
    )
    if free and not domain:
        return
    literals = [(a, False) for a in idb_atoms] + [(a, True) for a in rule.head]
    blocks, bound_literals = _free_variable_blocks(free, literals)
    # Per-block assignment tuples, computed once per rule instead of per join
    # result (the former inner ``domain ** len(free)`` cartesian product).
    block_tuples = [
        list(itertools.product(domain, repeat=len(variables)))
        for variables, _ in blocks
    ]
    for partial in _edb_partials(
        edb_atoms, instance, engine, plan_cache, cache_key
    ):
        bound_negative, bound_positive = _instantiate_literals(
            bound_literals, dict(partial)
        )
        if bound_negative & bound_positive:
            continue  # every clause of this join result is tautological
        if not blocks:
            yield (bound_negative, bound_positive)
            continue
        if len(blocks) == 1:
            variables, block_literals = blocks[0]
            for values in block_tuples[0]:
                assignment = dict(partial)
                assignment.update(zip(variables, values))
                negative, positive = _instantiate_literals(
                    block_literals, assignment
                )
                yield (bound_negative | negative, bound_positive | positive)
            continue
        # Independent blocks: factor the cartesian product through one
        # auxiliary atom per block (see :class:`GroundAux`).
        aux_atoms = [GroundAux(next(aux_counter)) for _ in blocks]
        for (variables, block_literals), tuples, aux in zip(
            blocks, block_tuples, aux_atoms
        ):
            for values in tuples:
                assignment = dict(partial)
                assignment.update(zip(variables, values))
                negative, positive = _instantiate_literals(
                    block_literals, assignment
                )
                if negative & positive:
                    continue  # valid conjunct: drop from the block's AND
                yield (negative | {aux}, positive)
        yield (bound_negative, bound_positive | frozenset(aux_atoms))


def _dedupe_and_subsume(clauses: Iterable[Clause]) -> list[Clause]:
    """Drop duplicate, tautological and subsumed clauses.

    A clause ``C`` subsumes ``C'`` when its literals are a subset of ``C'``'s
    (in which case ``C'`` is redundant).  Every signed ground literal is
    interned to a dense int on the way in, so deduplication hashes int
    frozensets and the subset tests behind subsumption compare int sets —
    ground atoms (relation + constant tuple) are hashed once per distinct
    literal, not once per clause they appear in.  Clauses are processed
    smallest first, and candidate subsumers are located through
    per-literal occurrence lists, so the pass is near-linear on typical
    ground programs; beyond ``_SUBSUMPTION_LIMIT`` clauses only exact
    deduplication runs.
    """
    tel = _telemetry.ACTIVE
    literal_codes: dict[tuple, int] = {}

    def code_of(literal: tuple) -> int:
        code = literal_codes.get(literal)
        if code is None:
            code = len(literal_codes)
            literal_codes[literal] = code
        return code

    total = 0
    unique: list[tuple[Clause, frozenset[int]]] = []
    seen: set[frozenset[int]] = set()
    for clause in clauses:
        total += 1
        negative, positive = clause
        if negative & positive:
            continue  # tautology: some atom both required true and made true
        interned = frozenset(
            itertools.chain(
                (code_of((atom, False)) for atom in negative),
                (code_of((atom, True)) for atom in positive),
            )
        )
        if interned not in seen:
            seen.add(interned)
            unique.append((clause, interned))
    if len(unique) > _SUBSUMPTION_LIMIT:
        if tel is not None:
            tel.count("grounder.clauses_in", total)
            tel.count("grounder.dedup_drops", total - len(unique))
            tel.count("grounder.subsumption_passes_skipped")
        return [clause for clause, _ in unique]
    unique.sort(key=lambda pair: len(pair[1]))
    kept: list[Clause] = []
    kept_codes: list[frozenset[int]] = []
    occurrences: dict[int, list[int]] = {}
    for clause, interned in unique:
        subsumed = False
        for literal in interned:
            for index in occurrences.get(literal, ()):
                if kept_codes[index] <= interned:
                    subsumed = True
                    break
            if subsumed:
                break
        if subsumed:
            continue
        index = len(kept)
        kept.append(clause)
        kept_codes.append(interned)
        for literal in interned:
            occurrences.setdefault(literal, []).append(index)
    if tel is not None:
        tel.count("grounder.clauses_in", total)
        tel.count("grounder.dedup_drops", total - len(unique))
        tel.count("grounder.subsumption_hits", len(unique) - len(kept))
    return kept


class GroundProgram:
    """A program grounded once over an instance, with a persistent solver."""

    def __init__(
        self,
        program: DisjunctiveDatalogProgram,
        instance: Instance,
        clauses: list[Clause],
    ) -> None:
        self.program = program
        self.instance = instance
        self.clauses = clauses
        self._solver: ClauseSolver | None = None

    @property
    def solver(self) -> ClauseSolver:
        if self._solver is None:
            self._solver = solver_for_clauses(self.clauses)
        return self._solver

    # -- queries ---------------------------------------------------------------

    def _goal_atoms(self, goal_tuples: Iterable[tuple]) -> list[GroundAtom]:
        goal = self.program.goal_relation
        return [(goal, tuple(args)) for args in goal_tuples]

    def has_model_avoiding(self, goal_tuples: Iterable[tuple]) -> bool:
        """Is there a model of the program extending the instance in which
        none of the given goal tuples holds?"""
        return self.solver.solve(false_atoms=self._goal_atoms(goal_tuples))

    def holds(self, answer: Sequence = ()) -> bool:
        return not self.has_model_avoiding([tuple(answer)])

    def certain_answers(self) -> frozenset[tuple]:
        """All certain answers, deciding each candidate incrementally.

        The first (assumption-free) model is reused to screen candidates: a
        goal atom already false in it has a counter-model and needs no second
        solver call.  With the solver's false-first phase this dismisses most
        non-answers with a single search.
        """
        domain = sorted(self.instance.active_domain, key=repr)
        arity = self.program.arity
        candidates = itertools.product(domain, repeat=arity)
        solver = self.solver
        if not solver.solve():
            # No model at all: every tuple is (vacuously) certain.
            return frozenset(candidates)
        model = solver.last_model
        goal = self.program.goal_relation
        answers: set[tuple] = set()
        for candidate in candidates:
            atom = (goal, candidate)
            if not model.get(atom, False):
                continue
            if not solver.solve(false_atoms=[atom]):
                answers.add(candidate)
        return frozenset(answers)


def ground_program(
    program: DisjunctiveDatalogProgram,
    instance: Instance,
    engine: str = "columnar",
) -> GroundProgram:
    """Ground the program over ``adom(D)`` (once) into a :class:`GroundProgram`.

    ``engine`` selects the EDB join path: ``"columnar"`` (default) runs the
    set-at-a-time interned executor, ``"tuple"`` the pre-columnar
    tuple-at-a-time join — kept as the cross-validation reference and
    benchmark baseline.
    """
    if engine not in ("columnar", "tuple"):
        raise ValueError(f"unknown grounding engine: {engine!r}")
    from ..datalog.ddlog import ADOM, GOAL

    domain = sorted(instance.active_domain, key=repr)
    idb_names = frozenset(
        {sym.name for sym in program.idb_relations} | {GOAL}
    ) - {ADOM}
    # EDB join plans are interner-independent; cache them on the program
    # object (keyed by rule index) so repeated groundings — the per-epoch
    # and cross-validation patterns — compile each rule's plan once ever.
    plan_cache = getattr(program, "_ground_plan_cache", None)
    if plan_cache is None:
        plan_cache = {}
        try:
            program._ground_plan_cache = plan_cache
        except AttributeError:  # slotted program types: grounding still works
            plan_cache = None
    with _telemetry.maybe_span(
        "grounder.ground_program",
        rules=len(program.rules),
        domain_size=len(domain),
        engine=engine,
    ) as span:
        clauses: list[Clause] = []
        aux_counter = itertools.count()
        for index, rule in enumerate(program.rules):
            clauses.extend(
                _rule_clauses(
                    rule,
                    instance,
                    idb_names,
                    ADOM,
                    domain,
                    aux_counter,
                    engine,
                    plan_cache,
                    index,
                )
            )
        kept = _dedupe_and_subsume(clauses)
        tel = _telemetry.ACTIVE
        if tel is not None:
            tel.count("grounder.clauses_emitted", len(clauses))
            tel.count("grounder.clauses_kept", len(kept))
            span.set(clauses_emitted=len(clauses), clauses_kept=len(kept))
        return GroundProgram(program, instance, kept)
