"""Parallel certain-answer evaluation over a persistent worker pool.

Theorem 3.3 reduces OMQ answering to certain-answer evaluation of one
disjunctive datalog program, and the resulting candidate-tuple decisions are
*independent*: each candidate ``a`` is decided by one satisfiability query
``solve(false_atoms=[goal(a)])`` against the same ground program.  This
module exploits that embarrassingly parallel structure:

* :class:`ReplicaPool` is a persistent ``multiprocessing`` pool whose
  workers each hold a *replica* of an arbitrary payload (here: the ground
  clause set / a bounded-model engine).  The payload is shipped once, at
  pool start; tasks then reference it through a per-process global.  With
  the ``fork`` start method the replica is inherited copy-on-write, so even
  large ground programs cost no per-task serialization.  When only one
  worker is requested — or process pools are unavailable in the sandbox —
  the pool degrades to an in-process serial executor running the *same*
  task code, so every parallel path has a deterministic serial twin.
* :class:`ParallelEvaluator` partitions the candidate tuples of a
  :class:`~repro.engine.grounder.GroundProgram` into chunks and dispatches
  them across the pool; each worker builds its CDCL solver replica once and
  decides every chunk against that warm state.  Workers return compact
  *learned-clause summaries* (short learned clauses over plain ground
  atoms) along with their verdicts, and later chunks carry the accumulated
  summaries back out, so conflict knowledge discovered by one worker prunes
  the search of the others.

Identity-hashed auxiliary atoms (:class:`~repro.engine.grounder.GroundAux`,
:class:`~repro.engine.sat.TseitinAux`) survive the one-shot replica pickle
— pickling preserves object identity *within* one object graph — but would
come back as fresh atoms if shipped between workers, so learned-clause
summaries are restricted to clauses over value-hashed atoms.
"""

from __future__ import annotations

import itertools
import os
from typing import Callable, Iterable, Sequence

from .grounder import GroundAux, GroundProgram
from .sat import Clause, ClauseSolver, TseitinAux

__all__ = [
    "ParallelEvaluator",
    "ReplicaPool",
    "parallel_certain_answers",
    "resolve_workers",
]


def resolve_workers(workers: int | None) -> int:
    """Normalize a worker-count request (``None`` means one per CPU)."""
    if workers is None:
        return os.cpu_count() or 1
    return max(1, int(workers))


# ---------------------------------------------------------------------------
# The replica pool
# ---------------------------------------------------------------------------

# Per-worker-process state: the replica payload plus a cache for state the
# task derives from it once (e.g. the solver built from the clause set).
_CONTEXT: "_WorkerContext | None" = None


class _WorkerContext:
    __slots__ = ("payload", "cache")

    def __init__(self, payload) -> None:
        self.payload = payload
        self.cache: dict = {}


def _init_replica(payload) -> None:
    global _CONTEXT
    _CONTEXT = _WorkerContext(payload)


def _run_task(task: Callable, chunk, shared):
    return task(_CONTEXT, chunk, shared)


class ReplicaPool:
    """A persistent worker pool whose workers each replicate one payload.

    ``task(context, chunk, shared) -> (result, feedback)`` functions must be
    module-level (they are shipped by reference).  ``run`` dispatches chunks
    across the pool; when ``feedback=True`` the feedback values returned by
    completed chunks are accumulated and passed as ``shared`` to chunks
    dispatched afterwards — the channel the evaluator uses for
    learned-clause summaries.
    """

    def __init__(self, payload, workers: int | None = None) -> None:
        self.workers = resolve_workers(workers)
        self._payload = payload
        self._pool = None
        self._serial_context: _WorkerContext | None = None
        if self.workers > 1:
            try:
                import multiprocessing

                # Fork-only: the one-shot payload replication relies on
                # inheritance (no re-pickling, no module re-import), and
                # spawn would crash on unpicklable payloads or unguarded
                # scripts instead of degrading.  Non-fork hosts get the
                # serial twin below.
                if "fork" in multiprocessing.get_all_start_methods():
                    self._pool = multiprocessing.get_context("fork").Pool(
                        processes=self.workers,
                        initializer=_init_replica,
                        initargs=(payload,),
                    )
            except (ImportError, OSError):  # pragma: no cover - sandboxed hosts
                self._pool = None
        if self._pool is None:
            self.workers = 1

    @property
    def is_parallel(self) -> bool:
        return self._pool is not None

    def _context(self) -> _WorkerContext:
        if self._serial_context is None:
            self._serial_context = _WorkerContext(self._payload)
        return self._serial_context

    def run(
        self,
        task: Callable,
        chunks: Sequence,
        feedback: bool = False,
        max_shared: int = 512,
    ) -> list:
        """Run ``task`` over every chunk; results come back in chunk order."""
        results: list = [None] * len(chunks)
        shared: list = []
        shared_keys: set = set()

        def absorb(values) -> None:
            if not feedback or values is None:
                return
            for value in values:
                if value not in shared_keys and len(shared) < max_shared:
                    shared_keys.add(value)
                    shared.append(value)

        if self._pool is None:
            context = self._context()
            for index, chunk in enumerate(chunks):
                result, fed = task(context, chunk, tuple(shared))
                results[index] = result
                absorb(fed)
            return results

        pending = list(enumerate(chunks))
        pending.reverse()  # pop() dispatches in chunk order
        inflight: dict[int, object] = {}
        while pending or inflight:
            while pending and len(inflight) < self.workers:
                index, chunk = pending.pop()
                inflight[index] = self._pool.apply_async(
                    _run_task, (task, chunk, tuple(shared))
                )
            done = [index for index, job in inflight.items() if job.ready()]
            if not done:
                next(iter(inflight.values())).wait(0.005)
                continue
            for index in done:
                result, fed = inflight.pop(index).get()
                results[index] = result
                absorb(fed)
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ReplicaPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Parallel candidate-tuple decision for ground programs
# ---------------------------------------------------------------------------


def _shippable(clause: Clause) -> bool:
    """May this clause cross a process boundary on its own?

    Identity-hashed auxiliary atoms deserialize into *fresh* atoms outside
    their home replica, so only clauses over value-hashed ground atoms are
    shared between workers.
    """
    negative, positive = clause
    return not any(
        isinstance(atom, (GroundAux, TseitinAux))
        for atom in itertools.chain(negative, positive)
    )

# Learned clauses wider than this are kept private to their worker: long
# clauses prune little and cost proportionally more to ship and re-add.
_SHARED_CLAUSE_WIDTH = 3


def _replica_solver(context: _WorkerContext) -> ClauseSolver:
    solver = context.cache.get("solver")
    if solver is None:
        clauses, _goal, _adom = context.payload
        solver = ClauseSolver()
        for negative, positive in clauses:
            solver.add_clause(negative, positive)
        context.cache["solver"] = solver
        context.cache["seen_shared"] = set()
    return solver


def _decide_chunk(
    context: _WorkerContext, chunk: Sequence[tuple], shared: Sequence[Clause]
):
    """Decide one chunk of candidate tuples against the replica solver.

    Mirrors :meth:`GroundProgram.certain_answers`: one assumption-free model
    screens candidates whose goal atom it already refutes; the rest cost one
    assumption query each.  Returns the per-candidate verdicts plus the
    short learned clauses this chunk's searches produced.
    """
    solver = _replica_solver(context)
    _clauses, goal, adom = context.payload
    seen_shared: set = context.cache["seen_shared"]
    for clause in shared:
        if clause not in seen_shared:
            seen_shared.add(clause)
            solver.add_clause(*clause)
    export_base = solver.clause_count()
    if not solver.solve():
        # No model extends the data at all: every tuple over the active
        # domain is vacuously certain (tuples outside it never are —
        # mirrors the session layer's decide_batch).
        return [
            all(value in adom for value in candidate) for candidate in chunk
        ], ()
    model = solver.last_model
    verdicts: list[bool] = []
    for candidate in chunk:
        atom = (goal, candidate)
        if not model.get(atom, False):
            verdicts.append(False)  # the screening model is a counter-model
            continue
        verdicts.append(not solver.solve(false_atoms=[atom]))
    learned = [
        clause
        for clause in solver.export_clauses(
            export_base, max_width=_SHARED_CLAUSE_WIDTH
        )
        if _shippable(clause)
    ]
    seen_shared.update(learned)
    return verdicts, learned


class ParallelEvaluator:
    """Chunked parallel candidate decision against a ground program.

    Workers replicate the ground clause set once (building their CDCL state
    lazily, on their first chunk) and stay warm across :meth:`decide`
    calls; learned-clause summaries flow back through the dispatch loop
    when ``share_learned`` is set.  Answers are identical to
    :meth:`GroundProgram.certain_answers` for every worker count and chunk
    size — the randomized cross-validation suite pins this down.
    """

    def __init__(
        self,
        ground: GroundProgram,
        workers: int | None = None,
        chunk_size: int | None = None,
        share_learned: bool = True,
    ) -> None:
        self.ground = ground
        self.chunk_size = chunk_size
        self.share_learned = share_learned
        self.pool = ReplicaPool(
            (
                ground.clauses,
                ground.program.goal_relation,
                ground.instance.active_domain,
            ),
            workers,
        )

    def _chunks(self, candidates: Sequence[tuple]) -> list[Sequence[tuple]]:
        size = self.chunk_size
        if size is None:
            # ~4 chunks per worker balances load against dispatch overhead
            size = max(1, -(-len(candidates) // (4 * self.pool.workers)))
        return [
            candidates[start : start + size]
            for start in range(0, len(candidates), size)
        ]

    def decide(self, candidates: Iterable[Sequence]) -> dict[tuple, bool]:
        """Per-candidate certainty verdicts, computed chunk-parallel."""
        batch = [tuple(candidate) for candidate in candidates]
        if not batch:
            return {}
        verdict_chunks = self.pool.run(
            _decide_chunk, self._chunks(batch), feedback=self.share_learned
        )
        decided: dict[tuple, bool] = {}
        position = 0
        for chunk in verdict_chunks:
            for verdict in chunk:
                decided[batch[position]] = verdict
                position += 1
        return decided

    def certain_answers(self) -> frozenset[tuple]:
        """All certain answers of the ground program (= the serial result)."""
        domain = sorted(self.ground.instance.active_domain, key=repr)
        candidates = list(
            itertools.product(domain, repeat=self.ground.program.arity)
        )
        decided = self.decide(candidates)
        return frozenset(c for c, certain in decided.items() if certain)

    def close(self) -> None:
        self.pool.close()

    def __enter__(self) -> "ParallelEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def parallel_certain_answers(
    ground: GroundProgram,
    workers: int | None = None,
    chunk_size: int | None = None,
) -> frozenset[tuple]:
    """One-shot convenience wrapper: evaluate, then release the pool."""
    with ParallelEvaluator(ground, workers=workers, chunk_size=chunk_size) as ev:
        return ev.certain_answers()
