"""Dispatcher for certain-answer computation over ontology-mediated queries.

The ``auto`` engine picks the strongest applicable complete procedure:

1. ``atomic`` — type-assignment search for AQ / BAQ (ALC, H, U; I, trans via
   the rewritings of Theorems 3.6 and 3.11, applied automatically);
2. ``forest`` — the forest counter-model engine for UCQs (ALC, H; I and trans
   via the same rewritings);
3. ``bounded`` — the bounded counter-model reference engine (used for
   functional roles, or on request as an independent cross-check).

The ``planned`` engine instead compiles the OMQ once into MDDlog (Theorem
3.3) and routes the compiled program through the tiered planner
(:mod:`repro.planner`) — UCQ rewriting, datalog fixpoint, or ground+CDCL,
whichever is cheapest and sound; this is the one-shot twin of the serving
sessions' routing.  When the OMQ has no complete MDDlog translation
(functional / transitive / universal roles), ``planned`` falls back to the
``auto`` selection.

All three procedures bottom out in the shared evaluation engine: the atomic
and forest engines reduce to the indexed homomorphism search of
:mod:`repro.core.homomorphism`, and the bounded engine grounds into the
incremental CDCL solver of :mod:`repro.engine.sat` (one persistent solver
per candidate domain, one assumption query per candidate answer).
"""

from __future__ import annotations

from typing import Sequence

from ..core.instance import Instance
from ..dl.rewritings import (
    eliminate_inverse_roles,
    eliminate_transitive_roles,
)
from .atomic import AtomicEngine
from .bounded import BoundedModelEngine
from .forest import ForestEngine
from .query import OntologyMediatedQuery

ENGINES = ("auto", "atomic", "forest", "bounded", "planned")


def _normalise(omq: OntologyMediatedQuery) -> OntologyMediatedQuery:
    """Compile away transitive and inverse roles when present (Thms 3.6 / 3.11)."""
    ontology = omq.ontology
    query = omq.query
    if ontology.uses_functional_roles():
        return omq
    if ontology.uses_transitive_roles():
        if omq.is_atomic() or omq.is_boolean_atomic():
            ontology = eliminate_transitive_roles(ontology)
        else:
            return omq  # (S, UCQ) is strictly more expressive; keep as-is
    if ontology.uses_inverse_roles():
        ontology, rewritten = eliminate_inverse_roles(ontology, omq.ucq())
        if not (omq.is_atomic() or omq.is_boolean_atomic()):
            query = rewritten
    if ontology is omq.ontology and query is omq.query:
        return omq
    return OntologyMediatedQuery(
        ontology=ontology,
        query=query,
        data_schema=omq.data_schema,
        schema_free=omq.schema_free,
    )


def _select_engine(omq: OntologyMediatedQuery, engine: str):
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    if engine == "bounded":
        return BoundedModelEngine(omq)
    if engine == "atomic":
        return AtomicEngine(_normalise(omq))
    if engine == "forest":
        return ForestEngine(_normalise(omq))
    if engine == "planned":
        from ..planner import PlannedMddlogEngine

        try:
            program = compile_to_mddlog(omq)
        except ValueError:
            return _select_engine(omq, "auto")
        return PlannedMddlogEngine(program)
    # auto
    normalised = _normalise(omq)
    ontology = normalised.ontology
    if ontology.uses_functional_roles():
        return BoundedModelEngine(normalised)
    if normalised.is_atomic() or normalised.is_boolean_atomic():
        return AtomicEngine(normalised)
    if ontology.uses_transitive_roles() or ontology.uses_universal_role():
        return BoundedModelEngine(normalised)
    return ForestEngine(normalised)


def compile_to_mddlog(omq: OntologyMediatedQuery, check: str = "off"):
    """Compile the OMQ once into an equivalent MDDlog program (Theorem 3.3).

    This is the ahead-of-time path of the serving layer
    (:mod:`repro.service`): inverse and transitive roles are compiled away
    where the rewritings of Theorems 3.6 / 3.11 apply, then the normalised
    (ALC(H), UCQ) query is translated to monadic disjunctive datalog, which
    the session grounds incrementally under streaming updates.  Raises
    ``ValueError`` for ontology features with no complete MDDlog
    translation (functional roles; transitive or universal roles beyond the
    atomic-query rewritings).

    ``check`` runs the static analyzer (:mod:`repro.analysis`) over the
    compiled program: ``"warn"`` reports findings as Python warnings,
    ``"strict"`` raises :class:`repro.analysis.ProgramAnalysisError` on
    error-severity diagnostics, ``"off"`` (the default — the translation
    is trusted) skips it.
    """
    from ..translations.alc_ucq_mddlog import alc_ucq_to_mddlog

    normalised = _normalise(omq)
    ontology = normalised.ontology
    if ontology.uses_functional_roles():
        raise ValueError(
            "functional roles have no complete MDDlog translation "
            "(certain answering for ALCF is undecidable, Theorem 5.8)"
        )
    if ontology.uses_transitive_roles() or ontology.uses_universal_role():
        raise ValueError(
            "transitive / universal roles are not supported by the "
            "Theorem 3.3 translation for non-atomic queries"
        )
    program = alc_ucq_to_mddlog(normalised)
    # Record the (normalised) source OMQ on the compiled program: the
    # planner's semantic stage (repro.planner.semantic) uses it to build
    # the Theorem 4.6 CSP templates directly instead of bridging the
    # exponentially larger compiled program back through a type system.
    program.source_omq = normalised
    if check != "off":
        from ..analysis import vet_program

        vet_program(program, check, label=f"compiled({normalised.query})")
    return program


def certain_answers(
    omq: OntologyMediatedQuery, instance: Instance, engine: str = "auto"
) -> frozenset[tuple]:
    """The certain answers ``cert_{q,O}(D)`` of the OMQ on the instance."""
    omq.check_instance_schema(instance)
    return _select_engine(omq, engine).certain_answers(instance)


def is_certain_answer(
    omq: OntologyMediatedQuery,
    instance: Instance,
    answer: Sequence = (),
    engine: str = "auto",
) -> bool:
    """Does the tuple belong to the certain answers?"""
    omq.check_instance_schema(instance)
    return _select_engine(omq, engine).is_certain(instance, tuple(answer))
