"""Complete certain-answer engine for the ALC(H) family, UCQ / AQ / BAQ.

The engine is the executable form of the forest-model argument in the proof of
Theorem 3.3.  A counter-model for a candidate answer is a *forest extension*
of the data: every data element gets a type (truth assignment over the
ontology closure) and an attached tree-shaped model realising that type.  For
query matching, attached trees are abstracted by the set of *tree
requirements* (rooted / Boolean tree-shaped subqueries) they satisfy; the
family of achievable requirement sets per type is computed by a greatest
fixpoint with antichain representation.

Supported ontologies: ALC and ALCH (role hierarchies).  Inverse roles and
transitive roles must be compiled away first (:mod:`repro.dl.rewritings`);
the universal role and functional roles are not supported here — atomic
queries with the universal role are served by :mod:`repro.omq.atomic`, and
everything else by the bounded search of :mod:`repro.omq.bounded`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Hashable, Iterator, Sequence

from ..core.cq import ConjunctiveQuery, UnionOfConjunctiveQueries, Variable
from ..core.instance import Instance
from ..dl.concepts import ConceptName, Exists, Role
from ..dl.ontology import Ontology
from ..dl.reasoner import TypeSystem, UnsupportedOntologyError
from .query import OntologyMediatedQuery

Element = Hashable


# ---------------------------------------------------------------------------
# Tree requirements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RootedTree:
    """A canonical rooted tree-shaped query fragment.

    ``labels`` are the unary relation names holding at the root; ``children``
    is a frozenset of edges, each an edge-role-set (all roles that the single
    connecting edge must carry) together with the child subtree.
    """

    labels: frozenset[str]
    children: frozenset[tuple[frozenset[str], "RootedTree"]]

    def subtrees(self) -> Iterator["RootedTree"]:
        yield self
        for _roles, child in self.children:
            yield from child.subtrees()

    def depth(self) -> int:
        if not self.children:
            return 0
        return 1 + max(child.depth() for _roles, child in self.children)


@dataclass(frozen=True)
class BelowRequirement:
    """Some tree child reachable via an edge carrying all ``roles`` satisfies ``tree``."""

    roles: frozenset[str]
    tree: RootedTree


@dataclass(frozen=True)
class AnywhereRequirement:
    """The tree ``tree`` matches at this node or anywhere strictly below it."""

    tree: RootedTree


Requirement = "BelowRequirement | AnywhereRequirement"


# ---------------------------------------------------------------------------
# Query split analysis: cores, attachments, and tree pieces
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class QuerySplit:
    """One way a disjunct can map into a forest model.

    ``core_variables`` map to data elements; the remaining variables map
    strictly inside attached trees.  ``core_unary`` / ``core_binary`` are the
    atoms to check over the data part; ``attached`` maps each core variable to
    the below-requirements its attached pieces impose; ``floating`` lists
    Boolean pieces that must match inside some attached tree.
    """

    disjunct: ConjunctiveQuery
    core_variables: frozenset[Variable]
    core_unary: tuple[tuple[str, Variable], ...]
    core_binary: tuple[tuple[str, Variable, Variable], ...]
    attached: tuple[tuple[Variable, BelowRequirement], ...]
    floating: tuple[AnywhereRequirement, ...]


class _PieceBuilder:
    """Builds canonical tree pieces for the non-core part of a disjunct."""

    def __init__(self, disjunct: ConjunctiveQuery, core: frozenset[Variable]):
        self.disjunct = disjunct
        self.core = core
        self.valid = True

    def build(self) -> tuple[list[tuple[Variable, BelowRequirement]], list[AnywhereRequirement]] | None:
        non_core = {
            v
            for atom in self.disjunct.atoms
            for v in atom.variables
            if v not in self.core
        }
        if not non_core:
            return [], []
        # Any binary atom from a non-core variable into a core variable cannot
        # be satisfied in a forest model (trees have no edges back to the data).
        for atom in self.disjunct.atoms:
            if atom.relation.arity == 2:
                source, target = atom.arguments
                if (
                    isinstance(source, Variable)
                    and source in non_core
                    and (not isinstance(target, Variable) or target in self.core)
                ):
                    return None
                if not isinstance(source, Variable) and isinstance(target, Variable) and target in non_core:
                    return None
        components = self._components(non_core)
        attached: list[tuple[Variable, BelowRequirement]] = []
        floating: list[AnywhereRequirement] = []
        for component in components:
            result = self._build_component(component)
            if result is None:
                return None
            anchor, requirements, anywhere = result
            if anchor is None:
                floating.extend(anywhere)
            else:
                attached.extend((anchor, req) for req in requirements)
        return attached, floating

    def _components(self, non_core: set[Variable]) -> list[set[Variable]]:
        parent = {v: v for v in non_core}

        def find(x: Variable) -> Variable:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for atom in self.disjunct.atoms:
            involved = [v for v in atom.variables if v in non_core]
            for other in involved[1:]:
                root_a, root_b = find(involved[0]), find(other)
                if root_a != root_b:
                    parent[root_a] = root_b
        groups: dict[Variable, set[Variable]] = {}
        for variable in non_core:
            groups.setdefault(find(variable), set()).add(variable)
        return list(groups.values())

    def _build_component(
        self, component: set[Variable]
    ) -> tuple[Variable | None, list[BelowRequirement], list[AnywhereRequirement]] | None:
        """Build requirements for one connected non-core component.

        Returns ``(anchor core variable or None, below requirements, anywhere
        requirements)``, or None if the component cannot match inside a tree
        for this split.
        """
        root = Variable("__root__")
        unary: dict[Variable, set[str]] = {v: set() for v in component | {root}}
        edges: dict[tuple[Variable, Variable], set[str]] = {}
        anchors: set[Variable] = set()
        for atom in self.disjunct.atoms:
            involved = [v for v in atom.variables if v in component]
            if not involved:
                continue
            if atom.relation.arity == 1:
                unary[atom.arguments[0]].add(atom.relation.name)
            elif atom.relation.arity == 2:
                source, target = atom.arguments
                if source in component and target in component:
                    edges.setdefault((source, target), set()).add(atom.relation.name)
                elif target in component:  # source is a core variable: attachment
                    anchors.add(source)
                    edges.setdefault((root, target), set()).add(atom.relation.name)
                else:
                    return None
            else:
                return None  # higher-arity atoms never match binary forest models
        if len(anchors) > 1:
            # All attachment points must coincide on one data element; requiring
            # the distinct core variables to be equal is handled by a different
            # split (where they are identified), so this split yields no match.
            return None
        anchor = next(iter(anchors)) if anchors else None

        # Merge fork targets: in a tree every node has a unique parent, so all
        # sources of edges into the same target must be identified.
        mapping = {v: v for v in component | {root}}

        def find(x: Variable) -> Variable:
            while mapping[x] != x:
                mapping[x] = mapping[mapping[x]]
                x = mapping[x]
            return x

        changed = True
        while changed:
            changed = False
            parents: dict[Variable, Variable] = {}
            merged_edges: dict[tuple[Variable, Variable], set[str]] = {}
            for (source, target), roles in edges.items():
                key = (find(source), find(target))
                if key[0] == key[1]:
                    return None  # self loop: impossible in a tree
                merged_edges.setdefault(key, set()).update(roles)
            for source, target in merged_edges:
                if target in parents and parents[target] != source:
                    first, second = parents[target], source
                    if root in (first, second):
                        other = second if first == root else first
                        if other in component:
                            # a tree variable would be forced onto the anchor
                            # element; that match is covered by another split.
                            return None
                    mapping[find(first)] = find(second)
                    changed = True
                    break
                parents[target] = source
            if not changed:
                edges = merged_edges
        # Re-canonicalise unary labels after merging.
        merged_unary: dict[Variable, set[str]] = {}
        for variable, labels in unary.items():
            merged_unary.setdefault(find(variable), set()).update(labels)
        nodes = {find(v) for v in component} | {find(root)} if anchor is not None else {
            find(v) for v in component
        }
        final_edges: dict[tuple[Variable, Variable], set[str]] = {}
        for (source, target), roles in edges.items():
            final_edges.setdefault((find(source), find(target)), set()).update(roles)

        # Check acyclicity / single root and build the canonical rooted trees.
        children_of: dict[Variable, list[tuple[frozenset[str], Variable]]] = {}
        incoming: dict[Variable, int] = {node: 0 for node in nodes}
        for (source, target), roles in final_edges.items():
            children_of.setdefault(source, []).append((frozenset(roles), target))
            incoming[target] = incoming.get(target, 0) + 1
            if incoming[target] > 1:
                return None

        def build_tree(node: Variable, seen: frozenset[Variable]) -> RootedTree | None:
            if node in seen:
                return None
            child_trees = []
            for roles, child in children_of.get(node, []):
                subtree = build_tree(child, seen | {node})
                if subtree is None:
                    return None
                child_trees.append((roles, subtree))
            return RootedTree(
                frozenset(merged_unary.get(node, set())), frozenset(child_trees)
            )

        if anchor is not None:
            root_node = find(root)
            requirements = []
            for roles, child in children_of.get(root_node, []):
                subtree = build_tree(child, frozenset({root_node}))
                if subtree is None:
                    return None
                requirements.append(BelowRequirement(roles, subtree))
            # every component node must hang below the root
            reachable = {root_node}
            frontier = [root_node]
            while frontier:
                node = frontier.pop()
                for _roles, child in children_of.get(node, []):
                    if child not in reachable:
                        reachable.add(child)
                        frontier.append(child)
            if reachable != nodes | {root_node}:
                return None
            return anchor, requirements, []
        # Boolean piece: unique root required.
        roots = [node for node in nodes if incoming.get(node, 0) == 0]
        if len(roots) != 1:
            return None
        tree = build_tree(roots[0], frozenset())
        if tree is None:
            return None
        reachable = set(tree_nodes_count(tree))
        return None, [], [AnywhereRequirement(tree)]


def tree_nodes_count(tree: RootedTree) -> list[RootedTree]:
    return list(tree.subtrees())


def enumerate_splits(disjunct: ConjunctiveQuery) -> list[QuerySplit]:
    """All ways to split the disjunct's variables into core and tree parts."""
    variables = sorted(disjunct.variables, key=str)
    answer = set(disjunct.answer_variables)
    optional = [v for v in variables if v not in answer]
    splits: list[QuerySplit] = []
    for bits in itertools.product((True, False), repeat=len(optional)):
        core = frozenset(answer | {v for v, bit in zip(optional, bits) if bit})
        builder = _PieceBuilder(disjunct, core)
        built = builder.build()
        if built is None:
            continue
        attached, floating = built
        core_unary = []
        core_binary = []
        valid = True
        for atom in disjunct.atoms:
            in_core = [
                (not isinstance(t, Variable)) or t in core for t in atom.arguments
            ]
            if all(in_core):
                if atom.relation.arity == 1:
                    core_unary.append((atom.relation.name, atom.arguments[0]))
                elif atom.relation.arity == 2:
                    core_binary.append(
                        (atom.relation.name, atom.arguments[0], atom.arguments[1])
                    )
                else:
                    valid = False
                    break
        if not valid:
            continue
        splits.append(
            QuerySplit(
                disjunct=disjunct,
                core_variables=core,
                core_unary=tuple(core_unary),
                core_binary=tuple(core_binary),
                attached=tuple(attached),
                floating=tuple(floating),
            )
        )
    return splits


# ---------------------------------------------------------------------------
# Achievable requirement sets per type (greatest fixpoint with antichains)
# ---------------------------------------------------------------------------


class ForestAbstraction:
    """Per-type antichains of minimal achievable requirement sets."""

    def __init__(self, ontology: Ontology, ucq: UnionOfConjunctiveQueries):
        if ontology.uses_universal_role():
            raise UnsupportedOntologyError(
                "the forest engine does not support the universal role; "
                "use the atomic-query engine or the bounded-model engine"
            )
        self.ontology = ontology
        self.ucq = ucq
        extra = [ConceptName(name) for name in _query_concept_names(ucq)]
        self.system = TypeSystem(ontology, extra_concepts=extra)
        self.splits = {
            index: enumerate_splits(disjunct)
            for index, disjunct in enumerate(ucq.disjuncts)
        }
        self.requirements = self._requirement_universe()
        self._achievable: dict[frozenset, list[frozenset]] | None = None

    # -- requirement universe -----------------------------------------------------

    def _requirement_universe(self) -> list:
        below: set[BelowRequirement] = set()
        anywhere: set[AnywhereRequirement] = set()
        for splits in self.splits.values():
            for split in splits:
                for _anchor, requirement in split.attached:
                    below.add(requirement)
                for requirement in split.floating:
                    anywhere.add(requirement)
        # close below-requirements under subtrees (needed by the recursion)
        frontier = list(below) + [
            BelowRequirement(roles, child)
            for req in anywhere
            for roles, child in req.tree.children
        ]
        closed: set[BelowRequirement] = set()
        while frontier:
            requirement = frontier.pop()
            if requirement in closed:
                continue
            closed.add(requirement)
            for roles, child in requirement.tree.children:
                frontier.append(BelowRequirement(roles, child))
        return sorted(closed, key=repr) + sorted(anywhere, key=repr)

    # -- matching helpers ------------------------------------------------------------

    def _super_role_names(self, base_role: Role) -> frozenset[str]:
        return frozenset(
            r.name for r in self.ontology.super_roles(base_role) if not r.is_universal()
        )

    def _tree_matches_at(
        self, tree: RootedTree, node_type: frozenset, node_reqs: frozenset
    ) -> bool:
        for label in tree.labels:
            if ConceptName(label) not in node_type:
                return False
        return all(
            BelowRequirement(roles, child) in node_reqs
            for roles, child in tree.children
        )

    def _child_contribution(
        self, base_role: Role, child_type: frozenset, child_reqs: frozenset
    ) -> frozenset:
        """Requirements that attaching this child makes true at the parent."""
        supers = self._super_role_names(base_role)
        result = set()
        for requirement in self.requirements:
            if isinstance(requirement, BelowRequirement):
                if requirement.roles <= supers and self._tree_matches_at(
                    requirement.tree, child_type, child_reqs
                ):
                    result.add(requirement)
            else:  # AnywhereRequirement propagates up from the child
                if requirement in child_reqs:
                    result.add(requirement)
        return frozenset(result)

    def _node_level_anywhere(
        self, node_type: frozenset, below_reqs: frozenset
    ) -> frozenset:
        """Anywhere-requirements that already match at the node itself."""
        result = set()
        for requirement in self.requirements:
            if isinstance(
                requirement, AnywhereRequirement
            ) and self._tree_matches_at(requirement.tree, node_type, below_reqs):
                result.add(requirement)
        return frozenset(result)

    # -- the fixpoint -----------------------------------------------------------------

    def achievable_requirement_sets(self) -> dict[frozenset, list[frozenset]]:
        """For each type, the antichain of minimal achievable requirement sets.

        A requirement set ``P`` is *achievable* for type ``t`` if some
        tree-shaped model of the ontology with root type ``t`` satisfies at
        most the requirements in ``P``.  Types whose antichain is empty cannot
        root any tree model and are discarded.
        """
        if self._achievable is not None:
            return self._achievable
        types = self.system.all_types()
        current: dict[frozenset, list[frozenset]] = {t: [frozenset()] for t in types}
        changed = True
        while changed:
            changed = False
            updated: dict[frozenset, list[frozenset]] = {}
            for node_type in types:
                sets = self._achievable_for(node_type, current)
                if _antichain_differs(sets, current.get(node_type, [])):
                    changed = True
                if sets:
                    updated[node_type] = sets
            if set(updated) != set(current):
                changed = True
            current = updated
        self._achievable = current
        return current

    def _achievable_for(
        self, node_type: frozenset, current: dict[frozenset, list[frozenset]]
    ) -> list[frozenset]:
        existentials = [
            c
            for c in node_type
            if isinstance(c, Exists) and not c.role.is_universal()
        ]
        # Per existential: the distinct minimal contributions of candidate witnesses.
        per_existential: list[list[frozenset]] = []
        for existential in existentials:
            contributions: set[frozenset] = set()
            filler = existential.filler.nnf()
            for witness_type, witness_sets in current.items():
                if filler not in witness_type:
                    continue
                if not self.system.compatible(node_type, witness_type, existential.role):
                    continue
                for witness_reqs in witness_sets:
                    contributions.add(
                        self._child_contribution(
                            existential.role, witness_type, witness_reqs
                        )
                    )
            if not contributions:
                return []
            per_existential.append(_minimal_sets(contributions))
        results: set[frozenset] = set()
        combos = itertools.product(*per_existential) if per_existential else [()]
        count = 0
        for combination in combos:
            count += 1
            if count > 20000:
                # Extremely wide products only arise for adversarial inputs;
                # keep every contribution in that case (sound, possibly larger P).
                union_all: set = set()
                for options in per_existential:
                    union_all.update(frozenset().union(*options))
                results.add(
                    frozenset(union_all)
                    | self._node_level_anywhere(node_type, frozenset(union_all))
                )
                break
            below_union = frozenset().union(*combination) if combination else frozenset()
            full = below_union | self._node_level_anywhere(node_type, below_union)
            results.add(full)
        return _minimal_sets(results)

    # -- public API ------------------------------------------------------------------

    def labelled_types(self) -> list[tuple[frozenset, frozenset]]:
        """All (type, minimal requirement set) pairs realisable as tree roots."""
        pairs = []
        for node_type, sets in self.achievable_requirement_sets().items():
            for requirement_set in sets:
                pairs.append((node_type, requirement_set))
        return pairs


def _minimal_sets(sets) -> list[frozenset]:
    unique = sorted(set(sets), key=lambda s: (len(s), repr(sorted(map(repr, s)))))
    minimal: list[frozenset] = []
    for candidate in unique:
        if not any(other <= candidate for other in minimal if other != candidate):
            minimal.append(candidate)
    return minimal


def _antichain_differs(first: list[frozenset], second: list[frozenset]) -> bool:
    return set(first) != set(second)


def _query_concept_names(ucq: UnionOfConjunctiveQueries) -> set[str]:
    names = set()
    for disjunct in ucq.disjuncts:
        for atom in disjunct.atoms:
            if atom.relation.arity == 1:
                names.add(atom.relation.name)
    return names


# ---------------------------------------------------------------------------
# The certain-answer engine
# ---------------------------------------------------------------------------


class ForestEngine:
    """Certain-answer computation via forest counter-model search.

    Query matching over a forest abstraction only depends, per data element,
    on its *observable*: which query concept names its type contains and which
    tree requirements its attached tree satisfies.  The engine therefore
    enumerates observable combinations (few) rather than full labellings
    (many) and falls back to a labelling search only to decide whether a
    non-matching observable combination is actually realisable.
    """

    def __init__(self, omq: OntologyMediatedQuery):
        self.omq = omq
        self.ucq = omq.ucq()
        self.abstraction = ForestAbstraction(omq.ontology, self.ucq)
        self.system = self.abstraction.system
        self._relevant_names = frozenset(
            name
            for name in _query_concept_names(self.ucq)
            if ConceptName(name) in self.system.closure
        )

    def _observable(self, label: tuple[frozenset, frozenset]) -> tuple[frozenset, frozenset]:
        node_type, requirements = label
        names = frozenset(
            name for name in self._relevant_names if ConceptName(name) in node_type
        )
        return (names, requirements)

    # -- data-level structures ------------------------------------------------------

    def _data_views(self, instance: Instance):
        concept_facts: dict[Element, set[str]] = {}
        role_facts: dict[tuple[Element, Element], set[str]] = {}
        for fact in instance:
            if fact.relation.arity == 1:
                concept_facts.setdefault(fact.arguments[0], set()).add(
                    fact.relation.name
                )
            elif fact.relation.arity == 2:
                role_facts.setdefault(
                    (fact.arguments[0], fact.arguments[1]), set()
                ).add(fact.relation.name)
        # Close role facts under the role hierarchy (models must satisfy R ⊑ S).
        closed_roles: dict[tuple[Element, Element], set[str]] = {}
        for pair, names in role_facts.items():
            closed: set[str] = set()
            for name in names:
                closed.update(
                    r.name
                    for r in self.omq.ontology.super_roles(Role(name))
                    if not r.is_universal()
                )
            closed_roles[pair] = closed
        return concept_facts, role_facts, closed_roles

    # -- labelling search --------------------------------------------------------------

    def _candidate_labels(
        self, element: Element, concept_facts: dict[Element, set[str]]
    ) -> list[tuple[frozenset, frozenset]]:
        asserted = {
            ConceptName(name)
            for name in concept_facts.get(element, set())
            if ConceptName(name) in self.system.closure
        }
        labels = []
        for node_type, requirement_set in self.abstraction.labelled_types():
            if asserted <= node_type:
                labels.append((node_type, requirement_set))
        return labels

    def _labellings(self, instance: Instance) -> Iterator[dict[Element, tuple[frozenset, frozenset]]]:
        """All forest labellings of the data consistent with ontology and facts."""
        concept_facts, role_facts, _closed = self._data_views(instance)
        elements = sorted(instance.active_domain, key=repr)
        candidates = {
            element: self._candidate_labels(element, concept_facts)
            for element in elements
        }
        if any(not candidate for candidate in candidates.values()):
            return
        edges = [
            (source, target, Role(name))
            for (source, target), names in role_facts.items()
            for name in names
        ]
        assignment: dict[Element, tuple[frozenset, frozenset]] = {}

        def consistent(element: Element, label: tuple[frozenset, frozenset]) -> bool:
            node_type = label[0]
            for source, target, role in edges:
                if (
                    source == element
                    and target in assignment
                    and not self.system.compatible(
                        node_type, assignment[target][0], role
                    )
                ):
                    return False
                if (
                    target == element
                    and source in assignment
                    and not self.system.compatible(
                        assignment[source][0], node_type, role
                    )
                ):
                    return False
                if (
                    source == element
                    and target == element
                    and not self.system.compatible(node_type, node_type, role)
                ):
                    return False
            return True

        def search(index: int) -> Iterator[dict[Element, tuple[frozenset, frozenset]]]:
            if index == len(elements):
                yield dict(assignment)
                return
            element = elements[index]
            for label in candidates[element]:
                if consistent(element, label):
                    assignment[element] = label
                    yield from search(index + 1)
                    del assignment[element]

        yield from search(0)

    # -- query matching over observables ------------------------------------------------

    def _query_matches(
        self,
        observables: dict[Element, tuple[frozenset, frozenset]],
        answer: tuple,
        concept_facts,
        closed_roles,
        elements,
    ) -> bool:
        for index in range(len(self.ucq.disjuncts)):
            for split in self.abstraction.splits[index]:
                if self._split_matches(
                    split, observables, answer, concept_facts, closed_roles, elements
                ):
                    return True
        return False

    def _split_matches(
        self,
        split: QuerySplit,
        observables,
        answer: tuple,
        concept_facts,
        closed_roles,
        elements,
    ) -> bool:
        answer_vars = split.disjunct.answer_variables
        fixed: dict[Variable, Element] = {}
        for variable, value in zip(answer_vars, answer):
            if variable in fixed and fixed[variable] != value:
                return False
            fixed[variable] = value
        free = sorted(
            (v for v in split.core_variables if v not in fixed), key=str
        )
        # Floating pieces do not depend on the core mapping.
        for requirement in split.floating:
            if not any(requirement in observables[b][1] for b in elements):
                return False
        for values in itertools.product(elements, repeat=len(free)):
            mapping = dict(fixed)
            mapping.update(zip(free, values))
            if self._core_holds(split, mapping, observables, concept_facts, closed_roles):
                return True
        return False

    def _core_holds(self, split, mapping, observables, concept_facts, closed_roles) -> bool:
        for name, variable in split.core_unary:
            element = mapping[variable] if isinstance(variable, Variable) else variable
            if name in self._relevant_names:
                if name not in observables[element][0]:
                    return False
            elif name not in concept_facts.get(element, set()):
                return False
        for name, source, target in split.core_binary:
            source_el = mapping[source] if isinstance(source, Variable) else source
            target_el = mapping[target] if isinstance(target, Variable) else target
            if name not in closed_roles.get((source_el, target_el), set()):
                return False
        for anchor, requirement in split.attached:
            element = mapping[anchor] if isinstance(anchor, Variable) else anchor
            if requirement not in observables[element][1]:
                return False
        return True

    # -- achievability of observable combinations ----------------------------------------

    def _instance_views(self, instance: Instance):
        """Per-instance candidate labels, observables, and fact indexes."""
        concept_facts, role_facts, closed_roles = self._data_views(instance)
        elements = sorted(instance.active_domain, key=repr)
        candidates = {
            element: self._candidate_labels(element, concept_facts)
            for element in elements
        }
        by_observable: dict[Element, dict[tuple, list]] = {}
        for element in elements:
            groups: dict[tuple, list] = {}
            for label in candidates[element]:
                groups.setdefault(self._observable(label), []).append(label)
            by_observable[element] = groups
        edges = [
            (source, target, Role(name))
            for (source, target), names in role_facts.items()
            for name in names
        ]
        return {
            "elements": elements,
            "concept_facts": concept_facts,
            "closed_roles": closed_roles,
            "candidates": candidates,
            "by_observable": by_observable,
            "edges": edges,
        }

    def _achievable(self, views, observable_assignment: dict[Element, tuple]) -> bool:
        """Is there a consistent labelling realising the given observables?"""
        elements = views["elements"]
        edges = views["edges"]
        pools = []
        for element in elements:
            pool = views["by_observable"][element].get(observable_assignment[element])
            if not pool:
                return False
            pools.append(pool)
        assignment: dict[Element, tuple] = {}

        def consistent(element: Element, label) -> bool:
            node_type = label[0]
            for source, target, role in edges:
                if (
                    source == element
                    and target in assignment
                    and not self.system.compatible(
                        node_type, assignment[target][0], role
                    )
                ):
                    return False
                if (
                    target == element
                    and source in assignment
                    and not self.system.compatible(
                        assignment[source][0], node_type, role
                    )
                ):
                    return False
                if (
                    source == element
                    and target == element
                    and not self.system.compatible(node_type, node_type, role)
                ):
                    return False
            return True

        def search(index: int) -> bool:
            if index == len(elements):
                return True
            element = elements[index]
            for label in pools[index]:
                if consistent(element, label):
                    assignment[element] = label
                    if search(index + 1):
                        return True
                    del assignment[element]
            return False

        return search(0)

    def _observable_space(self, views) -> dict[Element, list[tuple]]:
        return {
            element: sorted(views["by_observable"][element], key=repr)
            for element in views["elements"]
        }

    def _is_consistent(self, views) -> bool:
        elements = views["elements"]
        space = self._observable_space(views)
        if any(not space[element] for element in elements):
            return False
        return any(
            self._achievable(views, dict(zip(elements, combination)))
            for combination in itertools.product(*(space[e] for e in elements))
        )

    # -- public API -------------------------------------------------------------------------

    def _certain_in_views(self, views, answer: tuple, cache: dict) -> bool:
        elements = views["elements"]
        space = self._observable_space(views)
        if any(not space[element] for element in elements):
            return True  # no candidate label at all: data inconsistent
        concept_facts = views["concept_facts"]
        closed_roles = views["closed_roles"]
        for combination in itertools.product(*(space[e] for e in elements)):
            observables = dict(zip(elements, combination))
            if self._query_matches(
                observables, answer, concept_facts, closed_roles, elements
            ):
                continue
            achievable = cache.get(combination)
            if achievable is None:
                achievable = self._achievable(views, observables)
                cache[combination] = achievable
            if achievable:
                return False
        return True

    def is_certain(self, instance: Instance, answer: Sequence = ()) -> bool:
        answer = tuple(answer)
        if not instance.active_domain:
            return False
        if any(value not in instance.active_domain for value in answer):
            return False
        views = self._instance_views(instance)
        return self._certain_in_views(views, answer, cache={})

    def certain_answers(self, instance: Instance) -> frozenset[tuple]:
        arity = self.ucq.arity
        domain = sorted(instance.active_domain, key=repr)
        if not domain:
            return frozenset()
        views = self._instance_views(instance)
        cache: dict = {}
        answers = set()
        for candidate in itertools.product(domain, repeat=arity):
            if self._certain_in_views(views, candidate, cache):
                answers.add(candidate)
        return frozenset(answers)

    def is_consistent(self, instance: Instance) -> bool:
        """Is the instance consistent with the ontology (some labelling exists)?"""
        if not instance.active_domain:
            return True
        return self._is_consistent(self._instance_views(instance))
