"""Ontology-mediated queries and certain-answer engines."""

from .query import OntologyMediatedQuery
from .certain import ENGINES, certain_answers, is_certain_answer
from .atomic import AtomicEngine
from .bounded import BoundedModelEngine
from .forest import ForestEngine

__all__ = [
    "ENGINES",
    "AtomicEngine",
    "BoundedModelEngine",
    "ForestEngine",
    "OntologyMediatedQuery",
    "certain_answers",
    "is_certain_answer",
]
