"""Ontology-mediated queries and certain-answer engines."""

from .atomic import AtomicEngine
from .bounded import BoundedModelEngine
from .certain import ENGINES, certain_answers, is_certain_answer
from .forest import ForestEngine
from .query import OntologyMediatedQuery

__all__ = [
    "ENGINES",
    "AtomicEngine",
    "BoundedModelEngine",
    "ForestEngine",
    "OntologyMediatedQuery",
    "certain_answers",
    "is_certain_answer",
]
