"""Ontology-mediated queries (Section 2).

An ontology-mediated query (OMQ) is a triple ``(S, O, q)``: a data schema, an
ontology, and a query over ``S ∪ sig(O)``.  Its semantics ``q_Q`` maps an
``S``-instance to the certain answers ``cert_{q,O}(D)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.cq import (
    ConjunctiveQuery,
    UnionOfConjunctiveQueries,
    as_ucq,
    is_atomic_query,
    is_boolean_atomic_query,
)
from ..core.instance import Instance
from ..core.schema import Schema
from ..dl.ontology import Ontology, data_schema_of


@dataclass(frozen=True)
class OntologyMediatedQuery:
    """An ontology-mediated query ``(S, O, q)``.

    ``query`` may be a CQ or a UCQ; ``data_schema`` defaults to the full
    schema ``sig(O) ∪ sig(q)``.  When ``schema_free`` is set, the query is a
    *schema-free* OMQ in the sense of Section 6: any relation symbol may occur
    in the data.
    """

    ontology: Ontology
    query: "ConjunctiveQuery | UnionOfConjunctiveQueries"
    data_schema: Schema | None = None
    schema_free: bool = False

    def __post_init__(self) -> None:
        if self.data_schema is None:
            object.__setattr__(
                self, "data_schema", data_schema_of(self.ontology, self.ucq())
            )

    # -- views -------------------------------------------------------------------

    def ucq(self) -> UnionOfConjunctiveQueries:
        return as_ucq(self.query)

    @property
    def arity(self) -> int:
        return self.ucq().arity

    def is_atomic(self) -> bool:
        """Is the actual query an AQ (``A(x)``)?"""
        return isinstance(self.query, ConjunctiveQuery) and is_atomic_query(self.query)

    def is_boolean_atomic(self) -> bool:
        """Is the actual query a BAQ (``∃x A(x)``)?"""
        return isinstance(self.query, ConjunctiveQuery) and is_boolean_atomic_query(
            self.query
        )

    def omq_language(self) -> str:
        """The OBDA language ``(L, Q)`` this query syntactically belongs to."""
        dialect = self.ontology.dialect()
        if self.is_atomic():
            query_language = "AQ"
        elif self.is_boolean_atomic():
            query_language = "BAQ"
        elif isinstance(self.query, ConjunctiveQuery):
            query_language = "CQ"
        else:
            query_language = "UCQ"
        return f"({dialect}, {query_language})"

    def size(self) -> int:
        return self.ontology.size() + self.ucq().size()

    # -- semantics -----------------------------------------------------------------

    def check_instance_schema(self, instance: Instance) -> None:
        if self.schema_free:
            return
        for symbol in instance.schema:
            if symbol not in self.data_schema:
                raise ValueError(
                    f"instance uses symbol {symbol} outside the data schema; "
                    "declare the OMQ schema_free or extend the data schema"
                )

    def certain_answers(self, instance: Instance, engine: str = "auto") -> frozenset[tuple]:
        """The certain answers ``cert_{q,O}(D)`` (delegates to :mod:`repro.omq.certain`)."""
        from .certain import certain_answers

        return certain_answers(self, instance, engine=engine)

    def is_certain(
        self, instance: Instance, answer: Sequence = (), engine: str = "auto"
    ) -> bool:
        from .certain import is_certain_answer

        return is_certain_answer(self, instance, tuple(answer), engine=engine)

    def consistent(self, instance: Instance) -> bool:
        """Is the instance consistent with the ontology?"""
        from ..dl.reasoner import instance_consistent

        return instance_consistent(instance, self.ontology)
