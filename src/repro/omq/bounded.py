"""Bounded counter-model search: the reference certain-answer engine.

This engine implements the textbook definition of certain answers directly:
``a ∈ cert_{q,O}(D)`` iff every finite model of ``O`` extending ``D``
satisfies ``q(a)``.  It searches for a counter-model among structures whose
domain extends ``adom(D)`` by at most ``extra_elements`` fresh elements.  The
search grounds the FO translation of the ontology and the negated query over
that finite domain and hands the resulting propositional problem to the small
SAT search in :mod:`repro.fo.grounding` — ground facts are the propositional
variables, the data facts are forced true, and everything else is free.

* A discovered counter-model is always a genuine refutation, so a ``False``
  verdict is sound unconditionally.
* A ``True`` verdict is complete only relative to the bound: it means no
  counter-model with at most ``extra_elements`` fresh elements exists.  For
  the small ontologies and instances used in the tests and benchmarks this is
  exhaustive in practice; the engine is used as an *independent cross-check*
  for the complete type-based engines and as the only engine covering
  ``ALCF`` (functional roles), where certain answering is undecidable in
  general (Theorem 5.8 / 5.17).
"""

from __future__ import annotations

import itertools
from typing import Sequence

from ..core.instance import Fact, Instance
from ..dl.fo_translation import ontology_to_fo_sentence
from ..engine.parallel import ReplicaPool, resolve_workers
from ..engine.sat import TseitinAux, solver_for_clauses, tseitin_clauses, tseitin_encode
from ..fo.grounding import ground, ground_ucq, model_from_assignment, satisfying_assignment
from .query import OntologyMediatedQuery


class BoundedModelEngine:
    """Certain answers via bounded counter-model search (grounding + SAT)."""

    def __init__(self, omq: OntologyMediatedQuery, extra_elements: int = 1):
        self.omq = omq
        self.extra_elements = extra_elements
        self.ucq = omq.ucq()
        self._sentence = ontology_to_fo_sentence(omq.ontology)
        self._functional = sorted(omq.ontology.functional_roles())

    # -- grounding helpers -----------------------------------------------------------

    def _domains(self, instance: Instance) -> list[list]:
        base = sorted(instance.active_domain, key=repr)
        domains = []
        for extra in range(self.extra_elements + 1):
            domains.append(base + [f"__fresh{i}" for i in range(extra)])
        return domains

    def _ontology_constraint(self, domain):
        return ground(self._sentence, domain)

    def _functionality_constraints(self, domain):
        """func(R): no element has two distinct R-successors."""
        from ..core.schema import RelationSymbol

        constraints = []
        for name in self._functional:
            symbol = RelationSymbol(name, 2)
            for source in domain:
                for first, second in itertools.combinations(domain, 2):
                    constraints.append(
                        (
                            "or",
                            (
                                ("lit", Fact(symbol, (source, first)), False),
                                ("lit", Fact(symbol, (source, second)), False),
                            ),
                        )
                    )
        return constraints

    def _forced_facts(self, instance: Instance) -> dict[Fact, bool]:
        return {fact: True for fact in instance}

    # -- counter-model search ---------------------------------------------------------

    def countermodel(self, instance: Instance, answer: Sequence = ()) -> Instance | None:
        """A model of the ontology extending the data in which ``q(answer)`` fails."""
        answer = tuple(answer)
        forced = self._forced_facts(instance)
        for domain in self._domains(instance):
            constraints = [self._ontology_constraint(domain)]
            constraints.extend(self._functionality_constraints(domain))
            constraints.append(ground_ucq(self.ucq, domain, answer, positive=False))
            assignment = satisfying_assignment(constraints, forced)
            if assignment is not None:
                return model_from_assignment(assignment, instance)
        return None

    def some_model(self, instance: Instance) -> Instance | None:
        """Any model of the ontology extending the data within the bound."""
        forced = self._forced_facts(instance)
        for domain in self._domains(instance):
            constraints = [self._ontology_constraint(domain)]
            constraints.extend(self._functionality_constraints(domain))
            assignment = satisfying_assignment(constraints, forced)
            if assignment is not None:
                return model_from_assignment(assignment, instance)
        return None

    # -- certain answers ------------------------------------------------------------------

    def is_certain(self, instance: Instance, answer: Sequence = ()) -> bool:
        answer = tuple(answer)
        if not instance.active_domain:
            return False
        if any(value not in instance.active_domain for value in answer):
            return False
        return self.countermodel(instance, answer) is None

    def certain_answers(
        self, instance: Instance, parallel: "int | str | None" = None
    ) -> frozenset[tuple]:
        """All certain answers, grounding the ontology once per domain.

        The ontology, functionality and data constraints are encoded into
        one persistent engine solver per candidate domain; each candidate's
        negated query is then attached behind a fresh activation literal and
        decided with an assumption-based ``solve`` (the incremental-SAT
        pattern), instead of rebuilding the whole propositional problem for
        every ``(candidate, domain)`` pair.

        Candidate tuples are independently decidable, so with ``parallel``
        > 1 they are partitioned into chunks across a worker pool in which
        every worker replicates this engine and runs the same incremental
        loop over its chunk (:mod:`repro.engine.parallel`).  With
        ``parallel="auto"`` the pool is sized by the planner's cost
        heuristic — candidates times the grounded ontology's rough clause
        count — so small problems stay serial and skip the pool start-up.
        """
        base = sorted(instance.active_domain, key=repr)
        if not base:
            return frozenset()
        candidates = list(itertools.product(base, repeat=self.ucq.arity))
        if parallel == "auto":
            from ..planner import auto_workers

            largest = len(base) + self.extra_elements
            score = len(candidates) * self._sentence.size() * float(largest) ** 2
            parallel = auto_workers(score)
        if parallel is not None and resolve_workers(parallel) > 1:
            pool = ReplicaPool((self, instance), parallel)
            try:
                if pool.is_parallel:
                    # One chunk per worker: each chunk re-grounds the
                    # ontology per bounded domain, so fewer, larger chunks
                    # keep that dominant cost paid once per worker.
                    size = -(-len(candidates) // pool.workers)
                    chunks = [
                        candidates[start : start + size]
                        for start in range(0, len(candidates), size)
                    ]
                    certain_chunks = pool.run(_bounded_chunk, chunks)
                    return frozenset().union(*certain_chunks)
            finally:
                pool.close()
        return self._certain_subset(instance, candidates)

    def _certain_subset(
        self, instance: Instance, candidates: Sequence[tuple]
    ) -> frozenset[tuple]:
        """The certain answers among the given candidate tuples."""
        remaining = set(candidates)
        for domain in self._domains(instance):
            if not remaining:
                break
            constraints = [self._ontology_constraint(domain)]
            constraints.extend(self._functionality_constraints(domain))
            clauses = tseitin_clauses(constraints)
            if clauses is None:
                continue  # ontology unsatisfiable over this domain
            solver = solver_for_clauses(clauses)
            for fact in instance:
                solver.add_clause((), (fact,))
            if not solver.solve():
                continue  # no model extends the data over this domain
            for index, candidate in enumerate(sorted(remaining, key=repr)):
                encoded = tseitin_encode(
                    [ground_ucq(self.ucq, domain, candidate, positive=False)]
                )
                if encoded is None:
                    continue  # the query holds in every interpretation
                extra, roots = encoded
                if not roots:
                    # negated query is trivially true: the base model above
                    # is already a counter-model
                    remaining.discard(candidate)
                    continue
                guard = TseitinAux(("candidate", index))
                for negative, positive in extra:
                    solver.add_clause(negative, positive)
                for atom, polarity in roots:
                    if polarity:
                        solver.add_clause([guard], [atom])
                    else:
                        solver.add_clause([guard, atom], [])
                if solver.solve(true_atoms=[guard]):
                    remaining.discard(candidate)
        return frozenset(remaining)

    def has_countermodel(self, instance: Instance, answer: Sequence = ()) -> bool:
        """Convenience negation of :meth:`is_certain` (bounded refutation search)."""
        return not self.is_certain(instance, answer)


def _bounded_chunk(context, chunk, _shared):
    """Replica-pool task: decide one chunk of candidates on a worker's
    engine replica (each worker re-runs the incremental per-domain loop,
    restricted to its chunk)."""
    engine, instance = context.payload
    return engine._certain_subset(instance, list(chunk)), None
