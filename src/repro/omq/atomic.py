"""Certain answers for atomic and Boolean atomic queries (AQ / BAQ).

For an atomic query ``A0(x)``, a data element ``a`` is a certain answer iff
there is no model of the ontology extending the data in which ``A0`` fails at
``a`` — i.e. no labelling of the data with good types that makes ``A0`` false
at ``a``.  This reduces directly to the type-assignment search of
:class:`repro.dl.reasoner.AboxTypeAssignment` and supports ALC, role
hierarchies and the universal role (``ALCHU`` / ``SHIU`` after the rewritings
of Theorems 3.6 and 3.11).
"""

from __future__ import annotations

from typing import Sequence

from ..core.cq import ConjunctiveQuery
from ..core.instance import Instance
from ..dl.concepts import ConceptName
from ..dl.reasoner import AboxTypeAssignment
from .query import OntologyMediatedQuery


def _query_concept(omq: OntologyMediatedQuery) -> ConceptName:
    query = omq.query
    if not isinstance(query, ConjunctiveQuery) or len(query.atoms) != 1:
        raise ValueError("the atomic engine requires an AQ or BAQ")
    atom = next(iter(query.atoms))
    if atom.relation.arity != 1:
        raise ValueError("the atomic engine requires a unary query relation")
    return ConceptName(atom.relation.name)


class AtomicEngine:
    """Certain answers for (L, AQ) and (L, BAQ) ontology-mediated queries."""

    def __init__(self, omq: OntologyMediatedQuery):
        if not (omq.is_atomic() or omq.is_boolean_atomic()):
            raise ValueError("the atomic engine requires an AQ or BAQ")
        self.omq = omq
        self.concept = _query_concept(omq)

    def _assignment_search(self, instance: Instance) -> AboxTypeAssignment:
        return AboxTypeAssignment(
            self.omq.ontology, instance, extra_concepts=[self.concept]
        )

    def is_certain(self, instance: Instance, answer: Sequence = ()) -> bool:
        answer = tuple(answer)
        if not instance.active_domain:
            return False
        if any(value not in instance.active_domain for value in answer):
            return False
        search = self._assignment_search(instance)
        if self.omq.is_atomic():
            element = answer[0]
            # a is certain unless some model makes A0 false at a.
            return not search.exists(forbidden={element: [self.concept]})
        # BAQ: certain unless some model makes A0 false everywhere.
        forbidden = {
            element: [self.concept] for element in instance.active_domain
        }
        return not search.exists(forbidden=forbidden)

    def certain_answers(self, instance: Instance) -> frozenset[tuple]:
        domain = sorted(instance.active_domain, key=repr)
        if not domain:
            return frozenset()
        search = self._assignment_search(instance)
        if self.omq.is_boolean_atomic():
            forbidden = {element: [self.concept] for element in domain}
            return frozenset() if search.exists(forbidden=forbidden) else frozenset({()})
        answers = set()
        for element in domain:
            if not search.exists(forbidden={element: [self.concept]}):
                answers.add((element,))
        return frozenset(answers)
