"""Type-elimination reasoning for the ALC family.

The reasoner implements the classical *type elimination* procedure that also
underlies the proofs of Theorems 3.3 and 3.4: a *type* is a truth assignment
to the subconcepts of the ontology (closed under negation normal form), a type
is *good* if it can be realised at the root of a tree-shaped model, and an
ABox (instance) is consistent with the ontology iff its elements can be
labelled with good types compatible with the asserted facts.

Supported natively: ``ALC``, role hierarchies (``H``) and the universal role
(``U``).  Inverse roles and transitive roles are handled by the equivalence
preserving rewritings of :mod:`repro.dl.rewritings` (Theorems 3.6 and 3.11);
functional roles (``ALCF``) are outside the scope of this engine — the paper
uses them for negative results — and are served by the bounded-model search in
:mod:`repro.omq.bounded`.
"""

from __future__ import annotations

import itertools
from typing import Hashable, Iterable, Iterator, Sequence

from ..core.instance import Fact, Instance
from ..core.schema import RelationSymbol
from .concepts import (
    And,
    Bottom,
    Concept,
    ConceptName,
    Exists,
    Forall,
    Not,
    Or,
    Role,
    Top,
)
from .ontology import Ontology

Element = Hashable
Type = frozenset  # frozenset of closure concepts that are true


class UnsupportedOntologyError(ValueError):
    """Raised when the type-elimination reasoner cannot handle the ontology."""


def _check_supported(ontology: Ontology) -> None:
    if ontology.uses_inverse_roles():
        raise UnsupportedOntologyError(
            "inverse roles are not supported natively; apply "
            "repro.dl.rewritings.eliminate_inverse_roles first (Theorem 3.6)"
        )
    if ontology.uses_transitive_roles():
        raise UnsupportedOntologyError(
            "transitive roles are not supported natively; apply "
            "repro.dl.rewritings.eliminate_transitive_roles first (Theorem 3.11)"
        )
    if ontology.uses_functional_roles():
        raise UnsupportedOntologyError(
            "functional roles are not supported by type elimination; use the "
            "bounded-model engine in repro.omq.bounded"
        )


def negation_closure(concepts: Iterable[Concept]) -> frozenset[Concept]:
    """Close a set of NNF concepts under subconcepts and NNF negation."""
    result: set[Concept] = set()
    frontier = [c.nnf() for c in concepts]
    while frontier:
        current = frontier.pop()
        if current in result:
            continue
        result.add(current)
        frontier.extend(current.children())
        negated = current.negate()
        if negated not in result:
            frontier.append(negated)
    return frozenset(result)


class TypeSystem:
    """Types over the closure of an ontology (plus extra tracked concepts).

    A type is represented as the frozenset of closure concepts it makes true.
    Truth of composite concepts is derived from *decision concepts*: concept
    names and existential restrictions.  Universal restrictions are derived via
    their existential duals, which keeps types semantically coherent by
    construction (``∀R.C`` is true exactly when ``∃R.¬C`` is false).
    """

    def __init__(self, ontology: Ontology, extra_concepts: Iterable[Concept] = ()):
        _check_supported(ontology)
        self.ontology = ontology
        seeds: list[Concept] = []
        for inclusion in ontology.concept_inclusions():
            seeds.append(inclusion.lhs.nnf())
            seeds.append(inclusion.lhs.negate())
            seeds.append(inclusion.rhs.nnf())
            seeds.append(inclusion.rhs.negate())
        seeds.extend(c.nnf() for c in extra_concepts)
        seeds.extend(c.negate() for c in extra_concepts)
        self.closure = negation_closure(seeds)
        self._axioms = [
            (ci.lhs.nnf(), ci.rhs.nnf()) for ci in ontology.concept_inclusions()
        ]
        self.concept_name_decisions = sorted(
            {c for c in self.closure if isinstance(c, ConceptName)},
            key=str,
        )
        self.existential_decisions = sorted(
            {c for c in self.closure if isinstance(c, Exists)},
            key=str,
        )
        self.u_existentials = [
            c for c in self.existential_decisions if c.role.is_universal()
        ]

    # -- truth derivation ------------------------------------------------------------

    def _truth(self, concept: Concept, true_decisions: frozenset[Concept]) -> bool:
        if isinstance(concept, Top):
            return True
        if isinstance(concept, Bottom):
            return False
        if isinstance(concept, ConceptName):
            return concept in true_decisions
        if isinstance(concept, Not):
            return not self._truth(concept.operand, true_decisions)
        if isinstance(concept, And):
            return self._truth(concept.left, true_decisions) and self._truth(
                concept.right, true_decisions
            )
        if isinstance(concept, Or):
            return self._truth(concept.left, true_decisions) or self._truth(
                concept.right, true_decisions
            )
        if isinstance(concept, Exists):
            return concept in true_decisions
        if isinstance(concept, Forall):
            dual = Exists(concept.role, concept.filler.negate())
            return not self._truth(dual, true_decisions)
        raise TypeError(f"unknown concept constructor: {concept!r}")

    def type_from_decisions(self, true_decisions: frozenset[Concept]) -> Type | None:
        """Build a type from a decision assignment; None if it violates an axiom."""
        members = frozenset(
            c for c in self.closure if self._truth(c, true_decisions)
        )
        for lhs, rhs in self._axioms:
            if self._truth(lhs, true_decisions) and not self._truth(
                rhs, true_decisions
            ):
                return None
        return members

    def all_types(self) -> list[Type]:
        """All locally consistent types (axioms respected)."""
        decisions = list(self.concept_name_decisions) + list(
            self.existential_decisions
        )
        if len(decisions) > 18:
            raise UnsupportedOntologyError(
                f"closure too large for exhaustive type enumeration "
                f"({len(decisions)} decision concepts)"
            )
        types: list[Type] = []
        for bits in itertools.product((False, True), repeat=len(decisions)):
            true_decisions = frozenset(
                d for d, bit in zip(decisions, bits) if bit
            )
            candidate = self.type_from_decisions(true_decisions)
            if candidate is not None:
                types.append(candidate)
        return types

    # -- edge compatibility -------------------------------------------------------------

    def super_roles(self, role: Role) -> frozenset[Role]:
        return self.ontology.super_roles(role)

    def compatible(self, source: Type, target: Type, base_role: Role) -> bool:
        """May ``target`` label an R-successor of ``source`` (R = ``base_role``)?

        The successor inherits value restrictions along all super-roles of
        ``base_role`` and must not witness existential restrictions that the
        source type declares false (types are semantically exact).
        """
        supers = self.super_roles(base_role)
        for concept in self.closure:
            if (
                isinstance(concept, Forall)
                and concept in source
                and (concept.role in supers or concept.role.is_universal())
                and concept.filler.nnf() not in target
            ):
                return False
            if (
                isinstance(concept, Exists)
                and concept not in source
                and concept.role in supers
                and concept.filler.nnf() in target
            ):
                return False
        return True

    def u_compatible(self, first: Type, second: Type) -> bool:
        """Types co-existing in one model must agree on universal-role concepts
        and must not realise a concept whose ``∃U`` the other declares false."""
        for concept in self.u_existentials:
            if (concept in first) != (concept in second):
                return False
            if concept not in first and concept.filler.nnf() in second:
                return False
            if concept not in second and concept.filler.nnf() in first:
                return False
        for concept in self.closure:
            if isinstance(concept, Forall) and concept.role.is_universal():
                if concept in first and concept.filler.nnf() not in second:
                    return False
                if concept in second and concept.filler.nnf() not in first:
                    return False
        return True

    # -- good types (tree realisability) ---------------------------------------------------

    def good_types(self, types: Sequence[Type] | None = None) -> list[Type]:
        """Types realisable at the root of a tree-shaped model (type elimination).

        A type survives if each of its existential restrictions (over ordinary
        roles) has a surviving witness type compatible with it.  Universal-role
        existentials are handled globally by :meth:`globally_coherent_types`.
        """
        alive = list(types if types is not None else self.all_types())
        changed = True
        while changed:
            changed = False
            survivors = []
            for candidate in alive:
                if self._has_witnesses(candidate, alive):
                    survivors.append(candidate)
                else:
                    changed = True
            alive = survivors
        return alive

    def _has_witnesses(self, candidate: Type, alive: Sequence[Type]) -> bool:
        for concept in candidate:
            if not isinstance(concept, Exists) or concept.role.is_universal():
                continue
            witness_found = False
            for witness in alive:
                if concept.filler.nnf() in witness and self.compatible(
                    candidate, witness, concept.role
                ):
                    witness_found = True
                    break
            if not witness_found:
                return False
        return True

    def globally_coherent_families(self) -> Iterator[list[Type]]:
        """Families of good types that agree on the universal role.

        Each yielded family is a maximal set of good types that may jointly
        populate one model: they agree on every ``∃U.C`` / ``∀U.C`` and every
        positively asserted ``∃U.C`` has a witness inside the family.  Without
        the universal role there is a single family: all good types.
        """
        if not self.uses_universal_role():
            yield self.good_types()
            return
        u_decisions = self.u_existentials
        for bits in itertools.product((False, True), repeat=len(u_decisions)):
            valuation = {d: bit for d, bit in zip(u_decisions, bits)}
            candidates = [
                t
                for t in self.all_types()
                if all((d in t) == bit for d, bit in valuation.items())
                and all(
                    d.filler.nnf() not in t
                    for d, bit in valuation.items()
                    if not bit
                )
            ]
            good = self.good_types(candidates)
            # Every ∃U.C asserted true needs a witness type in the family.
            if good and all(
                (not bit) or any(d.filler.nnf() in t for t in good)
                for d, bit in valuation.items()
            ):
                yield good

    def uses_universal_role(self) -> bool:
        return bool(self.u_existentials) or any(
            isinstance(c, Forall) and c.role.is_universal() for c in self.closure
        )


# -- high-level reasoning services ------------------------------------------------------


def concept_satisfiable(concept: Concept, ontology: Ontology) -> bool:
    """Is the concept satisfiable w.r.t. the ontology (in some model of O)?"""
    system = TypeSystem(ontology, extra_concepts=[concept])
    target = concept.nnf()
    return any(
        any(target in t for t in family)
        for family in system.globally_coherent_families()
    )


def concept_subsumed(sub: Concept, sup: Concept, ontology: Ontology) -> bool:
    """Does ``O ⊨ sub ⊑ sup`` hold?"""
    return not concept_satisfiable(And(sub, Not(sup)), ontology)


def ontology_consistent(ontology: Ontology) -> bool:
    """Is the ontology satisfiable at all (has a non-empty model)?"""
    return concept_satisfiable(Top(), ontology)


class AboxTypeAssignment:
    """Search for assignments of good types to the elements of an instance.

    The search is phrased as a homomorphism problem into a *type template*
    whose elements are the good types, whose unary relations record concept
    membership and whose binary relations record role compatibility — exactly
    the template construction behind Theorem 4.6 — and is solved with the
    arc-consistency-based homomorphism solver of :mod:`repro.core`.
    """

    _ADOM = RelationSymbol("__abox_adom", 1)

    def __init__(
        self,
        ontology: Ontology,
        instance: Instance,
        extra_concepts: Iterable[Concept] = (),
    ) -> None:
        self.ontology = ontology
        self.instance = instance
        extra = list(extra_concepts)
        extra.extend(
            ConceptName(symbol.name)
            for symbol in instance.schema.concept_names
        )
        self.system = TypeSystem(ontology, extra_concepts=extra)
        self._elements = sorted(instance.active_domain, key=repr)
        self._concept_facts: dict[Element, set[ConceptName]] = {
            e: set() for e in self._elements
        }
        self._role_facts: list[tuple[Element, Element, Role]] = []
        for fact in instance:
            if fact.relation.arity == 1:
                name = ConceptName(fact.relation.name)
                if name in self.system.closure:
                    self._concept_facts[fact.arguments[0]].add(name)
            elif fact.relation.arity == 2:
                self._role_facts.append(
                    (fact.arguments[0], fact.arguments[1], Role(fact.relation.name))
                )
        self._role_names = sorted({role.name for _s, _t, role in self._role_facts})
        self._families = list(self.system.globally_coherent_families())
        self._base_template_facts = [
            list(self._template_for(family).facts) for family in self._families
        ]

    # -- template construction -----------------------------------------------------------

    def _template_for(self, family: Sequence[Type]) -> Instance:
        facts = [Fact(self._ADOM, (t,)) for t in family]
        concept_names = sorted(
            {c for c in self.system.closure if isinstance(c, ConceptName)},
            key=str,
        )
        for name in concept_names:
            symbol = RelationSymbol(name.name, 1)
            facts.extend(Fact(symbol, (t,)) for t in family if name in t)
        for role_name in self._role_names:
            symbol = RelationSymbol(role_name, 2)
            role = Role(role_name)
            for source in family:
                for target in family:
                    if self.system.compatible(source, target, role):
                        facts.append(Fact(symbol, (source, target)))
        return Instance(facts)

    def _data_for(
        self,
        forced: dict[Element, list[Concept]],
        forbidden: dict[Element, list[Concept]],
        family: Sequence[Type],
        template_facts: list[Fact],
    ) -> Instance:
        facts = [Fact(self._ADOM, (e,)) for e in self._elements]
        for element, names in self._concept_facts.items():
            facts.extend(Fact(RelationSymbol(n.name, 1), (element,)) for n in names)
        for source, target, role in self._role_facts:
            facts.append(Fact(RelationSymbol(role.name, 2), (source, target)))
        for index, (element, concepts_) in enumerate(sorted(forced.items(), key=repr)):
            for concept_index, concept_ in enumerate(concepts_):
                symbol = RelationSymbol(f"__forced_{index}_{concept_index}", 1)
                facts.append(Fact(symbol, (element,)))
                template_facts.extend(
                    Fact(symbol, (t,)) for t in family if concept_ in t
                )
        for index, (element, concepts_) in enumerate(sorted(forbidden.items(), key=repr)):
            for concept_index, concept_ in enumerate(concepts_):
                symbol = RelationSymbol(f"__forbidden_{index}_{concept_index}", 1)
                facts.append(Fact(symbol, (element,)))
                template_facts.extend(
                    Fact(symbol, (t,)) for t in family if concept_ not in t
                )
        return Instance(facts)

    # -- public API ------------------------------------------------------------------------

    def assignments(
        self,
        forced: dict[Element, Iterable[Concept]] | None = None,
        forbidden: dict[Element, Iterable[Concept]] | None = None,
    ) -> Iterator[dict[Element, Type]]:
        """Enumerate consistent type assignments.

        ``forced[e]`` lists closure concepts that must be *true* at ``e``;
        ``forbidden[e]`` lists closure concepts that must be *false* at ``e``.
        """
        from ..core.homomorphism import homomorphisms

        forced = {k: [c.nnf() for c in v] for k, v in (forced or {}).items()}
        forbidden = {k: [c.nnf() for c in v] for k, v in (forbidden or {}).items()}
        for family, base_facts in zip(self._families, self._base_template_facts):
            if not family:
                continue
            template_facts = list(base_facts)
            data = self._data_for(forced, forbidden, family, template_facts)
            template = Instance(template_facts)
            for hom in homomorphisms(data, template):
                yield {element: hom[element] for element in self._elements}

    def exists(self, forced=None, forbidden=None) -> bool:
        from ..core.homomorphism import has_homomorphism

        forced = {k: [c.nnf() for c in v] for k, v in (forced or {}).items()}
        forbidden = {k: [c.nnf() for c in v] for k, v in (forbidden or {}).items()}
        for family, base_facts in zip(self._families, self._base_template_facts):
            if not family:
                continue
            template_facts = list(base_facts)
            data = self._data_for(forced, forbidden, family, template_facts)
            if has_homomorphism(data, Instance(template_facts)):
                return True
        return False


def instance_consistent(instance: Instance, ontology: Ontology) -> bool:
    """Is the instance (viewed as an ABox under the standard name assumption)
    consistent with the ontology — i.e. extendable to a model of O?"""
    if not instance.active_domain:
        return True
    return AboxTypeAssignment(ontology, instance).exists()
