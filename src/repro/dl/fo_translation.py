"""The standard first-order translation of ALC-family concepts (Table II).

Each concept ``C`` translates to an FO formula ``C*(x)`` with one free
variable; an ontology translates to the set of sentences
``∀x (C*(x) → D*(x))`` for its concept inclusions, plus the obvious sentences
for role hierarchy, transitivity and functionality statements.  The
translation of an ``ALC`` ontology lands in UNFO and (via guarded
quantification) in GFO, which the tests verify against the fragment checkers.
"""

from __future__ import annotations

import itertools

from ..core.cq import Variable
from ..fo.formulas import (
    AndF,
    Equality,
    ExistsF,
    Falsity,
    ForallF,
    Formula,
    Implies,
    NotF,
    OrF,
    Truth,
    atom,
    conjunction,
)
from .concepts import (
    And,
    Bottom,
    Concept,
    ConceptName,
    Exists,
    Forall,
    Not,
    Or,
    Role,
    Top,
)
from .ontology import (
    ConceptInclusion,
    FunctionalRole,
    Ontology,
    RoleInclusion,
    TransitiveRole,
)

_FRESH = itertools.count()


def _fresh_variable() -> Variable:
    return Variable(f"y{next(_FRESH)}")


def _role_atom(role: Role, source: Variable, target: Variable) -> Formula:
    """The atom for an ``R``-edge from ``source`` to ``target`` (inverses swap)."""
    if role.is_universal():
        return Truth()
    if role.is_inverse():
        return atom(role.name, target, source, arity=2)
    return atom(role.name, source, target, arity=2)


def concept_to_fo(concept: Concept, free: Variable | None = None) -> Formula:
    """The translation ``C*(x)`` of Table II."""
    x = free if free is not None else Variable("x")
    if isinstance(concept, Top):
        return Truth()
    if isinstance(concept, Bottom):
        return Falsity()
    if isinstance(concept, ConceptName):
        return atom(concept.name, x, arity=1)
    if isinstance(concept, Not):
        return NotF(concept_to_fo(concept.operand, x))
    if isinstance(concept, And):
        return AndF(
            (concept_to_fo(concept.left, x), concept_to_fo(concept.right, x))
        )
    if isinstance(concept, Or):
        return OrF((concept_to_fo(concept.left, x), concept_to_fo(concept.right, x)))
    if isinstance(concept, Exists):
        y = _fresh_variable()
        if concept.role.is_universal():
            return ExistsF((y,), concept_to_fo(concept.filler, y))
        return ExistsF(
            (y,),
            AndF((_role_atom(concept.role, x, y), concept_to_fo(concept.filler, y))),
        )
    if isinstance(concept, Forall):
        y = _fresh_variable()
        if concept.role.is_universal():
            return ForallF((y,), concept_to_fo(concept.filler, y))
        return ForallF(
            (y,),
            Implies(_role_atom(concept.role, x, y), concept_to_fo(concept.filler, y)),
        )
    raise TypeError(f"unknown concept constructor: {concept!r}")


def inclusion_to_fo(inclusion: ConceptInclusion) -> Formula:
    """``∀x (C*(x) → D*(x))``."""
    x = Variable("x")
    return ForallF(
        (x,), Implies(concept_to_fo(inclusion.lhs, x), concept_to_fo(inclusion.rhs, x))
    )


def ontology_to_fo(ontology: Ontology) -> list[Formula]:
    """The FO theory ``O*`` of an ontology (one sentence per axiom)."""
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    sentences: list[Formula] = []
    for axiom in ontology:
        if isinstance(axiom, ConceptInclusion):
            sentences.append(inclusion_to_fo(axiom))
        elif isinstance(axiom, RoleInclusion):
            sentences.append(
                ForallF(
                    (x, y),
                    Implies(_role_atom(axiom.sub, x, y), _role_atom(axiom.sup, x, y)),
                )
            )
        elif isinstance(axiom, TransitiveRole):
            role = axiom.role
            sentences.append(
                ForallF(
                    (x, y, z),
                    Implies(
                        AndF((_role_atom(role, x, y), _role_atom(role, y, z))),
                        _role_atom(role, x, z),
                    ),
                )
            )
        elif isinstance(axiom, FunctionalRole):
            role = axiom.role
            sentences.append(
                ForallF(
                    (x, y, z),
                    Implies(
                        AndF((_role_atom(role, x, y), _role_atom(role, x, z))),
                        Equality(y, z),
                    ),
                )
            )
        else:
            raise TypeError(f"unknown axiom type: {axiom!r}")
    return sentences


def ontology_to_fo_sentence(ontology: Ontology) -> Formula:
    """The conjunction of all axiom translations."""
    return conjunction(ontology_to_fo(ontology))


def fo_models_ontology(instance, ontology: Ontology) -> bool:
    """Does a finite instance (viewed as a relational structure over its active
    domain) satisfy the FO translation of the ontology?

    This is the reference semantics used to cross-check the type-elimination
    reasoner and the bounded counter-model search.
    """
    sentence = ontology_to_fo_sentence(ontology)
    return sentence.evaluate(instance)
