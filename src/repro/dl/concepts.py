"""ALC concepts and the constructors of its standard extensions.

The concept language follows Section 2 of the paper::

    C, D ::= A | ⊤ | ⊥ | ¬C | C ⊓ D | C ⊔ D | ∃R.C | ∀R.C

Extensions add inverse roles (``ALCI``), the universal role (``ALCU``), role
hierarchies, transitive roles and functional roles at the ontology level.
Concepts are immutable and hashable; negation normal form, syntactic
subconcepts and size are provided because the translations of Section 3 are
phrased in terms of ``sub(O)`` and ``|O|``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import reduce
from typing import Iterable, Iterator

UNIVERSAL_ROLE_NAME = "__universal__"


@dataclass(frozen=True, order=True)
class Role:
    """A role: a role name, possibly inverted, or the universal role."""

    name: str
    inverse: bool = False

    def __post_init__(self) -> None:
        if self.is_universal() and self.inverse:
            raise ValueError("the universal role has no inverse")

    def inverted(self) -> "Role":
        if self.is_universal():
            raise ValueError("the universal role has no inverse")
        return Role(self.name, not self.inverse)

    def is_universal(self) -> bool:
        return self.name == UNIVERSAL_ROLE_NAME

    def is_inverse(self) -> bool:
        return self.inverse

    def __str__(self) -> str:
        if self.is_universal():
            return "U"
        return f"{self.name}-" if self.inverse else self.name


UNIVERSAL_ROLE = Role(UNIVERSAL_ROLE_NAME)


def role(name: str) -> Role:
    return Role(name)


def inverse(name_or_role: "str | Role") -> Role:
    if isinstance(name_or_role, Role):
        return name_or_role.inverted()
    return Role(name_or_role, inverse=True)


class Concept:
    """Base class for ALC-family concepts."""

    # -- constructors (operator sugar) ------------------------------------------

    def __and__(self, other: "Concept") -> "Concept":
        return And.of(self, other)

    def __or__(self, other: "Concept") -> "Concept":
        return Or.of(self, other)

    def __invert__(self) -> "Concept":
        return Not(self)

    def implies(self, other: "Concept"):
        """Build the concept inclusion ``self ⊑ other``."""
        from .ontology import ConceptInclusion

        return ConceptInclusion(self, other)

    # -- structural API -----------------------------------------------------------

    def children(self) -> tuple["Concept", ...]:
        return ()

    def subconcepts(self) -> Iterator["Concept"]:
        """All syntactic subconcepts, including the concept itself."""
        yield self
        for child in self.children():
            yield from child.subconcepts()

    def concept_names(self) -> set[str]:
        return {c.name for c in self.subconcepts() if isinstance(c, ConceptName)}

    def roles(self) -> set[Role]:
        result = set()
        for sub in self.subconcepts():
            if isinstance(sub, (Exists, Forall)):
                result.add(sub.role)
        return result

    def role_names(self) -> set[str]:
        return {r.name for r in self.roles() if not r.is_universal()}

    def size(self) -> int:
        """Syntactic size (symbols in the concept)."""
        return 1 + sum(child.size() for child in self.children())

    def uses_inverse_roles(self) -> bool:
        return any(r.is_inverse() for r in self.roles())

    def uses_universal_role(self) -> bool:
        return any(r.is_universal() for r in self.roles())

    # -- negation normal form ------------------------------------------------------

    def nnf(self) -> "Concept":
        """Negation normal form (negation only in front of concept names)."""
        raise NotImplementedError

    def negate(self) -> "Concept":
        """The NNF of the negation of this concept."""
        raise NotImplementedError


@dataclass(frozen=True)
class Top(Concept):
    def __str__(self) -> str:
        return "⊤"

    def nnf(self) -> Concept:
        return self

    def negate(self) -> Concept:
        return Bottom()


@dataclass(frozen=True)
class Bottom(Concept):
    def __str__(self) -> str:
        return "⊥"

    def nnf(self) -> Concept:
        return self

    def negate(self) -> Concept:
        return Top()


@dataclass(frozen=True)
class ConceptName(Concept):
    name: str

    def __str__(self) -> str:
        return self.name

    def nnf(self) -> Concept:
        return self

    def negate(self) -> Concept:
        return Not(self)


@dataclass(frozen=True)
class Not(Concept):
    operand: Concept

    def __str__(self) -> str:
        return f"¬{self.operand}"

    def children(self) -> tuple[Concept, ...]:
        return (self.operand,)

    def nnf(self) -> Concept:
        return self.operand.negate()

    def negate(self) -> Concept:
        return self.operand.nnf()


@dataclass(frozen=True)
class And(Concept):
    left: Concept
    right: Concept

    @classmethod
    def of(cls, *conjuncts: Concept) -> Concept:
        """Left-associated conjunction of one or more concepts."""
        if not conjuncts:
            return Top()
        return reduce(cls, conjuncts)

    def __str__(self) -> str:
        return f"({self.left} ⊓ {self.right})"

    def children(self) -> tuple[Concept, ...]:
        return (self.left, self.right)

    def nnf(self) -> Concept:
        return And(self.left.nnf(), self.right.nnf())

    def negate(self) -> Concept:
        return Or(self.left.negate(), self.right.negate())


@dataclass(frozen=True)
class Or(Concept):
    left: Concept
    right: Concept

    @classmethod
    def of(cls, *disjuncts: Concept) -> Concept:
        if not disjuncts:
            return Bottom()
        return reduce(cls, disjuncts)

    def __str__(self) -> str:
        return f"({self.left} ⊔ {self.right})"

    def children(self) -> tuple[Concept, ...]:
        return (self.left, self.right)

    def nnf(self) -> Concept:
        return Or(self.left.nnf(), self.right.nnf())

    def negate(self) -> Concept:
        return And(self.left.negate(), self.right.negate())


@dataclass(frozen=True)
class Exists(Concept):
    role: Role
    filler: Concept

    def __str__(self) -> str:
        return f"∃{self.role}.{self.filler}"

    def children(self) -> tuple[Concept, ...]:
        return (self.filler,)

    def nnf(self) -> Concept:
        return Exists(self.role, self.filler.nnf())

    def negate(self) -> Concept:
        return Forall(self.role, self.filler.negate())


@dataclass(frozen=True)
class Forall(Concept):
    role: Role
    filler: Concept

    def __str__(self) -> str:
        return f"∀{self.role}.{self.filler}"

    def children(self) -> tuple[Concept, ...]:
        return (self.filler,)

    def nnf(self) -> Concept:
        return Forall(self.role, self.filler.nnf())

    def negate(self) -> Concept:
        return Exists(self.role, self.filler.negate())


# -- convenience constructors -----------------------------------------------------

TOP = Top()
BOTTOM = Bottom()


def concept(name: str) -> ConceptName:
    return ConceptName(name)


def concepts(*names: str) -> tuple[ConceptName, ...]:
    return tuple(ConceptName(name) for name in names)


def exists(role_: "str | Role", filler: Concept | None = None) -> Exists:
    if isinstance(role_, str):
        role_ = Role(role_)
    return Exists(role_, filler if filler is not None else TOP)


def forall(role_: "str | Role", filler: Concept) -> Forall:
    if isinstance(role_, str):
        role_ = Role(role_)
    return Forall(role_, filler)


def big_and(parts: Iterable[Concept]) -> Concept:
    return And.of(*parts)


def big_or(parts: Iterable[Concept]) -> Concept:
    return Or.of(*parts)


def is_in_nnf(c: Concept) -> bool:
    """True if negation occurs only directly in front of concept names."""
    return not any(
        isinstance(sub, Not) and not isinstance(sub.operand, ConceptName)
        for sub in c.subconcepts()
    )
