"""Description-logic ontologies: axioms, signatures and dialect detection.

An ontology is a finite set of axioms.  Besides concept inclusions (``ALC``),
the paper's extensions contribute role hierarchy statements (``H``),
transitivity statements (``S``), functionality statements (``F``); inverse
roles (``I``) and the universal role (``U``) appear inside concepts.  The
``dialect`` of an ontology is the standard name of the smallest such logic
containing it, e.g. ``ALCHI`` or ``SHIU`` (Section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..core.schema import RelationSymbol, Schema
from .concepts import Concept, Role, Top, is_in_nnf


class Axiom:
    """Base class of ontology axioms."""

    def size(self) -> int:
        raise NotImplementedError

    def concept_names(self) -> set[str]:
        return set()

    def role_names(self) -> set[str]:
        return set()


@dataclass(frozen=True)
class ConceptInclusion(Axiom):
    """A concept inclusion ``C ⊑ D``."""

    lhs: Concept
    rhs: Concept

    def __str__(self) -> str:
        return f"{self.lhs} ⊑ {self.rhs}"

    def size(self) -> int:
        return self.lhs.size() + self.rhs.size() + 1

    def concept_names(self) -> set[str]:
        return self.lhs.concept_names() | self.rhs.concept_names()

    def role_names(self) -> set[str]:
        return self.lhs.role_names() | self.rhs.role_names()

    def roles(self) -> set[Role]:
        return self.lhs.roles() | self.rhs.roles()


@dataclass(frozen=True)
class RoleInclusion(Axiom):
    """A role hierarchy statement ``R ⊑ S`` (roles may be inverse roles)."""

    sub: Role
    sup: Role

    def __str__(self) -> str:
        return f"{self.sub} ⊑ {self.sup}"

    def size(self) -> int:
        return 3

    def role_names(self) -> set[str]:
        return {self.sub.name, self.sup.name} - {"__universal__"}


@dataclass(frozen=True)
class TransitiveRole(Axiom):
    """A transitivity statement ``trans(R)``."""

    role: Role

    def __str__(self) -> str:
        return f"trans({self.role})"

    def size(self) -> int:
        return 2

    def role_names(self) -> set[str]:
        return {self.role.name}


@dataclass(frozen=True)
class FunctionalRole(Axiom):
    """A functionality statement ``func(R)``."""

    role: Role

    def __str__(self) -> str:
        return f"func({self.role})"

    def size(self) -> int:
        return 2

    def role_names(self) -> set[str]:
        return {self.role.name}


class Ontology:
    """A finite set of DL axioms."""

    def __init__(self, axioms: Iterable[Axiom] = ()) -> None:
        self.axioms: tuple[Axiom, ...] = tuple(axioms)
        for axiom in self.axioms:
            if not isinstance(axiom, Axiom):
                raise TypeError(f"not an axiom: {axiom!r}")

    # -- accessors ------------------------------------------------------------------

    def __iter__(self) -> Iterator[Axiom]:
        return iter(self.axioms)

    def __len__(self) -> int:
        return len(self.axioms)

    def __repr__(self) -> str:
        return "Ontology([\n  " + ",\n  ".join(str(a) for a in self.axioms) + "\n])"

    def concept_inclusions(self) -> list[ConceptInclusion]:
        return [a for a in self.axioms if isinstance(a, ConceptInclusion)]

    def role_inclusions(self) -> list[RoleInclusion]:
        return [a for a in self.axioms if isinstance(a, RoleInclusion)]

    def transitive_roles(self) -> set[str]:
        return {a.role.name for a in self.axioms if isinstance(a, TransitiveRole)}

    def functional_roles(self) -> set[str]:
        return {a.role.name for a in self.axioms if isinstance(a, FunctionalRole)}

    def size(self) -> int:
        return sum(a.size() for a in self.axioms)

    def extended(self, axioms: Iterable[Axiom]) -> "Ontology":
        return Ontology(list(self.axioms) + list(axioms))

    # -- signature -------------------------------------------------------------------

    def concept_names(self) -> set[str]:
        result: set[str] = set()
        for axiom in self.axioms:
            result |= axiom.concept_names()
        return result

    def role_names(self) -> set[str]:
        result: set[str] = set()
        for axiom in self.axioms:
            result |= axiom.role_names()
        return result

    def signature(self) -> Schema:
        """The set ``sig(O)`` of relation symbols used in the ontology."""
        return Schema.binary(self.concept_names(), self.role_names())

    def roles(self) -> set[Role]:
        result: set[Role] = set()
        for axiom in self.axioms:
            if isinstance(axiom, ConceptInclusion):
                result |= axiom.roles()
            elif isinstance(axiom, RoleInclusion):
                result |= {axiom.sub, axiom.sup}
            elif isinstance(axiom, (TransitiveRole, FunctionalRole)):
                result.add(axiom.role)
        return result

    # -- dialect detection --------------------------------------------------------------

    def uses_inverse_roles(self) -> bool:
        return any(r.is_inverse() for r in self.roles())

    def uses_universal_role(self) -> bool:
        return any(r.is_universal() for r in self.roles())

    def uses_role_hierarchies(self) -> bool:
        return bool(self.role_inclusions())

    def uses_transitive_roles(self) -> bool:
        return bool(self.transitive_roles())

    def uses_functional_roles(self) -> bool:
        return bool(self.functional_roles())

    def dialect(self) -> str:
        """The standard name of the smallest dialect containing this ontology.

        ``S`` abbreviates ``ALC`` with transitive roles; the letters ``H``,
        ``I``, ``F`` and ``U`` are appended in that order, matching the paper's
        naming scheme (``SHIU``, ``ALCHIU``, ``ALCF``, ...).
        """
        base = "S" if self.uses_transitive_roles() else "ALC"
        name = base
        if self.uses_role_hierarchies():
            name += "H"
        if self.uses_inverse_roles():
            name += "I"
        if self.uses_functional_roles():
            name += "F"
        if self.uses_universal_role():
            name += "U"
        return name

    def is_in_dialect(self, dialect: str) -> bool:
        """Is the ontology expressible in the given dialect (by syntax)?"""
        allowed_trans = dialect.startswith("S")
        rest = dialect[1:] if allowed_trans else dialect.removeprefix("ALC")
        if self.uses_transitive_roles() and not allowed_trans:
            return False
        if self.uses_role_hierarchies() and "H" not in rest:
            return False
        if self.uses_inverse_roles() and "I" not in rest:
            return False
        if self.uses_functional_roles() and "F" not in rest:
            return False
        if self.uses_universal_role() and "U" not in rest:
            return False
        return True

    def is_in_nnf(self) -> bool:
        return all(
            is_in_nnf(ci.lhs) and is_in_nnf(ci.rhs) for ci in self.concept_inclusions()
        )

    # -- normalisation ---------------------------------------------------------------------

    def normalised_inclusions(self) -> list[ConceptInclusion]:
        """Concept inclusions rewritten as ``⊤ ⊑ nnf(¬C ⊔ D)``-style implications.

        The reasoner works with the original ``C ⊑ D`` form directly; this view
        is used where a single NNF concept per axiom is more convenient.
        """
        from .concepts import Or

        return [
            ConceptInclusion(Top(), Or(ci.lhs.negate(), ci.rhs.nnf()))
            for ci in self.concept_inclusions()
        ]

    # -- role hierarchy reasoning -------------------------------------------------------------

    def super_roles(self, role_: Role) -> frozenset[Role]:
        """The reflexive-transitive closure of the role hierarchy above ``role_``.

        Inverse closure is respected: ``R ⊑ S`` implies ``R⁻ ⊑ S⁻``.
        """
        inclusions = set()
        for axiom in self.role_inclusions():
            inclusions.add((axiom.sub, axiom.sup))
            if not axiom.sub.is_universal() and not axiom.sup.is_universal():
                inclusions.add((axiom.sub.inverted(), axiom.sup.inverted()))
        closure = {role_}
        changed = True
        while changed:
            changed = False
            for sub, sup in inclusions:
                if sub in closure and sup not in closure:
                    closure.add(sup)
                    changed = True
        return frozenset(closure)

    def sub_roles(self, role_: Role) -> frozenset[Role]:
        """All roles whose super-role closure contains ``role_``."""
        candidates = set(self.roles()) | {role_}
        plain = {Role(r.name) for r in candidates if not r.is_universal()}
        candidates |= plain | {r.inverted() for r in plain}
        return frozenset(r for r in candidates if role_ in self.super_roles(r))


def subconcepts_of(ontology: Ontology, extra: Iterable[Concept] = ()) -> set[Concept]:
    """The set ``sub(O)`` of subconcepts occurring in the ontology (plus extras)."""
    result: set[Concept] = set()
    for inclusion in ontology.concept_inclusions():
        result.update(inclusion.lhs.subconcepts())
        result.update(inclusion.rhs.subconcepts())
    for concept_ in extra:
        result.update(concept_.subconcepts())
    return result


def data_schema_of(ontology: Ontology, *queries) -> Schema:
    """The full binary schema ``sig(O) ∪ sig(q)`` used by an OMQ by default."""
    concept_names = set(ontology.concept_names())
    role_names = set(ontology.role_names())
    for query in queries:
        for symbol in query.schema():
            if symbol.arity == 1:
                concept_names.add(symbol.name)
            elif symbol.arity == 2:
                role_names.add(symbol.name)
    return Schema.binary(concept_names, role_names)


def goal_symbol(name: str, arity: int) -> RelationSymbol:
    return RelationSymbol(name, arity)
