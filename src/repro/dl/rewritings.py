"""Equivalence-preserving ontology rewritings used in Section 3.1.

* :func:`eliminate_inverse_roles` — the folklore translation used in the proof
  of Theorem 3.6: inverse roles ``R⁻`` are replaced by fresh role names
  ``R_inv`` whose interaction with ``R`` is axiomatised by
  ``C' ⊑ ∀R_inv.∃R.C'`` / ``C' ⊑ ∀R.∃R_inv.C'`` for the existential
  restrictions in the ontology.  UCQ atoms ``R(x, y)`` are replaced by the
  disjunction ``R(x, y) ∨ R_inv(y, x)`` (distributed into a UCQ).
* :func:`eliminate_transitive_roles` — the proof of Theorem 3.11: each
  ``trans(R)`` is replaced by ``∀R.C ⊑ ∀R.∀R.C`` for every ``C ∈ sub(O)``
  (complete for atomic queries).
* :func:`eliminate_role_hierarchies` — for atomic queries, ``R ⊑ S`` can be
  compiled away by adding ``∀S.C ⊑ ∀R.C`` for each ``C ∈ sub(O)``
  (Theorem 3.11, second bullet).

The certain answers over the *data schema* are preserved by each rewriting;
fresh symbols never belong to the data schema.
"""

from __future__ import annotations

import itertools

from ..core.cq import Atom, ConjunctiveQuery, UnionOfConjunctiveQueries, as_ucq
from ..core.schema import RelationSymbol
from .concepts import (
    And,
    Bottom,
    Concept,
    ConceptName,
    Exists,
    Forall,
    Not,
    Or,
    Role,
    Top,
)
from .ontology import ConceptInclusion, Ontology, RoleInclusion, TransitiveRole
from .reasoner import negation_closure


def _inverse_name(role_name: str) -> str:
    return f"{role_name}__inv"


def _replace_inverse_roles(concept: Concept) -> Concept:
    """Replace every inverse role ``R⁻`` inside a concept by the fresh name ``R_inv``."""
    if isinstance(concept, (Top, Bottom, ConceptName)):
        return concept
    if isinstance(concept, Not):
        return Not(_replace_inverse_roles(concept.operand))
    if isinstance(concept, And):
        return And(
            _replace_inverse_roles(concept.left), _replace_inverse_roles(concept.right)
        )
    if isinstance(concept, Or):
        return Or(
            _replace_inverse_roles(concept.left), _replace_inverse_roles(concept.right)
        )
    if isinstance(concept, Exists):
        role = concept.role
        new_role = Role(_inverse_name(role.name)) if role.is_inverse() else role
        return Exists(new_role, _replace_inverse_roles(concept.filler))
    if isinstance(concept, Forall):
        role = concept.role
        new_role = Role(_inverse_name(role.name)) if role.is_inverse() else role
        return Forall(new_role, _replace_inverse_roles(concept.filler))
    raise TypeError(f"unknown concept constructor: {concept!r}")


def eliminate_inverse_roles(
    ontology: Ontology,
    query: "ConjunctiveQuery | UnionOfConjunctiveQueries | None" = None,
) -> tuple[Ontology, UnionOfConjunctiveQueries | None]:
    """Theorem 3.6 (Point 1): rewrite an ALCHI(U) OMQ into an ALCH(U) OMQ.

    Returns the rewritten ontology and, when a UCQ is supplied, the rewritten
    query with every role atom ``R(x, y)`` replaced by the two orientations
    ``R(x, y)`` and ``R_inv(y, x)`` (conjunction distributed over disjunction).
    Role-hierarchy statements are closed under inverse first.
    """
    # Close role hierarchy statements under inverse, then replace R⁻ by R_inv.
    new_axioms: list = []
    role_inclusions = list(ontology.role_inclusions())
    closed_inclusions = set()
    for axiom in role_inclusions:
        closed_inclusions.add((axiom.sub, axiom.sup))
        if not axiom.sub.is_universal() and not axiom.sup.is_universal():
            closed_inclusions.add((axiom.sub.inverted(), axiom.sup.inverted()))

    def translate_role(role: Role) -> Role:
        if role.is_inverse():
            return Role(_inverse_name(role.name))
        return role

    for sub, sup in sorted(closed_inclusions, key=str):
        new_axioms.append(RoleInclusion(translate_role(sub), translate_role(sup)))

    closure = negation_closure(
        itertools.chain.from_iterable(
            (ci.lhs.nnf(), ci.rhs.nnf()) for ci in ontology.concept_inclusions()
        )
    )
    for inclusion in ontology.concept_inclusions():
        new_axioms.append(
            ConceptInclusion(
                _replace_inverse_roles(inclusion.lhs),
                _replace_inverse_roles(inclusion.rhs),
            )
        )
    # Synchronise R and R_inv on the subconcepts of O (folklore; see proof of
    # Theorem 3.6): C' ⊑ ∀R_inv.∃R.C' and C' ⊑ ∀R.∃R_inv.C' for ∃R.C / ∃R⁻.C in sub(O).
    inverse_role_names = sorted(
        {
            r.name
            for ci in ontology.concept_inclusions()
            for r in ci.roles()
            if r.is_inverse()
        }
        | {
            r.name
            for r in ontology.roles()
            if r.is_inverse()
        }
    )
    for existential in sorted(
        (c for c in closure if isinstance(c, Exists)), key=str
    ):
        role = existential.role
        if role.is_universal():
            continue
        filler = _replace_inverse_roles(existential.filler)
        plain = Role(role.name)
        inv = Role(_inverse_name(role.name))
        if role.is_inverse():
            # ∃R⁻.C in sub(O):  C' ⊑ ∀R.∃R_inv.C'
            new_axioms.append(
                ConceptInclusion(filler, Forall(plain, Exists(inv, filler)))
            )
        else:
            # ∃R.C in sub(O):  C' ⊑ ∀R_inv.∃R.C'
            if role.name in inverse_role_names or _uses_role_inverse(ontology, role.name):
                new_axioms.append(
                    ConceptInclusion(filler, Forall(inv, Exists(plain, filler)))
                )
    for transitive in ontology.transitive_roles():
        new_axioms.append(TransitiveRole(Role(transitive)))
    for _functional in ontology.functional_roles():
        raise ValueError("inverse-role elimination does not support functional roles")

    rewritten_query = None
    if query is not None:
        rewritten_query = _rewrite_query_for_inverse(as_ucq(query), inverse_role_names)
    return Ontology(new_axioms), rewritten_query


def _uses_role_inverse(ontology: Ontology, role_name: str) -> bool:
    return any(r.is_inverse() and r.name == role_name for r in ontology.roles())


def _rewrite_query_for_inverse(
    query: UnionOfConjunctiveQueries, inverse_role_names: list[str]
) -> UnionOfConjunctiveQueries:
    """Replace each role atom R(x,y) over a role with inverse usage by the two
    orientations and distribute conjunction over disjunction."""
    inverse_set = set(inverse_role_names)
    disjuncts: list[ConjunctiveQuery] = []
    for disjunct in query.disjuncts:
        atom_options: list[list[Atom]] = []
        for atom in sorted(disjunct.atoms, key=str):
            options = [atom]
            if atom.relation.arity == 2 and atom.relation.name in inverse_set:
                flipped = Atom(
                    RelationSymbol(_inverse_name(atom.relation.name), 2),
                    (atom.arguments[1], atom.arguments[0]),
                )
                options = [atom, flipped]
            atom_options.append(options)
        for selection in itertools.product(*atom_options):
            disjuncts.append(
                ConjunctiveQuery(disjunct.answer_variables, selection)
            )
    return UnionOfConjunctiveQueries(disjuncts)


def eliminate_transitive_roles(ontology: Ontology) -> Ontology:
    """Theorem 3.11: compile ``trans(R)`` away (complete for atomic queries).

    Each transitivity statement is replaced by the concept inclusions
    ``∀R.C ⊑ ∀R.∀R.C`` for every ``C ∈ sub(O)``.
    """
    transitive = ontology.transitive_roles()
    if not transitive:
        return ontology
    closure = negation_closure(
        itertools.chain.from_iterable(
            (ci.lhs.nnf(), ci.rhs.nnf()) for ci in ontology.concept_inclusions()
        )
    )
    new_axioms = [a for a in ontology.axioms if not isinstance(a, TransitiveRole)]
    for role_name in sorted(transitive):
        role = Role(role_name)
        for concept in sorted(closure, key=str):
            new_axioms.append(
                ConceptInclusion(Forall(role, concept), Forall(role, Forall(role, concept)))
            )
    return Ontology(new_axioms)


def eliminate_role_hierarchies(ontology: Ontology) -> Ontology:
    """Theorem 3.11 (second bullet): compile ``R ⊑ S`` away for atomic queries.

    Each role inclusion is replaced by ``∀S.C ⊑ ∀R.C`` for every ``C ∈ sub(O)``.
    Complete for AQ/BAQ answering; *not* complete for UCQs with role atoms over
    the super-roles, so UCQ pipelines keep role hierarchies instead.
    """
    inclusions = ontology.role_inclusions()
    if not inclusions:
        return ontology
    closure = negation_closure(
        itertools.chain.from_iterable(
            (ci.lhs.nnf(), ci.rhs.nnf()) for ci in ontology.concept_inclusions()
        )
    )
    new_axioms = [a for a in ontology.axioms if not isinstance(a, RoleInclusion)]
    for axiom in inclusions:
        if axiom.sub.is_inverse() or axiom.sup.is_inverse():
            raise ValueError("eliminate inverse roles before role hierarchies")
        for concept in sorted(closure, key=str):
            new_axioms.append(
                ConceptInclusion(
                    Forall(axiom.sup, concept), Forall(axiom.sub, concept)
                )
            )
    return Ontology(new_axioms)


def shi_to_alch(ontology: Ontology) -> Ontology:
    """Reduce an SHI ontology to ALCH, as in the proof of Theorem 3.11:
    first eliminate transitivity, then inverse roles."""
    without_transitivity = eliminate_transitive_roles(ontology)
    rewritten, _ = eliminate_inverse_roles(without_transitivity)
    return rewritten


def shi_to_alc(ontology: Ontology) -> Ontology:
    """Reduce an SHI ontology to plain ALC (for atomic queries)."""
    return eliminate_role_hierarchies(shi_to_alch(ontology))
