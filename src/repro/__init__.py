"""repro — a reproduction of "Ontology-Based Data Access: A Study through
Disjunctive Datalog, CSP, and MMSNP" (Bienvenu, ten Cate, Lutz, Wolter).

The package is organised into substrates (``core``, ``datalog``, ``dl``,
``fo``, ``csp``, ``mmsnp``, ``fpp``), the paper's primary contribution
(``omq``, ``translations``, ``obda``) and workload generators (``workloads``).
See DESIGN.md for the full inventory and EXPERIMENTS.md for the experiment
index.
"""

from .core import (
    Atom,
    ConjunctiveQuery,
    Fact,
    Instance,
    MarkedInstance,
    RelationSymbol,
    Schema,
    UnionOfConjunctiveQueries,
    Variable,
)
from .dl import (
    ConceptInclusion,
    ConceptName,
    Exists,
    Forall,
    FunctionalRole,
    Ontology,
    Role,
    RoleInclusion,
    TransitiveRole,
)
from .omq import OntologyMediatedQuery, certain_answers, is_certain_answer

__version__ = "1.0.0"

__all__ = [
    "Atom",
    "ConceptInclusion",
    "ConceptName",
    "ConjunctiveQuery",
    "Exists",
    "Fact",
    "Forall",
    "FunctionalRole",
    "Instance",
    "MarkedInstance",
    "Ontology",
    "OntologyMediatedQuery",
    "RelationSymbol",
    "Role",
    "RoleInclusion",
    "Schema",
    "TransitiveRole",
    "UnionOfConjunctiveQueries",
    "Variable",
    "certain_answers",
    "is_certain_answer",
    "__version__",
]
