"""The versioned ``explain()`` contract of the serving sessions.

``ObdaSession.explain()`` and ``ShardedObdaSession.explain()`` return one
JSON-able report per session.  Through v1 the report was an *implicit*
contract — a flat ``{query_name: plan-describe + live counters}`` dict that
every consumer (tests, benchmarks, the docs' worked examples) shaped by
convention.  Adaptive re-planning made the report load-bearing: the
acceptance gates of ``benchmarks/bench_adaptive_routing.py`` read the
re-plan history out of it, so the shape is now **versioned and validated**:

* every report carries ``schema == "obda-explain/v2"``;
* per-query plan explanations moved under ``"queries"`` (the v1 flat
  layout is gone — consumers migrate by inserting one key lookup);
* a top-level ``"adaptive"`` block records whether live re-planning is
  on, every swap taken so far (query-tagged, event-ordered), the
  per-query controller state, and the rationale when adaptivity was
  requested but denied (forced tier pins a session);
* reports produced through the multi-tenant serving frontend
  (:meth:`repro.service.frontend.Frontend.explain`) additionally carry an
  *optional* top-level ``"frontend"`` block — per-tenant traffic and
  latency quantiles, admission-control shed counts with rationales,
  group-commit batching counters, and snapshot-read freshness — shaped as
  :class:`FrontendBlock` and validated here when present.

:func:`validate_explain` is the executable contract — it returns the list
of shape violations (empty = valid) and is asserted by the test-suite and
the benchmark harness on every report they touch.
"""

from __future__ import annotations

from typing import TypedDict

#: The schema tag every session ``explain()`` report carries.
EXPLAIN_SCHEMA = "obda-explain/v2"


class ReplanRecord(TypedDict, total=False):
    """One committed tier swap, as recorded in ``adaptive["replans"]``."""

    event: int
    epoch: int
    from_tier: int
    to_tier: int
    trigger_mix: dict
    predicted_cost: dict
    swap_s: float
    query: str
    shard: int


class AdaptiveBlock(TypedDict, total=False):
    """The top-level ``"adaptive"`` section of an explain report."""

    enabled: bool
    replans: list
    queries: dict
    reason: str


class FrontendBlock(TypedDict, total=False):
    """The optional top-level ``"frontend"`` section of an explain report.

    Emitted only by frontend-mediated reports; each section is a dict:

    * ``tenants`` — per-tenant ``{tier, queries, writes, rejected,
      degraded, timeouts, p50_s, p99_s, last_rejection}``;
    * ``admission`` — ``{max_pending, degrade_limit, rejected, degraded,
      by_tier}`` shed counters;
    * ``batching`` — ``{max_batch, max_delay_s, flushes, ops_batched,
      mean_batch, rollbacks, withdrawn, reasons}`` group-commit counters;
    * ``snapshots`` — ``{reads, fresh, stale, version}`` read freshness.
    """

    tenants: dict
    admission: dict
    batching: dict
    snapshots: dict


class ExplainReport(TypedDict, total=False):
    """The ``obda-explain/v2`` top-level shape."""

    schema: str
    queries: dict
    adaptive: AdaptiveBlock
    frontend: FrontendBlock


#: Keys every committed re-plan record must carry.
_REPLAN_KEYS = ("event", "epoch", "from_tier", "to_tier", "trigger_mix", "swap_s")

#: Required keys per section of the optional ``"frontend"`` block.
_FRONTEND_SECTIONS: dict[str, tuple[str, ...]] = {
    "tenants": (),
    "admission": ("max_pending", "degrade_limit", "rejected", "degraded"),
    "batching": ("max_batch", "max_delay_s", "flushes", "ops_batched", "reasons"),
    "snapshots": ("reads", "fresh", "stale", "version"),
}

#: Keys every per-tenant record of ``frontend["tenants"]`` must carry.
_TENANT_KEYS = ("tier", "queries", "writes", "rejected", "degraded")


def _validate_frontend(frontend: dict, problems: list[str]) -> None:
    for section, keys in _FRONTEND_SECTIONS.items():
        block = frontend.get(section)
        if not isinstance(block, dict):
            problems.append(f"frontend.{section} must be a dict")
            continue
        for key in keys:
            if key not in block:
                problems.append(f"frontend.{section} missing {key!r}")
    tenants = frontend.get("tenants")
    if isinstance(tenants, dict):
        for name, record in tenants.items():
            if not isinstance(record, dict):
                problems.append(f"frontend.tenants[{name!r}] must be a dict")
                continue
            for key in _TENANT_KEYS:
                if key not in record:
                    problems.append(f"frontend.tenants[{name!r}] missing {key!r}")
            if record.get("rejected") and not record.get("last_rejection"):
                problems.append(
                    f"frontend.tenants[{name!r}] rejected without a rationale"
                )
    batching = frontend.get("batching")
    if isinstance(batching, dict) and isinstance(batching.get("reasons"), dict):
        flushes = batching.get("flushes")
        spread = sum(batching["reasons"].values())
        if isinstance(flushes, int) and spread != flushes:
            problems.append(
                f"frontend.batching reasons sum to {spread}, not {flushes}"
            )


def validate_explain(report: dict) -> list[str]:
    """Shape-check an explain report; returns the violations (empty = ok)."""
    problems: list[str] = []
    if not isinstance(report, dict):
        return [f"report must be a dict, got {type(report).__name__}"]
    if report.get("schema") != EXPLAIN_SCHEMA:
        problems.append(
            f"schema must be {EXPLAIN_SCHEMA!r}, got {report.get('schema')!r}"
        )
    queries = report.get("queries")
    if not isinstance(queries, dict) or not queries:
        problems.append("queries must be a non-empty dict")
        queries = {}
    for name, info in queries.items():
        if not isinstance(info, dict):
            problems.append(f"queries[{name!r}] must be a dict")
            continue
        for key in ("tier", "tier_name", "live"):
            if key not in info:
                problems.append(f"queries[{name!r}] missing {key!r}")
        live = info.get("live")
        if isinstance(live, dict) and "rollup" in live:
            rollup = live["rollup"]
            if (
                not isinstance(rollup, dict)
                or rollup.get("schema") != "obda-session-rollup/v1"
            ):
                problems.append(f"queries[{name!r}] live.rollup schema mismatch")
    frontend = report.get("frontend")
    if frontend is not None:
        if not isinstance(frontend, dict):
            problems.append("frontend must be a dict when present")
        else:
            _validate_frontend(frontend, problems)
    adaptive = report.get("adaptive")
    if not isinstance(adaptive, dict):
        problems.append("adaptive must be a dict")
        return problems
    if not isinstance(adaptive.get("enabled"), bool):
        problems.append("adaptive.enabled must be a bool")
    replans = adaptive.get("replans")
    if not isinstance(replans, list):
        problems.append("adaptive.replans must be a list")
        replans = []
    for index, record in enumerate(replans):
        if not isinstance(record, dict):
            problems.append(f"adaptive.replans[{index}] must be a dict")
            continue
        for key in _REPLAN_KEYS:
            if key not in record:
                problems.append(f"adaptive.replans[{index}] missing {key!r}")
        if "query" not in record:
            problems.append(f"adaptive.replans[{index}] missing 'query' tag")
    per_query = adaptive.get("queries")
    if not isinstance(per_query, dict):
        problems.append("adaptive.queries must be a dict")
        per_query = {}
    for name, block in per_query.items():
        if not isinstance(block, dict) or "enabled" not in block:
            problems.append(f"adaptive.queries[{name!r}] missing 'enabled'")
    if adaptive.get("enabled") is False and replans:
        problems.append("adaptive disabled yet replans recorded")
    return problems
