"""Compiled OBDA serving sessions.

An :class:`ObdaSession` is the unit of deployment of the serving layer: a
*workload* of ontology-mediated queries is compiled once — DL ontology plus
UCQ into MDDlog through the Theorem 3.3 translation
(:func:`repro.omq.certain.compile_to_mddlog`), or any disjunctive datalog
program used directly — and the session then answers every query against a
single mutable data instance that evolves fact-by-fact.

Each compiled query is routed by the tiered planner
(:mod:`repro.planner`) to persistent evaluation state matching its
:class:`~repro.planner.QueryPlan`:

* tier 0 (nonrecursive disjunction-free) needs *no* state at all: the goal
  and constraints are unfolded into UCQs once, and every query is a join
  against the live instance indexes (:class:`_UcqState`);
* tier 1 (recursive disjunction-free) keeps a materialized least fixpoint
  maintained by semi-naive insertion and DRed deletion
  (:class:`repro.service.delta.IncrementalFixpoint`), with constraints
  checked against the minimal model at query time;
* tier 2 (genuinely disjunctive) keeps a live CDCL solver fed by
  support-guarded delta grounding
  (:class:`repro.service.delta.DeltaGrounder`): insertions push only the
  newly justified clauses, deletions retract the facts' guard assumptions,
  and certain answers are assumption queries against the warm solver with
  all learned clauses intact.

Answers after every update are identical to a from-scratch recomputation
over the current instance (the streaming test-suite cross-validates this on
randomized update streams).

Sessions accept a :class:`~repro.planner.PlanPolicy` carrying every
planning knob; with ``adaptive=`` enabled the session live-re-plans: an
:class:`~repro.planner.AdaptiveController` per query watches the rolling
read/insert/delete mix, and when the predicted cost crosses the policy's
hysteresis gates the serving state is rebuilt on the cheaper tier from the
current frozen instance — warm join-plan caches transplanted — without
dropping an update or an answer (``docs/adaptive.md``).
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ..analysis import vet_program
from ..core.instance import Fact, Instance
from ..datalog.ddlog import DisjunctiveDatalogProgram
from ..engine.sat import ClauseSolver
from ..obs import telemetry as _telemetry
from ..omq.query import OntologyMediatedQuery
from ..planner import (
    TIER_FIXPOINT,
    TIER_REWRITE,
    QueryPlan,
    plan_for_tier,
    plan_program,
    ucq_candidate_certain,
    ucq_certain_answers,
    unfolding_consistent,
)
from ..planner.adaptive import AdaptiveController, candidate_plans
from ..planner.execute import (
    constraint_fires,
    fixpoint_program,
    vacuous_answers,
    vacuous_decisions,
)
from ..planner.policy import _UNSET, PlanPolicy, resolve_policy
from .delta import DeltaGrounder, IncrementalFixpoint, fact_guard
from .explain import EXPLAIN_SCHEMA

DEFAULT_QUERY = "q"


def _compile(entry) -> DisjunctiveDatalogProgram:
    if isinstance(entry, DisjunctiveDatalogProgram):
        return entry
    if isinstance(entry, OntologyMediatedQuery):
        from ..omq.certain import compile_to_mddlog

        return compile_to_mddlog(entry)
    raise TypeError(
        f"workload entries must be OMQs or DDlog programs, got {entry!r}"
    )


class _SatState:
    """Tier 2: guarded ground program + persistent CDCL solver for one query."""

    def __init__(self, plan: QueryPlan) -> None:
        self.plan = plan
        self.program = plan.program
        self.grounder = DeltaGrounder(self.program)
        self.solver = ClauseSolver()
        for negative, positive in self.grounder.bootstrap_clauses():
            self.solver.add_clause(negative, positive)

    def insert(self, old: Instance, delta: Instance, new: Instance) -> int:
        clauses = self.grounder.insert(old, delta, new)
        for negative, positive in clauses:
            self.solver.add_clause(negative, positive)
        for fact in delta:
            self.solver.assume(fact_guard(fact))
        return len(clauses)

    def delete(self, removed: Iterable[Fact]) -> None:
        for fact in removed:
            self.solver.retract_assumption(fact_guard(fact))

    def certain_answers(self, instance: Instance) -> frozenset[tuple]:
        domain = sorted(instance.active_domain, key=repr)
        candidates = list(itertools.product(domain, repeat=self.program.arity))
        decided = self.decide_batch(instance, candidates)
        return frozenset(c for c, certain in decided.items() if certain)

    def is_consistent(self, instance: Instance) -> bool:
        return self.solver.solve()

    def decide_batch(
        self, instance: Instance, candidates: Sequence[tuple]
    ) -> dict[tuple, bool]:
        goal = self.program.goal_relation
        adom = instance.active_domain
        if not self.solver.solve():
            # No model extends the data at all: every tuple over the active
            # domain is vacuously certain (mirrors
            # GroundProgram.certain_answers, which only enumerates adom
            # tuples; candidates outside it are never answers).
            return vacuous_decisions(instance, candidates)
        model = self.solver.last_model
        decided: dict[tuple, bool] = {}
        for candidate in candidates:
            if any(value not in adom for value in candidate):
                decided[candidate] = False
                continue
            atom = (goal, candidate)
            if not model.get(atom, False):
                # The screening model is already a counter-model.
                decided[candidate] = False
                continue
            decided[candidate] = not self.solver.solve(false_atoms=[atom])
        return decided

    def is_certain(self, instance: Instance, answer: tuple) -> bool:
        return self.decide_batch(instance, [answer])[answer]


class _FixpointState:
    """Tier 1: materialized incremental fixpoint for a disjunction-free query.

    Constraints (empty-headed rules) are checked against the materialized
    minimal model at query time: rule bodies are positive, so a constraint
    body satisfied in the least fixpoint is satisfied in *every* model, in
    which case no model exists and every tuple over the active domain is
    vacuously certain (the same convention as the SAT tier).
    """

    def __init__(self, plan: QueryPlan, instance: Instance | None = None) -> None:
        self.plan = plan
        self.program = plan.program
        # Constraints of the program the tier actually executes: a semantic
        # canonical-datalog rewriting has none (template incompatibilities
        # are already encoded in its image-set rules).
        self.constraints = [
            rule
            for rule in plan.execution_program.rules
            if rule.is_constraint()
        ]
        self.fixpoint = IncrementalFixpoint(fixpoint_program(plan), instance=instance)

    def insert(self, old: Instance, delta: Instance, new: Instance) -> int:
        self.fixpoint.insert(delta)
        return 0

    def delete(self, removed: Iterable[Fact]) -> None:
        self.fixpoint.delete(removed)

    def is_consistent(self, instance: Instance) -> bool:
        return not any(
            constraint_fires(rule, self.fixpoint.fixpoint)
            for rule in self.constraints
        )

    def certain_answers(self, instance: Instance) -> frozenset[tuple]:
        if not self.is_consistent(instance):
            return vacuous_answers(instance, self.program.arity)
        return self.fixpoint.goal_answers()

    def decide_batch(
        self, instance: Instance, candidates: Sequence[tuple]
    ) -> dict[tuple, bool]:
        if not self.is_consistent(instance):
            return vacuous_decisions(instance, candidates)
        answers = self.fixpoint.goal_answers()
        return {candidate: candidate in answers for candidate in candidates}

    def is_certain(self, instance: Instance, answer: tuple) -> bool:
        return self.decide_batch(instance, [answer])[answer]


class _UcqState:
    """Tier 0: stateless UCQ evaluation against the live instance indexes.

    Nothing is maintained under updates — the unfolded goal and constraint
    UCQs are joined against the session's current instance on every query,
    which is exactly the FO-rewritability promise of the paper's Table 1
    examples made operational.
    """

    def __init__(self, plan: QueryPlan) -> None:
        assert plan.unfolding is not None
        self.plan = plan
        self.program = plan.program
        self.unfolding = plan.unfolding

    def insert(self, old: Instance, delta: Instance, new: Instance) -> int:
        return 0  # nothing to maintain

    def delete(self, removed: Iterable[Fact]) -> None:
        pass  # nothing to maintain

    def is_consistent(self, instance: Instance) -> bool:
        return unfolding_consistent(self.unfolding, instance)

    def certain_answers(self, instance: Instance) -> frozenset[tuple]:
        return ucq_certain_answers(self.plan, instance)

    def decide_batch(
        self, instance: Instance, candidates: Sequence[tuple]
    ) -> dict[tuple, bool]:
        if not self.is_consistent(instance):
            return vacuous_decisions(instance, candidates)
        return {
            candidate: ucq_candidate_certain(self.unfolding, instance, candidate)
            for candidate in candidates
        }

    def is_certain(self, instance: Instance, answer: tuple) -> bool:
        return self.decide_batch(instance, [answer])[answer]


def evaluate_plan_at(plan: QueryPlan, instance: Instance) -> frozenset[tuple]:
    """Certain answers of a plan on an arbitrary frozen instance, statelessly.

    Tier 0 joins the unfolded UCQ against the instance's indexes; tier 1
    materializes a fresh fixpoint; tier 2 grounds from scratch.  No
    session state is touched, so this is safe against *any* instance —
    in particular a snapshot older than the live one.
    """
    if plan.tier == TIER_REWRITE:
        return _UcqState(plan).certain_answers(instance)
    if plan.tier == TIER_FIXPOINT:
        return _FixpointState(plan, instance=instance).certain_answers(instance)
    from ..engine.grounder import ground_program

    return ground_program(plan.program, instance).certain_answers()


class SessionSnapshot:
    """A versioned read-only view of a session at one commit point.

    ``Instance`` is immutable and sessions swap in *new* instances on
    every epoch, so a snapshot is just a pinned reference: it never
    changes under the reader no matter how many flushes advance the live
    session.  Reads take the warm path (the session's own tier state)
    while the session still serves the pinned instance; once the session
    has moved on, answers are recomputed statelessly against the pinned
    instance via :func:`evaluate_plan_at` and memoized, so concurrent
    readers of a superseded version pay the recompute once.
    """

    def __init__(
        self,
        session,
        version: int,
        instance: Instance,
        plans: Mapping[str, QueryPlan],
    ) -> None:
        self.version = version
        self.instance = instance
        self._session = session
        self._plans = dict(plans)
        self._answers: dict[str, frozenset[tuple]] = {}

    @property
    def query_names(self) -> tuple[str, ...]:
        return tuple(self._plans)

    @property
    def is_current(self) -> bool:
        """Does the live session still serve exactly this instance?"""
        session = self._session
        return session is not None and session.instance is self.instance

    def plan(self, name: str | None = None) -> QueryPlan:
        return self._plans[self._resolve_name(name)]

    def _resolve_name(self, name: str | None) -> str:
        if name is None:
            if len(self._plans) == 1:
                return next(iter(self._plans))
            raise ValueError(
                f"snapshot serves {sorted(self._plans)}; pass a query name"
            )
        if name not in self._plans:
            raise KeyError(
                f"unknown query {name!r}; snapshot serves {sorted(self._plans)}"
            )
        return name

    def certain_answers(self, name: str | None = None) -> frozenset[tuple]:
        """Certain answers of the (named) query at this snapshot's version."""
        resolved = self._resolve_name(name)
        answers = self._answers.get(resolved)
        if answers is not None:
            return answers
        if self.is_current:
            answers = self._session.certain_answers(resolved)
        else:
            tel = _telemetry.ACTIVE
            if tel is not None:
                tel.count("session.snapshot_recomputes")
            answers = evaluate_plan_at(self._plans[resolved], self.instance)
        self._answers[resolved] = answers
        return answers

    def is_certain(self, answer: Sequence = (), name: str | None = None) -> bool:
        """Membership in :meth:`certain_answers` (memoized per query)."""
        return tuple(answer) in self.certain_answers(name)

    def answer_all(self) -> dict[str, frozenset[tuple]]:
        return {name: self.certain_answers(name) for name in self._plans}


#: Ring-buffer capacity for the per-event history kept by a session; the
#: cumulative totals are unbounded, so nothing is lost to the bound except
#: old per-event detail.
DEFAULT_EVENT_WINDOW = 256


@dataclass
class SessionStats:
    """Counters describing the work a session has done so far.

    Two layers: *cumulative* totals (plain ints/floats plus the per-op
    ``totals`` table, never truncated) and a fixed-size ring buffer of the
    most recent per-event records (``events``, newest last) — so stats stay
    O(window) on unbounded streams.  Every insert/delete epoch and every
    query is one event carrying its measured wall-clock ``seconds`` (the
    timing is always on: two ``perf_counter`` calls per event).

    :meth:`rollup` folds both layers into the ``obda-session-rollup/v1``
    schema — the observed read/insert/delete mix and cost per event that
    workload-adaptive re-planning consumes (see ``docs/observability.md``).
    """

    epoch: int = 0
    facts_inserted: int = 0
    facts_deleted: int = 0
    clauses_pushed: int = 0
    queries_answered: int = 0
    window: int = DEFAULT_EVENT_WINDOW
    events: deque = field(default=None, repr=False)
    totals: dict = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.events = deque(maxlen=self.window)
        self.totals = {
            op: {"count": 0, "facts": 0, "clauses": 0, "seconds": 0.0}
            for op in ("insert", "delete", "query")
        }

    def record_event(
        self,
        op: str,
        *,
        facts: int = 0,
        clauses: int = 0,
        seconds: float = 0.0,
        **extra,
    ) -> dict:
        """Fold one insert/delete/query event into totals and the ring."""
        totals = self.totals[op]
        totals["count"] += 1
        totals["facts"] += facts
        totals["clauses"] += clauses
        totals["seconds"] += seconds
        event = {
            "epoch": self.epoch,
            "op": op,
            "facts": facts,
            "clauses": clauses,
            "seconds": seconds,
        }
        if extra:
            event.update(extra)
        self.events.append(event)
        return event

    @property
    def epochs(self) -> list[dict]:
        """The update epochs (inserts and deletes) still in the ring buffer."""
        return [event for event in self.events if event["op"] != "query"]

    def rollup(self) -> dict:
        """The ``obda-session-rollup/v1`` mix-and-cost summary.

        This is the API contract the adaptive re-planner consumes:
        ``mix`` gives the observed read/insert/delete event fractions over
        the whole stream, ``ops`` the cumulative per-op cost (count, facts,
        clauses, total and mean seconds), and ``window`` the same shape
        restricted to the ring buffer — the *recent* mix a re-planner
        should weight over the historical one.
        """
        ops: dict[str, dict] = {}
        total_events = 0
        for op, totals in self.totals.items():
            count = totals["count"]
            total_events += count
            ops[op] = {
                "count": count,
                "facts": totals["facts"],
                "clauses": totals["clauses"],
                "total_s": totals["seconds"],
                "mean_s": totals["seconds"] / count if count else 0.0,
            }
        mix = {
            op: (info["count"] / total_events if total_events else 0.0)
            for op, info in ops.items()
        }
        recent = {op: {"count": 0, "total_s": 0.0} for op in self.totals}
        for event in self.events:
            bucket = recent[event["op"]]
            bucket["count"] += 1
            bucket["total_s"] += event["seconds"]
        for bucket in recent.values():
            bucket["mean_s"] = (
                bucket["total_s"] / bucket["count"] if bucket["count"] else 0.0
            )
        return {
            "schema": "obda-session-rollup/v1",
            "epoch": self.epoch,
            "events": total_events,
            "mix": mix,
            "ops": ops,
            "window": {
                "capacity": self.events.maxlen,
                "size": len(self.events),
                "recent": recent,
            },
        }


class ObdaSession:
    """A compiled OMQ workload served against a streaming data instance.

    ``workload`` is a single OMQ / DDlog program or a mapping from query
    names to them; OMQs are compiled to MDDlog once, at session start, and
    each compiled program is routed by the planner to its serving tier.
    ``insert_facts`` / ``delete_facts`` advance the *epoch*, updating every
    query's persistent state; ``certain_answers`` / ``answer_batch`` /
    ``is_certain`` answer from the warm state without regrounding.

    Every planning knob arrives as one frozen
    :class:`~repro.planner.PlanPolicy` (``policy=``): ``tier`` pins every
    query to one planner tier (2 is always sound) — the cross-validation
    and benchmarking knob behind the planner-vs-forced-tier suites;
    forcing bypasses the semantic stage *and pins the session* (adaptive
    re-planning is disabled, with the rationale recorded in
    :meth:`explain`).  ``semantic`` / ``semantic_budget`` control the
    semantic rewritability stage (:mod:`repro.planner.semantic`) for
    syntactic tier-2 programs: by default a compiled-but-rewritable query
    is served by the constructed rewriting on tier 0/1.  ``adaptive``
    (``True`` or an :class:`~repro.planner.AdaptivePolicy`) turns on live
    re-planning between the sound tiers as the observed mix shifts.  The
    old ``force_tier=`` / ``semantic=`` / ``semantic_budget=`` / ``check=``
    keywords remain as deprecated aliases.

    ``check`` (policy field) runs the static analyzer
    (:mod:`repro.analysis`) over every compiled program before any solver
    state is built: ``"warn"`` (the default) surfaces
    error/warning-severity diagnostics as Python warnings, ``"strict"``
    raises :class:`repro.analysis.ProgramAnalysisError` on errors,
    ``"off"`` skips the analysis.
    """

    def __init__(
        self,
        workload,
        initial_facts: Iterable[Fact] = (),
        policy: PlanPolicy | None = None,
        *,
        force_tier=_UNSET,
        semantic=_UNSET,
        semantic_budget=_UNSET,
        check=_UNSET,
    ) -> None:
        policy = resolve_policy(
            policy,
            {
                "force_tier": force_tier,
                "semantic": semantic,
                "semantic_budget": semantic_budget,
                "check": check,
            },
            where="ObdaSession",
        )
        self.policy = policy
        if isinstance(workload, Mapping):
            entries = dict(workload)
        else:
            entries = {DEFAULT_QUERY: workload}
        if not entries:
            raise ValueError("a session needs at least one query")
        compiled = {name: _compile(entry) for name, entry in entries.items()}
        resolved_check = policy.resolved_check("warn")
        for name, program in compiled.items():
            # Vet the whole workload before building any solver state: a
            # strict session refuses a broken program with zero grounding
            # or SAT work done.
            vet_program(program, resolved_check, label=name)
        self._instance = Instance([])
        self.stats = SessionStats()
        self._adaptive = policy.resolved_adaptive()
        self._adaptive_reason: str | None = None
        if policy.tier is not None and self._adaptive is not None:
            self._adaptive = None
            self._adaptive_reason = (
                f"tier forced to {policy.tier}: adaptive re-planning disabled"
            )
        self._controllers: dict[str, AdaptiveController] = {}
        #: Warm per-tier join-plan caches harvested from retired states,
        #: keyed query name -> tier; transplanted on swap-back so a
        #: returning tier does not recompile what it already knew.
        self._warm: dict[str, dict[int, object]] = {name: {} for name in compiled}
        self._states: dict[str, _SatState | _FixpointState | _UcqState] = {}
        for name, program in compiled.items():
            if policy.tier is not None:
                plan = plan_for_tier(program, policy.tier, caps=policy.unfold_caps)
            else:
                plan = plan_program(program, policy.planning_view())
            if self._adaptive is not None:
                candidates = candidate_plans(program, plan)
                if len(candidates) > 1:
                    self._controllers[name] = AdaptiveController(
                        name, plan, self._adaptive, candidates
                    )
            self._states[name] = self._build_state(plan)
        self._query_stats: dict[str, dict] = {
            name: {"queries_answered": 0, "total_s": 0.0, "last_s": None}
            for name in self._states
        }
        initial = list(initial_facts)
        if initial:
            self.insert_facts(initial)

    # -- introspection ---------------------------------------------------------

    @property
    def instance(self) -> Instance:
        """The current data instance."""
        return self._instance

    @property
    def query_names(self) -> tuple[str, ...]:
        return tuple(self._states)

    def program(self, name: str | None = None) -> DisjunctiveDatalogProgram:
        return self._state(name).program

    def plan(self, name: str | None = None) -> QueryPlan:
        """The planner's routing decision for the (named) query."""
        return self._state(name).plan

    def explain(self) -> dict:
        """The versioned ``obda-explain/v2`` report for the whole session.

        Top-level shape: ``{"schema", "queries", "adaptive"}``.  Each
        query's entry under ``"queries"`` is its static
        :meth:`QueryPlan.describe` dict extended with a ``"live"`` section:
        the per-query serving counters (queries answered, last/total/mean
        query latency) and the session's :meth:`SessionStats.rollup` — the
        observed read/insert/delete mix and cost per event.  The
        ``"adaptive"`` block carries every re-plan decision taken so far
        (``"replans"``, query-tagged and event-ordered), the per-query
        controller state, and — when adaptivity was requested but the
        session is pinned — the ``"reason"`` it stayed off.  The shape is
        validated by :func:`repro.service.explain.validate_explain`.
        """
        rollup = self.stats.rollup()
        queries: dict[str, dict] = {}
        for name, state in self._states.items():
            info = dict(state.plan.describe())
            counters = dict(self._query_stats[name])
            answered = counters["queries_answered"]
            counters["mean_s"] = counters["total_s"] / answered if answered else 0.0
            counters["rollup"] = rollup
            info["live"] = counters
            queries[name] = info
        adaptive: dict = {"enabled": bool(self._controllers)}
        if self._adaptive_reason is not None:
            adaptive["reason"] = self._adaptive_reason
        per_query: dict[str, dict] = {}
        replans: list[dict] = []
        for name in self._states:
            controller = self._controllers.get(name)
            if controller is None:
                per_query[name] = {"enabled": False}
                continue
            per_query[name] = controller.describe()
            for record in controller.history:
                tagged = dict(record)
                tagged["query"] = name
                replans.append(tagged)
        replans.sort(key=lambda record: record["event"])
        adaptive["queries"] = per_query
        adaptive["replans"] = replans
        return {"schema": EXPLAIN_SCHEMA, "queries": queries, "adaptive": adaptive}

    def _resolve_name(self, name: str | None) -> str:
        if name is None:
            if len(self._states) == 1:
                return next(iter(self._states))
            raise ValueError(
                f"session serves {sorted(self._states)}; pass a query name"
            )
        if name not in self._states:
            raise KeyError(
                f"unknown query {name!r}; session serves {sorted(self._states)}"
            )
        return name

    def _state(self, name: str | None) -> "_SatState | _FixpointState | _UcqState":
        return self._states[self._resolve_name(name)]

    # -- serving-state lifecycle ----------------------------------------------

    def _build_state(
        self, plan: QueryPlan, warm=None
    ) -> "_SatState | _FixpointState | _UcqState":
        """Fresh serving state for a plan, loaded from the current instance.

        ``warm`` is a per-tier join-plan cache harvested by
        :meth:`_harvest_warm` from a retired state of the *same* plan
        object; transplanting it means a swap-back recompiles nothing (the
        caches are identity-guarded on the session's shared interner, so a
        stale transplant degrades to a recompile, never to wrong plans).
        """
        if plan.tier == TIER_REWRITE:
            return _UcqState(plan)
        if plan.tier == TIER_FIXPOINT:
            state = _FixpointState(plan, instance=self._instance)
            if warm is not None:
                state.fixpoint._rederive_plans = warm[0]
                state.fixpoint._rederive_interner = warm[1]
            return state
        state = _SatState(plan)
        if warm is not None:
            for rule_state, (plans, interner) in zip(state.grounder._rules, warm):
                rule_state.plans = plans
                rule_state.plans_interner = interner
        facts = sorted(self._instance.facts, key=str)
        if facts:
            state.insert(Instance([]), Instance(facts), self._instance)
        return state

    def _harvest_warm(self, name: str, state) -> None:
        """Bank a retiring state's compiled join plans under its tier."""
        if isinstance(state, _SatState):
            self._warm[name][state.plan.tier] = [
                (rule.plans, rule.plans_interner)
                for rule in state.grounder._rules
            ]
        elif isinstance(state, _FixpointState):
            fixpoint = state.fixpoint
            if fixpoint._rederive_plans is not None:
                self._warm[name][state.plan.tier] = (
                    fixpoint._rederive_plans,
                    fixpoint._rederive_interner,
                )

    def _maybe_replan(self) -> None:
        """Let every adaptive controller react to the event just recorded.

        A controller that proposes a swap gets it executed immediately:
        the old state's warm caches are banked, a fresh state for the
        target tier is built from the current frozen instance, and the
        swap is atomic from any caller's view — ``self._states[name]`` is
        rebound once, after the new state is fully loaded.
        """
        for name, controller in self._controllers.items():
            decision = controller.propose(self.stats, self._instance)
            if decision is None:
                continue
            start = _telemetry.now()
            self._harvest_warm(name, self._states[name])
            self._states[name] = self._build_state(
                decision.plan, warm=self._warm[name].get(decision.plan.tier)
            )
            swap_s = _telemetry.now() - start
            controller.commit(decision, swap_s)
            tel = _telemetry.ACTIVE
            if tel is not None:
                record = controller.history[-1]
                tel.count("adaptive.replans")
                tel.record("adaptive.swap_s", swap_s)
                tel.event(
                    "adaptive.replan",
                    query=name,
                    epoch=record["epoch"],
                    from_tier=record["from_tier"],
                    to_tier=record["to_tier"],
                    swap_s=swap_s,
                    **{
                        f"mix_{op}": share
                        for op, share in record["trigger_mix"].items()
                    },
                )

    def _record_query(self, name: str, seconds: float) -> None:
        self.stats.queries_answered += 1
        self.stats.record_event("query", seconds=seconds, query=name)
        live = self._query_stats[name]
        live["queries_answered"] += 1
        live["total_s"] += seconds
        live["last_s"] = seconds
        tel = _telemetry.ACTIVE
        if tel is not None:
            tel.count("session.queries")
            tel.record("session.query_s", seconds)
        self._maybe_replan()

    # -- updates ---------------------------------------------------------------

    def insert_facts(self, facts: Iterable[Fact]) -> int:
        """Insert facts; returns how many were new.  One epoch.

        Facts already present — and duplicates within the batch — are
        skipped, so adversarial streams (re-inserts, repeated batch
        entries) neither advance the epoch spuriously nor skew the stats.
        """
        added: list[Fact] = []
        seen: set[Fact] = set()
        for fact in facts:
            if fact not in self._instance.facts and fact not in seen:
                seen.add(fact)
                added.append(fact)
        if not added:
            return 0
        start = _telemetry.now()
        with _telemetry.maybe_span(
            "session.insert", epoch=self.stats.epoch + 1, facts=len(added)
        ) as span:
            old = self._instance
            delta = Instance(added)
            new = old.with_facts(added)
            pushed = 0
            for state in self._states.values():
                pushed += state.insert(old, delta, new)
            self._instance = new
            span.set(clauses=pushed)
        seconds = _telemetry.now() - start
        self.stats.epoch += 1
        self.stats.facts_inserted += len(added)
        self.stats.clauses_pushed += pushed
        self.stats.record_event(
            "insert", facts=len(added), clauses=pushed, seconds=seconds
        )
        tel = _telemetry.ACTIVE
        if tel is not None:
            tel.count("session.inserts")
            tel.count("session.facts_inserted", len(added))
            tel.count("session.clauses_pushed", pushed)
            tel.record("session.insert_s", seconds)
        self._maybe_replan()
        return len(added)

    def delete_facts(self, facts: Iterable[Fact]) -> int:
        """Delete facts; returns how many were present.  One epoch.

        Deleting a fact that was never inserted (or deleting one twice,
        within a batch or across epochs) is a clean no-op: unknown facts
        are filtered here, and the solver layer's ``retract_assumption``
        ignores guards that are not registered.
        """
        removed: list[Fact] = []
        seen: set[Fact] = set()
        for fact in facts:
            if fact in self._instance.facts and fact not in seen:
                seen.add(fact)
                removed.append(fact)
        if not removed:
            return 0
        start = _telemetry.now()
        with _telemetry.maybe_span(
            "session.delete", epoch=self.stats.epoch + 1, facts=len(removed)
        ):
            for state in self._states.values():
                state.delete(removed)
            self._instance = self._instance.without_facts(removed)
        seconds = _telemetry.now() - start
        self.stats.epoch += 1
        self.stats.facts_deleted += len(removed)
        self.stats.record_event("delete", facts=len(removed), seconds=seconds)
        tel = _telemetry.ACTIVE
        if tel is not None:
            tel.count("session.deletes")
            tel.count("session.facts_deleted", len(removed))
            tel.record("session.delete_s", seconds)
        self._maybe_replan()
        return len(removed)

    # -- queries ---------------------------------------------------------------

    def is_consistent(self, name: str | None = None) -> bool:
        """Does any model extend the current data for the (named) query?

        ``False`` means every tuple over the active domain is vacuously
        certain.  SAT-backed queries ask the warm solver; the SAT-free
        tiers check their (unfolded) constraints against the current
        instance or the materialized minimal model.
        """
        return self._state(name).is_consistent(self._instance)

    def certain_answers(self, name: str | None = None) -> frozenset[tuple]:
        """The certain answers of the (named) query on the current instance."""
        resolved = self._resolve_name(name)
        start = _telemetry.now()
        with _telemetry.maybe_span(
            "session.query", query=resolved, kind="certain_answers"
        ):
            answers = self._states[resolved].certain_answers(self._instance)
        self._record_query(resolved, _telemetry.now() - start)
        return answers

    def is_certain(self, answer: Sequence = (), name: str | None = None) -> bool:
        """Does the tuple belong to the certain answers right now?"""
        resolved = self._resolve_name(name)
        start = _telemetry.now()
        with _telemetry.maybe_span(
            "session.query", query=resolved, kind="is_certain"
        ):
            result = self._states[resolved].is_certain(
                self._instance, tuple(answer)
            )
        self._record_query(resolved, _telemetry.now() - start)
        return result

    def answer_batch(
        self,
        candidates: Iterable[Sequence],
        name: str | None = None,
    ) -> dict[tuple, bool]:
        """Decide a batch of candidate tuples in one pass over the warm state."""
        resolved = self._resolve_name(name)
        batch = [tuple(candidate) for candidate in candidates]
        start = _telemetry.now()
        with _telemetry.maybe_span(
            "session.query", query=resolved, kind="answer_batch", batch=len(batch)
        ):
            decided = self._states[resolved].decide_batch(self._instance, batch)
        self._record_query(resolved, _telemetry.now() - start)
        return decided

    def answer_all(self) -> dict[str, frozenset[tuple]]:
        """Certain answers of every query in the workload."""
        return {name: self.certain_answers(name) for name in self._states}

    def snapshot(self, version: int | None = None) -> SessionSnapshot:
        """A read-only view pinned to the current instance.

        ``version`` defaults to the session epoch; callers that manage
        their own commit counter (the serving frontend's group-commit
        version) pass it explicitly.  The snapshot stays answerable — and
        immutable — after any number of later updates.
        """
        tel = _telemetry.ACTIVE
        if tel is not None:
            tel.count("session.snapshots")
        return SessionSnapshot(
            self,
            self.stats.epoch if version is None else version,
            self._instance,
            {name: state.plan for name, state in self._states.items()},
        )

    # -- maintenance -----------------------------------------------------------

    def compact(self) -> None:
        """Rebuild every query's state from the current instance.

        A long stream accumulates clauses for retracted epochs; compaction
        regrounds from the live facts only, resetting solver and guard
        state (the streaming equivalent of a VACUUM).
        """
        with _telemetry.maybe_span(
            "session.compact", facts=len(self._instance.facts)
        ):
            rebuilt: dict[str, _SatState | _FixpointState | _UcqState] = {}
            for name, state in self._states.items():
                self._harvest_warm(name, state)
                rebuilt[name] = self._build_state(
                    state.plan, warm=self._warm[name].get(state.plan.tier)
                )
            self._states = rebuilt
