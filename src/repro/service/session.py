"""Compiled OBDA serving sessions.

An :class:`ObdaSession` is the unit of deployment of the serving layer: a
*workload* of ontology-mediated queries is compiled once — DL ontology plus
UCQ into MDDlog through the Theorem 3.3 translation
(:func:`repro.omq.certain.compile_to_mddlog`), or any disjunctive datalog
program used directly — and the session then answers every query against a
single mutable data instance that evolves fact-by-fact.

Each compiled query owns persistent evaluation state:

* disjunction-free programs keep a materialized least fixpoint maintained by
  semi-naive insertion and DRed deletion
  (:class:`repro.service.delta.IncrementalFixpoint`);
* all other programs keep a live CDCL solver fed by support-guarded delta
  grounding (:class:`repro.service.delta.DeltaGrounder`): insertions push
  only the newly justified clauses, deletions retract the facts' guard
  assumptions, and certain answers are assumption queries against the warm
  solver with all learned clauses intact.

Answers after every update are identical to a from-scratch recomputation
over the current instance (the streaming test-suite cross-validates this on
randomized update streams).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ..core.instance import Fact, Instance
from ..datalog.ddlog import DisjunctiveDatalogProgram
from ..datalog.plain import DatalogProgram
from ..engine.sat import ClauseSolver
from ..omq.query import OntologyMediatedQuery
from .delta import DeltaGrounder, IncrementalFixpoint, fact_guard

DEFAULT_QUERY = "q"


def _compile(entry) -> DisjunctiveDatalogProgram:
    if isinstance(entry, DisjunctiveDatalogProgram):
        return entry
    if isinstance(entry, OntologyMediatedQuery):
        from ..omq.certain import compile_to_mddlog

        return compile_to_mddlog(entry)
    raise TypeError(
        f"workload entries must be OMQs or DDlog programs, got {entry!r}"
    )


class _SatState:
    """Guarded ground program + persistent CDCL solver for one query."""

    def __init__(self, program: DisjunctiveDatalogProgram) -> None:
        self.program = program
        self.grounder = DeltaGrounder(program)
        self.solver = ClauseSolver()
        for negative, positive in self.grounder.bootstrap_clauses():
            self.solver.add_clause(negative, positive)

    def insert(self, old: Instance, delta: Instance, new: Instance) -> int:
        clauses = self.grounder.insert(old, delta, new)
        for negative, positive in clauses:
            self.solver.add_clause(negative, positive)
        for fact in delta:
            self.solver.assume(fact_guard(fact))
        return len(clauses)

    def delete(self, removed: Iterable[Fact]) -> None:
        for fact in removed:
            self.solver.retract_assumption(fact_guard(fact))

    def certain_answers(self, instance: Instance) -> frozenset[tuple]:
        domain = sorted(instance.active_domain, key=repr)
        candidates = list(itertools.product(domain, repeat=self.program.arity))
        decided = self.decide_batch(instance, candidates)
        return frozenset(c for c, certain in decided.items() if certain)

    def is_consistent(self) -> bool:
        return self.solver.solve()

    def decide_batch(
        self, instance: Instance, candidates: Sequence[tuple]
    ) -> dict[tuple, bool]:
        goal = self.program.goal_relation
        adom = instance.active_domain
        if not self.solver.solve():
            # No model extends the data at all: every tuple over the active
            # domain is vacuously certain (mirrors
            # GroundProgram.certain_answers, which only enumerates adom
            # tuples; candidates outside it are never answers).
            return {
                candidate: all(value in adom for value in candidate)
                for candidate in candidates
            }
        model = self.solver.last_model
        decided: dict[tuple, bool] = {}
        for candidate in candidates:
            if any(value not in adom for value in candidate):
                decided[candidate] = False
                continue
            atom = (goal, candidate)
            if not model.get(atom, False):
                # The screening model is already a counter-model.
                decided[candidate] = False
                continue
            decided[candidate] = not self.solver.solve(false_atoms=[atom])
        return decided

    def is_certain(self, instance: Instance, answer: tuple) -> bool:
        return self.decide_batch(instance, [answer])[answer]


class _FixpointState:
    """Materialized incremental fixpoint for a disjunction-free query."""

    def __init__(self, program: DisjunctiveDatalogProgram) -> None:
        self.program = program
        datalog = (
            program
            if isinstance(program, DatalogProgram)
            else DatalogProgram(program.rules, goal_relation=program.goal_relation)
        )
        self.fixpoint = IncrementalFixpoint(datalog)

    def insert(self, old: Instance, delta: Instance, new: Instance) -> int:
        self.fixpoint.insert(delta)
        return 0

    def delete(self, removed: Iterable[Fact]) -> None:
        self.fixpoint.delete(removed)

    def is_consistent(self) -> bool:
        return True  # a least fixpoint is always a model

    def certain_answers(self, instance: Instance) -> frozenset[tuple]:
        return self.fixpoint.goal_answers()

    def decide_batch(
        self, instance: Instance, candidates: Sequence[tuple]
    ) -> dict[tuple, bool]:
        answers = self.fixpoint.goal_answers()
        return {candidate: candidate in answers for candidate in candidates}

    def is_certain(self, instance: Instance, answer: tuple) -> bool:
        return answer in self.fixpoint.goal_answers()


@dataclass
class SessionStats:
    """Counters describing the work a session has done so far."""

    epoch: int = 0
    facts_inserted: int = 0
    facts_deleted: int = 0
    clauses_pushed: int = 0
    queries_answered: int = 0
    epochs: list[dict] = field(default_factory=list)


class ObdaSession:
    """A compiled OMQ workload served against a streaming data instance.

    ``workload`` is a single OMQ / DDlog program or a mapping from query
    names to them; OMQs are compiled to MDDlog once, at session start.
    ``insert_facts`` / ``delete_facts`` advance the *epoch*, updating every
    query's persistent state; ``certain_answers`` / ``answer_batch`` /
    ``is_certain`` answer from the warm state without regrounding.
    """

    def __init__(
        self,
        workload,
        initial_facts: Iterable[Fact] = (),
    ) -> None:
        if isinstance(workload, Mapping):
            entries = dict(workload)
        else:
            entries = {DEFAULT_QUERY: workload}
        if not entries:
            raise ValueError("a session needs at least one query")
        self._states: dict[str, _SatState | _FixpointState] = {}
        for name, entry in entries.items():
            program = _compile(entry)
            if program.is_disjunction_free() and not any(
                rule.is_constraint() for rule in program.rules
            ):
                self._states[name] = _FixpointState(program)
            else:
                self._states[name] = _SatState(program)
        self._instance = Instance([])
        self.stats = SessionStats()
        initial = list(initial_facts)
        if initial:
            self.insert_facts(initial)

    # -- introspection ---------------------------------------------------------

    @property
    def instance(self) -> Instance:
        """The current data instance."""
        return self._instance

    @property
    def query_names(self) -> tuple[str, ...]:
        return tuple(self._states)

    def program(self, name: str | None = None) -> DisjunctiveDatalogProgram:
        return self._state(name).program

    def _state(self, name: str | None) -> "_SatState | _FixpointState":
        if name is None:
            if len(self._states) == 1:
                return next(iter(self._states.values()))
            raise ValueError(
                f"session serves {sorted(self._states)}; pass a query name"
            )
        try:
            return self._states[name]
        except KeyError:
            raise KeyError(
                f"unknown query {name!r}; session serves {sorted(self._states)}"
            ) from None

    # -- updates ---------------------------------------------------------------

    def insert_facts(self, facts: Iterable[Fact]) -> int:
        """Insert facts; returns how many were new.  One epoch.

        Facts already present — and duplicates within the batch — are
        skipped, so adversarial streams (re-inserts, repeated batch
        entries) neither advance the epoch spuriously nor skew the stats.
        """
        added: list[Fact] = []
        seen: set[Fact] = set()
        for fact in facts:
            if fact not in self._instance.facts and fact not in seen:
                seen.add(fact)
                added.append(fact)
        if not added:
            return 0
        old = self._instance
        delta = Instance(added)
        new = old.with_facts(added)
        pushed = 0
        for state in self._states.values():
            pushed += state.insert(old, delta, new)
        self._instance = new
        self.stats.epoch += 1
        self.stats.facts_inserted += len(added)
        self.stats.clauses_pushed += pushed
        self.stats.epochs.append(
            {"epoch": self.stats.epoch, "op": "insert", "facts": len(added), "clauses": pushed}
        )
        return len(added)

    def delete_facts(self, facts: Iterable[Fact]) -> int:
        """Delete facts; returns how many were present.  One epoch.

        Deleting a fact that was never inserted (or deleting one twice,
        within a batch or across epochs) is a clean no-op: unknown facts
        are filtered here, and the solver layer's ``retract_assumption``
        ignores guards that are not registered.
        """
        removed: list[Fact] = []
        seen: set[Fact] = set()
        for fact in facts:
            if fact in self._instance.facts and fact not in seen:
                seen.add(fact)
                removed.append(fact)
        if not removed:
            return 0
        for state in self._states.values():
            state.delete(removed)
        self._instance = self._instance.without_facts(removed)
        self.stats.epoch += 1
        self.stats.facts_deleted += len(removed)
        self.stats.epochs.append(
            {"epoch": self.stats.epoch, "op": "delete", "facts": len(removed), "clauses": 0}
        )
        return len(removed)

    # -- queries ---------------------------------------------------------------

    def is_consistent(self, name: str | None = None) -> bool:
        """Does any model extend the current data for the (named) query?

        ``False`` means every tuple over the active domain is vacuously
        certain.  Disjunction-free, constraint-free queries are always
        consistent (their least fixpoint is a model); SAT-backed queries
        ask the warm solver.
        """
        return self._state(name).is_consistent()

    def certain_answers(self, name: str | None = None) -> frozenset[tuple]:
        """The certain answers of the (named) query on the current instance."""
        self.stats.queries_answered += 1
        return self._state(name).certain_answers(self._instance)

    def is_certain(self, answer: Sequence = (), name: str | None = None) -> bool:
        """Does the tuple belong to the certain answers right now?"""
        self.stats.queries_answered += 1
        return self._state(name).is_certain(self._instance, tuple(answer))

    def answer_batch(
        self,
        candidates: Iterable[Sequence],
        name: str | None = None,
    ) -> dict[tuple, bool]:
        """Decide a batch of candidate tuples in one pass over the warm state."""
        state = self._state(name)
        self.stats.queries_answered += 1
        batch = [tuple(candidate) for candidate in candidates]
        return state.decide_batch(self._instance, batch)

    def answer_all(self) -> dict[str, frozenset[tuple]]:
        """Certain answers of every query in the workload."""
        return {name: self.certain_answers(name) for name in self._states}

    # -- maintenance -----------------------------------------------------------

    def compact(self) -> None:
        """Rebuild every query's state from the current instance.

        A long stream accumulates clauses for retracted epochs; compaction
        regrounds from the live facts only, resetting solver and guard
        state (the streaming equivalent of a VACUUM).
        """
        facts = sorted(self._instance.facts, key=str)
        rebuilt: dict[str, _SatState | _FixpointState] = {}
        old = Instance([])
        delta = Instance(facts)
        for name, state in self._states.items():
            if isinstance(state, _FixpointState):
                fresh: "_SatState | _FixpointState" = _FixpointState(state.program)
            else:
                fresh = _SatState(state.program)
            if facts:
                fresh.insert(old, delta, self._instance)
            rebuilt[name] = fresh
        self._states = rebuilt
