"""Streaming traffic drivers for OBDA serving sessions.

A *stream* is a sequence of :class:`StreamEvent` — fact insertions, fact
deletions and query requests.  :func:`replay` feeds a stream to an
:class:`~repro.service.session.ObdaSession` and (optionally) cross-validates
every answer against a from-scratch recomputation of the compiled program
over the instance as it stands, which is how the streaming benchmark and the
randomized correctness suite certify the incremental maintenance.

:func:`random_stream` generates reproducible interleaved insert / delete /
query traffic over a fact universe, weighted so instances grow, shrink and
churn; :func:`medical_stream` builds such a universe for the paper's Table 1
medical workload and :func:`graph_stream` for the CSP zoo's ``edge`` schema.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..core.instance import Fact, Instance
from ..core.schema import RelationSymbol
from ..engine.grounder import ground_program
from ..obs import telemetry as _telemetry
from .session import ObdaSession

INSERT = "insert"
DELETE = "delete"
QUERY = "query"


@dataclass(frozen=True)
class StreamEvent:
    """One unit of serving traffic."""

    kind: str  # "insert" | "delete" | "query"
    facts: tuple[Fact, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in (INSERT, DELETE, QUERY):
            raise ValueError(f"unknown stream event kind {self.kind!r}")


def inserts(*facts: Fact) -> StreamEvent:
    return StreamEvent(INSERT, tuple(facts))


def deletes(*facts: Fact) -> StreamEvent:
    return StreamEvent(DELETE, tuple(facts))


QUERY_EVENT = StreamEvent(QUERY)


@dataclass
class StreamReport:
    """What a replay did and how long it took."""

    events: int = 0
    inserts: int = 0
    deletes: int = 0
    queries: int = 0
    answers: list[dict[str, frozenset[tuple]]] = field(default_factory=list)
    elapsed_s: float = 0.0
    validated: bool = False


def random_stream(
    universe: Sequence[Fact],
    length: int,
    seed: int = 0,
    batch_size: int = 3,
    query_every: int = 1,
    insert_bias: float = 0.7,
) -> list[StreamEvent]:
    """A reproducible interleaved insert/delete/query stream.

    Facts are drawn from ``universe``; the stream starts on an empty
    instance, inserts are biased over deletes (so instances grow and churn
    rather than staying empty), deletes only target currently-live facts,
    and every ``query_every``-th update is followed by a query event.
    """
    rng = random.Random(seed)
    live: set[Fact] = set()
    events: list[StreamEvent] = []
    updates = 0
    while updates < length:
        if not live:
            do_insert = True
        elif len(live) == len(universe):
            do_insert = False
        else:
            do_insert = rng.random() < insert_bias
        if do_insert:
            pool = [f for f in universe if f not in live]
            batch = rng.sample(pool, min(len(pool), rng.randint(1, batch_size)))
            live.update(batch)
            events.append(StreamEvent(INSERT, tuple(batch)))
        else:
            pool = sorted(live, key=str)
            if not pool:
                continue
            batch = rng.sample(pool, min(len(pool), rng.randint(1, batch_size)))
            live.difference_update(batch)
            events.append(StreamEvent(DELETE, tuple(batch)))
        updates += 1
        if updates % query_every == 0:
            events.append(QUERY_EVENT)
    return events


def replay(
    session: ObdaSession,
    events: Iterable[StreamEvent],
    validate: bool = False,
) -> StreamReport:
    """Feed a stream to a session; optionally cross-validate every answer.

    With ``validate=True``, each query event's answers are compared to a
    from-scratch grounding of the same compiled program over the current
    instance (:func:`repro.engine.grounder.ground_program`); a mismatch
    raises ``AssertionError`` with the offending epoch.
    """
    report = StreamReport()
    started = _telemetry.now()
    for event in events:
        report.events += 1
        if event.kind == INSERT:
            session.insert_facts(event.facts)
            report.inserts += 1
        elif event.kind == DELETE:
            session.delete_facts(event.facts)
            report.deletes += 1
        else:
            answers = session.answer_all()
            report.queries += 1
            report.answers.append(answers)
            if validate:
                for name, got in answers.items():
                    expected = from_scratch_answers(session, name)
                    if got != expected:
                        raise AssertionError(
                            f"epoch {session.stats.epoch}: incremental answers "
                            f"for {name!r} diverge: {sorted(got)} != "
                            f"{sorted(expected)}"
                        )
    report.elapsed_s = _telemetry.now() - started
    report.validated = validate
    return report


def from_scratch_answers(session: ObdaSession, name: str | None = None) -> frozenset:
    """Reference recomputation: reground the compiled program over the
    session's current instance and solve from zero."""
    program = session.program(name)
    return ground_program(program, session.instance).certain_answers()


# ---------------------------------------------------------------------------
# Fact universes for the paper's workloads
# ---------------------------------------------------------------------------


def medical_universe(patients: int = 8, generations: int = 5) -> list[Fact]:
    """A pool of facts over the Table 1 medical schema: patients with
    findings and diagnoses, plus a ``HasParent`` chain with a predisposed
    ancestor (exercises both the UCQ and the recursive AQ)."""
    has_finding = RelationSymbol("HasFinding", 2)
    has_diagnosis = RelationSymbol("HasDiagnosis", 2)
    has_parent = RelationSymbol("HasParent", 2)
    erythema = RelationSymbol("ErythemaMigrans", 1)
    listeriosis = RelationSymbol("Listeriosis", 1)
    lyme = RelationSymbol("LymeDisease", 1)
    predisposition = RelationSymbol("HereditaryPredisposition", 1)
    facts: list[Fact] = []
    for index in range(patients):
        patient = f"patient{index}"
        finding = f"finding{index}"
        diagnosis = f"diag{index}"
        facts.append(Fact(has_finding, (patient, finding)))
        facts.append(Fact(has_diagnosis, (patient, diagnosis)))
        if index % 3 == 0:
            facts.append(Fact(erythema, (finding,)))
        if index % 3 == 1:
            facts.append(Fact(listeriosis, (diagnosis,)))
        if index % 3 == 2:
            facts.append(Fact(lyme, (diagnosis,)))
    for index in range(generations):
        facts.append(Fact(has_parent, (f"person{index}", f"person{index + 1}")))
    facts.append(Fact(predisposition, (f"person{generations}",)))
    return facts


def graph_universe(vertices: int = 8, seed: int = 0, density: float = 0.5) -> list[Fact]:
    """A pool of directed ``edge`` facts for streaming CSP-zoo workloads."""
    edge = RelationSymbol("edge", 2)
    rng = random.Random(seed)
    facts = []
    for i in range(vertices):
        for j in range(vertices):
            if i != j and rng.random() < density:
                facts.append(Fact(edge, (f"v{i}", f"v{j}")))
    return facts


def from_scratch_stream_cost(
    session: ObdaSession, events: Sequence[StreamEvent]
) -> tuple[float, list[frozenset]]:
    """Replay the stream with *from-scratch* evaluation only.

    The baseline the streaming benchmark compares against: the instance is
    rebuilt per update and every query event regrounds the compiled
    program(s) and solves from zero.  Returns (elapsed seconds, answers per
    query event, concatenated across queries in workload order).
    """
    programs = [session.program(name) for name in session.query_names]
    instance = Instance([])
    answers: list[frozenset] = []
    started = _telemetry.now()
    for event in events:
        if event.kind == INSERT:
            instance = instance.with_facts(event.facts)
        elif event.kind == DELETE:
            instance = instance.without_facts(event.facts)
        else:
            for program in programs:
                answers.append(ground_program(program, instance).certain_answers())
    elapsed = _telemetry.now() - started
    return elapsed, answers
