"""The multi-tenant asyncio serving frontend over compiled OBDA sessions.

A :class:`Frontend` multiplexes many *tenants* — independent callers, each
with their own workload and service tier — over shared
:class:`~repro.service.session.ObdaSession` /
:class:`~repro.service.shards.ShardedObdaSession` state on one asyncio
event loop.  Four mechanisms make that safe and cheap:

* **Cross-tenant program sharing.**  Tenant registration compiles the
  workload and interns every program through an LRU'd
  :class:`~repro.planner.PlanCache`: structurally identical programs (up
  to variable renaming and rule order) resolve to one representative
  object, so tenants share plans, ground caches, *and* the warm serving
  session built for that program set — the paper's compile-once promise
  taken across users.  Eviction under a tight capacity clears the
  representative's attribute-cached artifacts; re-registration re-plans
  from scratch with identical answers.
* **Group-commit writes.**  ``insert``/``delete`` requests enqueue into a
  per-session-group buffer and block on a commit future; a flusher task
  seals the batch when it reaches ``max_batch`` ops or the oldest op ages
  past ``max_delay_s``, coalesces the ops in arrival order to their net
  per-fact effect, and applies the whole batch as one
  ``delete_facts`` + ``insert_facts`` pair — one maintenance epoch for
  the batch instead of one per request.  A batch is **all-or-nothing**:
  any failure mid-apply rolls the instance back and fails every waiter
  with a :class:`FrontendWriteFailed` carrying the rationale.  A waiter
  cancelled (or timed out) before its batch seals withdraws the op.
* **Snapshot reads.**  Every read pins a versioned
  :class:`~repro.service.session.SessionSnapshot` *before* its first
  await; the frozen immutable ``Instance`` underneath never changes, so
  readers observe exactly the group-commit version they were admitted at
  even while flushes advance the session — they never block on (or
  observe half of) DRed maintenance.
* **Admission control.**  Requests are admitted against a queue-depth
  budget (in-flight reads plus buffered writes).  Past the *degrade*
  limit, tier-2 tenants shed first: their reads fall back to the last
  served answers (marked ``degraded``), their writes are rejected; past
  ``max_pending`` everything is rejected.  Every rejection raises
  :class:`FrontendRejected` with a rationale, and the shed counters are
  surfaced through :meth:`Frontend.explain` (the ``frontend`` block of
  ``obda-explain/v2``) and ``tel.*`` counters/histograms.

The serial correctness story is the one the concurrency test harness
checks answer-for-answer: replaying a group's :meth:`~Frontend.commit_log`
through :func:`replay_commit_log` on a fresh serial session must reproduce
every non-degraded read's answers at its version.  See ``docs/frontend.md``.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ..core.instance import Fact
from ..datalog.ddlog import DisjunctiveDatalogProgram
from ..obs import telemetry as _telemetry
from ..obs.telemetry import Reservoir
from ..planner import PlanCache, PlanPolicy, plan_for_tier, plan_program
from .session import DEFAULT_QUERY, ObdaSession, SessionSnapshot, _compile

__all__ = [
    "FaultInjector",
    "Frontend",
    "FrontendClosed",
    "FrontendConfig",
    "FrontendError",
    "FrontendRejected",
    "FrontendWriteFailed",
    "InjectedFault",
    "ReadResult",
    "replay_commit_log",
]


class FrontendError(RuntimeError):
    """Base class of every frontend-raised serving error."""


class FrontendRejected(FrontendError):
    """A request shed by admission control; carries the rationale."""

    def __init__(self, tenant: str, rationale: str) -> None:
        super().__init__(f"request from tenant {tenant!r} rejected: {rationale}")
        self.tenant = tenant
        self.rationale = rationale


class FrontendWriteFailed(FrontendError):
    """A group-commit batch aborted; the whole batch was rolled back."""


class FrontendClosed(FrontendError):
    """The frontend no longer accepts requests."""


class InjectedFault(RuntimeError):
    """The failure :class:`FaultInjector` raises at its hook points."""


@dataclass
class FaultInjector:
    """Deterministic fault hooks for the concurrency test harness.

    ``fail_flushes`` names 1-based flush ordinals (per frontend, in flush
    order) to abort *mid-apply* — after the batch's deletes landed, before
    its inserts — the worst spot for all-or-nothing semantics.
    ``query_delay_s`` widens every read's single await point so tests can
    deterministically interleave flushes, cancellations, and timeouts with
    in-flight reads.
    """

    fail_flushes: set[int] = field(default_factory=set)
    query_delay_s: float = 0.0
    injected: int = 0

    def on_flush(self, ordinal: int) -> None:
        if ordinal in self.fail_flushes:
            self.injected += 1
            raise InjectedFault(f"injected fault mid-apply in flush {ordinal}")


@dataclass(frozen=True)
class FrontendConfig:
    """The serving knobs of a :class:`Frontend`.

    ``max_batch``/``max_delay_s`` bound a group-commit window (ops and
    age); ``max_pending`` is the hard admission budget over in-flight
    reads plus buffered writes, ``degrade_limit`` the earlier threshold at
    which tier-2 tenants shed (default: 3/4 of ``max_pending``);
    ``latency_window`` sizes the per-tenant p50/p99 reservoirs;
    ``plan_cache_capacity`` bounds the cross-tenant program cache.
    """

    max_batch: int = 32
    max_delay_s: float = 0.005
    max_pending: int = 256
    degrade_limit: int | None = None
    latency_window: int = 512
    plan_cache_capacity: int = 128

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_delay_s < 0:
            raise ValueError(f"max_delay_s must be >= 0, got {self.max_delay_s}")
        if self.max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {self.max_pending}")
        if self.degrade_limit is not None and not (
            0 < self.degrade_limit <= self.max_pending
        ):
            raise ValueError(
                f"degrade_limit must be in (0, max_pending], got "
                f"{self.degrade_limit}"
            )

    @property
    def resolved_degrade_limit(self) -> int:
        if self.degrade_limit is not None:
            return self.degrade_limit
        return max(1, (self.max_pending * 3) // 4)


@dataclass(frozen=True)
class ReadResult:
    """One served read: the answers plus the version they are pinned to.

    ``version`` is the group-commit version (count of successful flushes
    of the tenant's session group) the answers are exact at.  ``stale``
    marks a read whose pinned version was superseded by a flush before the
    answers were computed — the answers are still exact *at that version*.
    ``degraded`` marks a load-shed read served from the last cached
    answers instead of a fresh snapshot.
    """

    answers: frozenset
    version: int
    tenant: str
    query: str
    degraded: bool = False
    stale: bool = False
    elapsed_s: float = 0.0


class _WriteOp:
    """One buffered write request awaiting its batch's commit."""

    __slots__ = ("kind", "facts", "tenant", "future", "withdrawn")

    def __init__(
        self, kind: str, facts: tuple, tenant: str, future: asyncio.Future
    ) -> None:
        self.kind = kind
        self.facts = facts
        self.tenant = tenant
        self.future = future
        self.withdrawn = False


class _Group:
    """One shared session plus its group-commit and snapshot machinery."""

    def __init__(self, index: int, key: object, session) -> None:
        self.index = index
        self.key = key
        self.session = session
        self.tenants: list[str] = []
        # -- write buffer ----------------------------------------------------
        self.pending: list[_WriteOp] = []
        self.first_enqueued_s: float | None = None
        self.wake = asyncio.Event()
        self.size_wake = asyncio.Event()
        self.flusher: asyncio.Task | None = None
        # -- commit state ----------------------------------------------------
        self.version = 0
        self.commit_log: list[dict] = []
        self.flushes = 0
        self.ops_batched = 0
        self.rollbacks = 0
        self.withdrawn = 0
        self.reasons = {"size": 0, "deadline": 0, "drain": 0}
        # -- read state ------------------------------------------------------
        self._snapshot: SessionSnapshot | None = None
        self.last_answers: dict[str, tuple[int, frozenset]] = {}
        self.snapshot_reads = 0
        self.snapshot_fresh = 0
        self.snapshot_stale = 0

    def current_snapshot(self) -> SessionSnapshot:
        """The (cached) snapshot of the group's current commit version."""
        if self._snapshot is None:
            self._snapshot = self.session.snapshot(version=self.version)
        return self._snapshot


@dataclass
class _Tenant:
    """Registration record and per-tenant serving counters."""

    name: str
    tier: int
    group: _Group
    latency: Reservoir
    queries: int = 0
    writes: int = 0
    rejected: int = 0
    degraded: int = 0
    timeouts: int = 0
    last_rejection: str | None = None

    def describe(self) -> dict:
        return {
            "tier": self.tier,
            "queries": self.queries,
            "writes": self.writes,
            "rejected": self.rejected,
            "degraded": self.degraded,
            "timeouts": self.timeouts,
            "p50_s": self.latency.quantile(0.5),
            "p99_s": self.latency.quantile(0.99),
            "last_rejection": self.last_rejection,
        }


def _resolve_query(session, name: str | None) -> str:
    names = session.query_names
    if name is None:
        if len(names) == 1:
            return names[0]
        raise ValueError(f"session serves {sorted(names)}; pass a query name")
    if name not in names:
        raise KeyError(f"unknown query {name!r}; session serves {sorted(names)}")
    return name


class Frontend:
    """An asyncio multi-tenant serving loop over shared compiled sessions.

    Construct with either a prebuilt ``session`` (any object serving the
    session API — plain or sharded) or a ``workload`` compiled into one;
    both become the *default group* that tenants registering without a
    workload attach to.  Tenants registering *with* a workload are routed
    through the :class:`~repro.planner.PlanCache`: structurally identical
    workloads land in the same group and share its warm session.

    The request API is ``await``-based: :meth:`query` serves snapshot
    reads, :meth:`insert`/:meth:`delete` enqueue group-committed writes
    and resolve to the commit version, :meth:`drain` force-flushes,
    :meth:`close` shuts the loop down.  All methods must be called from
    one event loop; the frontend is single-threaded by design (like the
    sessions underneath it).
    """

    def __init__(
        self,
        workload=None,
        session=None,
        *,
        policy: PlanPolicy | None = None,
        config: FrontendConfig | None = None,
        faults: FaultInjector | None = None,
        plan_cache: PlanCache | None = None,
    ) -> None:
        if workload is not None and session is not None:
            raise ValueError("pass either workload= or session=, not both")
        self.config = config if config is not None else FrontendConfig()
        self.faults = faults
        self.plan_cache = (
            plan_cache
            if plan_cache is not None
            else PlanCache(self.config.plan_cache_capacity)
        )
        self._policy = policy
        self._groups: dict[object, _Group] = {}
        self._tenants: dict[str, _Tenant] = {}
        self._default_group: _Group | None = None
        self._closed = False
        self._inflight_reads = 0
        self._latency = Reservoir(self.config.latency_window)
        self.rejected_total = 0
        self.degraded_total = 0
        self.rejected_by_tier: dict[int, int] = {}
        if workload is not None:
            session = ObdaSession(workload, policy=policy)
        if session is not None:
            self._default_group = self._add_group("__default__", session)

    # -- registration ----------------------------------------------------------

    def _add_group(self, key: object, session) -> _Group:
        group = _Group(len(self._groups), key, session)
        self._groups[key] = group
        return group

    def register_tenant(
        self, tenant: str, workload=None, tier: int = 1
    ) -> None:
        """Admit a tenant; compile and intern its workload (if any).

        Without a ``workload`` the tenant attaches to the default group.
        With one, each compiled program is interned through the plan
        cache and planned — structurally identical workloads hit the
        planner's per-program plan cache and share one serving session.
        ``tier`` is the tenant's service class: tier-2 tenants are the
        first shed under load.
        """
        if self._closed:
            raise FrontendClosed("frontend is closed")
        if tenant in self._tenants:
            raise ValueError(f"tenant {tenant!r} is already registered")
        if tier not in (0, 1, 2):
            raise ValueError(f"tier must be 0, 1, or 2, got {tier}")
        if workload is None:
            group = self._default_group
            if group is None:
                raise ValueError(
                    "no default session: construct the Frontend with a "
                    "workload/session or register tenants with workloads"
                )
        else:
            if isinstance(workload, Mapping):
                entries = dict(workload)
            else:
                entries = {DEFAULT_QUERY: workload}
            compiled = {
                name: self.plan_cache.intern(_compile(entry))
                for name, entry in entries.items()
            }
            policy = self._policy
            for program in compiled.values():
                # Plan at registration time: a shared representative hits
                # the per-program plan cache here, which is what makes
                # cross-tenant sharing observable in the planner counters.
                if policy is not None and policy.tier is not None:
                    plan_for_tier(program, policy.tier, caps=policy.unfold_caps)
                else:
                    plan_program(
                        program,
                        policy.planning_view() if policy is not None else None,
                    )
            key = tuple(
                sorted((name, id(program)) for name, program in compiled.items())
            )
            group = self._groups.get(key)
            if group is None:
                group = self._add_group(
                    key, ObdaSession(compiled, policy=policy)
                )
        group.tenants.append(tenant)
        self._tenants[tenant] = _Tenant(
            name=tenant,
            tier=tier,
            group=group,
            latency=Reservoir(self.config.latency_window),
        )

    # -- introspection ---------------------------------------------------------

    @property
    def tenant_count(self) -> int:
        return len(self._tenants)

    @property
    def group_count(self) -> int:
        return len(self._groups)

    def queue_depth(self) -> int:
        """In-flight reads plus buffered writes — the admission figure."""
        return self._inflight_reads + sum(
            len(group.pending) for group in self._groups.values()
        )

    def _require_tenant(self, tenant: str) -> _Tenant:
        record = self._tenants.get(tenant)
        if record is None:
            raise KeyError(f"unknown tenant {tenant!r}; register_tenant first")
        return record

    def _resolve_group(self, tenant: str | None) -> _Group:
        if tenant is not None:
            return self._require_tenant(tenant).group
        if len(self._groups) == 1:
            return next(iter(self._groups.values()))
        raise ValueError(
            f"frontend serves {len(self._groups)} session groups; "
            "pass a tenant to pick one"
        )

    def session(self, tenant: str | None = None):
        """The shared session of the (tenant's) group."""
        return self._resolve_group(tenant).session

    def version(self, tenant: str | None = None) -> int:
        """The group-commit version (successful flushes) of the group."""
        return self._resolve_group(tenant).version

    def commit_log(self, tenant: str | None = None) -> tuple[dict, ...]:
        """The group's committed batches, in commit order.

        Each record carries ``version``, the applied ``inserts`` and
        ``deletes`` (net, in application order), the flush ``reason``, the
        op count, and the session epoch after the batch — everything
        :func:`replay_commit_log` needs to rebuild a serial twin.
        """
        return tuple(
            dict(entry) for entry in self._resolve_group(tenant).commit_log
        )

    def programs(
        self, tenant: str | None = None
    ) -> dict[str, DisjunctiveDatalogProgram]:
        session = self._resolve_group(tenant).session
        return {name: session.program(name) for name in session.query_names}

    def explain(self, tenant: str | None = None) -> dict:
        """The group's ``obda-explain/v2`` report plus the ``frontend`` block.

        The session report is extended with per-tenant traffic/latency
        records, the global admission shed counters (with the last
        rejection rationale per tenant), the group's batching counters,
        and its snapshot-read freshness — the shape
        :func:`repro.service.explain.validate_explain` checks when a
        ``frontend`` key is present.
        """
        group = self._resolve_group(tenant)
        report = group.session.explain()
        mean_batch = group.ops_batched / group.flushes if group.flushes else 0.0
        report["frontend"] = {
            "tenants": {
                name: record.describe()
                for name, record in sorted(self._tenants.items())
            },
            "admission": {
                "max_pending": self.config.max_pending,
                "degrade_limit": self.config.resolved_degrade_limit,
                "queue_depth": self.queue_depth(),
                "rejected": self.rejected_total,
                "degraded": self.degraded_total,
                "by_tier": dict(sorted(self.rejected_by_tier.items())),
            },
            "batching": {
                "max_batch": self.config.max_batch,
                "max_delay_s": self.config.max_delay_s,
                "flushes": group.flushes,
                "ops_batched": group.ops_batched,
                "mean_batch": mean_batch,
                "rollbacks": group.rollbacks,
                "withdrawn": group.withdrawn,
                "reasons": dict(group.reasons),
            },
            "snapshots": {
                "reads": group.snapshot_reads,
                "fresh": group.snapshot_fresh,
                "stale": group.snapshot_stale,
                "version": group.version,
            },
        }
        return report

    def describe(self) -> dict:
        """Frontend-wide counters (tenants, groups, cache, admission)."""
        return {
            "tenants": self.tenant_count,
            "groups": self.group_count,
            "queue_depth": self.queue_depth(),
            "rejected": self.rejected_total,
            "degraded": self.degraded_total,
            "plan_cache": self.plan_cache.describe(),
            "latency": self._latency.describe(),
        }

    # -- admission -------------------------------------------------------------

    def _reject(self, record: _Tenant, rationale: str) -> None:
        record.rejected += 1
        record.last_rejection = rationale
        self.rejected_total += 1
        self.rejected_by_tier[record.tier] = (
            self.rejected_by_tier.get(record.tier, 0) + 1
        )
        tel = _telemetry.ACTIVE
        if tel is not None:
            tel.count("frontend.rejected")
        raise FrontendRejected(record.name, rationale)

    def _admit(self, record: _Tenant, kind: str) -> str:
        """Admission verdict: ``"serve"``, ``"degrade"``, or an exception."""
        if self._closed:
            raise FrontendClosed("frontend is closed")
        depth = self.queue_depth()
        tel = _telemetry.ACTIVE
        if tel is not None:
            tel.record("frontend.queue_depth", depth)
        if depth >= self.config.max_pending:
            self._reject(
                record,
                f"queue depth {depth} >= max_pending "
                f"{self.config.max_pending}",
            )
        limit = self.config.resolved_degrade_limit
        if record.tier >= 2 and depth >= limit:
            if kind == "write":
                self._reject(
                    record,
                    f"tier-2 write shed: queue depth {depth} >= "
                    f"degrade limit {limit}",
                )
            return "degrade"
        return "serve"

    # -- reads -----------------------------------------------------------------

    async def query(
        self,
        tenant: str,
        name: str | None = None,
        timeout: float | None = None,
    ) -> ReadResult:
        """Serve one snapshot read for the tenant.

        The snapshot is pinned at admission (before the first await), so
        the answers are exact at the returned ``version`` no matter how
        many flushes land while the read is in flight.  ``timeout`` bounds
        the wall-clock wait; expiry raises ``TimeoutError`` and counts
        against the tenant.
        """
        record = self._require_tenant(tenant)
        verdict = self._admit(record, "read")
        if timeout is None:
            return await self._serve_read(record, name, verdict)
        try:
            return await asyncio.wait_for(
                self._serve_read(record, name, verdict), timeout
            )
        except TimeoutError:
            record.timeouts += 1
            raise

    async def _serve_read(
        self, record: _Tenant, name: str | None, verdict: str
    ) -> ReadResult:
        group = record.group
        resolved = _resolve_query(group.session, name)
        start = _telemetry.now()
        self._inflight_reads += 1
        try:
            if verdict == "degrade":
                cached = group.last_answers.get(resolved)
                if cached is not None:
                    version, answers = cached
                    record.degraded += 1
                    self.degraded_total += 1
                    tel = _telemetry.ACTIVE
                    if tel is not None:
                        tel.count("frontend.degraded")
                    await asyncio.sleep(0)
                    return ReadResult(
                        answers=answers,
                        version=version,
                        tenant=record.name,
                        query=resolved,
                        degraded=True,
                        stale=version < group.version,
                        elapsed_s=_telemetry.now() - start,
                    )
                # Nothing cached to degrade to: fall through and serve
                # fresh (sheds nothing, but never blanks a paying read).
            snapshot = group.current_snapshot()
            faults = self.faults
            delay = faults.query_delay_s if faults is not None else 0.0
            # The read's single yield point: real requests interleave here.
            await asyncio.sleep(delay)
            answers = snapshot.certain_answers(resolved)
            stale = snapshot.version < group.version
            group.snapshot_reads += 1
            if stale:
                group.snapshot_stale += 1
            else:
                group.snapshot_fresh += 1
                group.last_answers[resolved] = (snapshot.version, answers)
            record.queries += 1
            elapsed = _telemetry.now() - start
            record.latency.observe(elapsed)
            self._latency.observe(elapsed)
            tel = _telemetry.ACTIVE
            if tel is not None:
                tel.count("frontend.queries")
                tel.record("frontend.query_s", elapsed)
            return ReadResult(
                answers=answers,
                version=snapshot.version,
                tenant=record.name,
                query=resolved,
                stale=stale,
                elapsed_s=elapsed,
            )
        finally:
            self._inflight_reads -= 1

    # -- writes ----------------------------------------------------------------

    async def insert(
        self,
        tenant: str,
        facts: Iterable[Fact],
        timeout: float | None = None,
    ) -> int:
        """Enqueue an insert into the tenant group's next batch.

        Resolves to the group-commit version the batch committed as.
        Raises :class:`FrontendWriteFailed` when the batch aborted (all
        its ops rolled back), :class:`FrontendRejected` when shed at
        admission.  Cancellation or timeout before the batch seals
        withdraws the op cleanly.
        """
        return await self._write(tenant, "insert", facts, timeout)

    async def delete(
        self,
        tenant: str,
        facts: Iterable[Fact],
        timeout: float | None = None,
    ) -> int:
        """Enqueue a delete into the tenant group's next batch."""
        return await self._write(tenant, "delete", facts, timeout)

    async def _write(
        self,
        tenant: str,
        kind: str,
        facts: Iterable[Fact],
        timeout: float | None,
    ) -> int:
        record = self._require_tenant(tenant)
        self._admit(record, "write")
        group = record.group
        op = _WriteOp(
            kind,
            tuple(facts),
            record.name,
            asyncio.get_running_loop().create_future(),
        )
        if not group.pending:
            group.first_enqueued_s = _telemetry.now()
        group.pending.append(op)
        record.writes += 1
        tel = _telemetry.ACTIVE
        if tel is not None:
            tel.count("frontend.writes")
        self._ensure_flusher(group)
        group.wake.set()
        if len(group.pending) >= self.config.max_batch:
            group.size_wake.set()
        try:
            if timeout is None:
                return await op.future
            return await asyncio.wait_for(op.future, timeout)
        except TimeoutError:
            # The op may still be in the unsealed buffer — withdraw it.
            # (If the batch sealed in the same tick, the commit happened;
            # the caller must treat a timeout as "outcome unknown".)
            op.withdrawn = True
            record.timeouts += 1
            raise
        except asyncio.CancelledError:
            op.withdrawn = True
            raise

    def _ensure_flusher(self, group: _Group) -> None:
        if group.flusher is None or group.flusher.done():
            # The wake events bind to the loop that first awaits them, and
            # only the flusher ever awaits them — so a fresh flusher gets
            # fresh events.  This keeps a frontend usable across
            # successive ``asyncio.run`` scopes (each run tears down the
            # previous flusher task with its loop; ops stranded by a dead
            # loop carry cancelled futures and are withdrawn at flush).
            group.wake = asyncio.Event()
            group.size_wake = asyncio.Event()
            group.flusher = asyncio.get_running_loop().create_task(
                self._flush_loop(group)
            )

    async def _flush_loop(self, group: _Group) -> None:
        """The group's flusher: seal batches on size or deadline."""
        config = self.config
        while True:
            if not group.pending:
                group.wake.clear()
                if self._closed:
                    return
                await group.wake.wait()
                continue
            deadline = (group.first_enqueued_s or 0.0) + config.max_delay_s
            while len(group.pending) < config.max_batch:
                remaining = deadline - _telemetry.now()
                if remaining <= 0:
                    break
                group.size_wake.clear()
                try:
                    await asyncio.wait_for(group.size_wake.wait(), remaining)
                except TimeoutError:
                    break
            if not group.pending:
                continue  # drained (or fully withdrawn) while we waited
            reason = (
                "size"
                if len(group.pending) >= config.max_batch
                else "deadline"
            )
            self._flush(group, reason)

    def _flush(self, group: _Group, reason: str) -> None:
        """Seal and apply one batch.  Synchronous — atomic on the loop.

        Ops are coalesced in arrival order to their net per-fact effect
        (an insert-then-delete of the same fact cancels out, and vice
        versa), then applied as one ``delete_facts`` + ``insert_facts``
        pair.  Any failure mid-apply restores the pre-batch instance and
        fails every waiter; on success every waiter resolves to the new
        group-commit version.
        """
        ops = group.pending
        if not ops:
            return
        group.pending = []
        group.first_enqueued_s = None
        group.size_wake.clear()
        # A cancelled waiter's future is cancelled *immediately*, but its
        # ``except CancelledError`` handler (which sets ``withdrawn``) only
        # runs on the next loop tick — so a flush in the cancelling tick
        # must also treat cancelled-future ops as withdrawn.
        batch = [
            op for op in ops if not (op.withdrawn or op.future.cancelled())
        ]
        withdrawn = len(ops) - len(batch)
        tel = _telemetry.ACTIVE
        if withdrawn:
            group.withdrawn += withdrawn
            if tel is not None:
                tel.count("frontend.withdrawn", withdrawn)
        if not batch:
            return
        ins: dict[Fact, None] = {}
        dels: dict[Fact, None] = {}
        for op in batch:
            if op.kind == "insert":
                for fact in op.facts:
                    if fact in dels:
                        del dels[fact]
                    else:
                        ins[fact] = None
            else:
                for fact in op.facts:
                    if fact in ins:
                        del ins[fact]
                    else:
                        dels[fact] = None
        session = group.session
        ordinal = group.flushes + group.rollbacks + 1
        start = _telemetry.now()
        deleted: tuple[Fact, ...] = ()
        with _telemetry.maybe_span(
            "frontend.flush", group=group.index, ops=len(batch), reason=reason
        ):
            try:
                live = session.instance.facts
                deleted = tuple(fact for fact in dels if fact in live)
                if deleted:
                    session.delete_facts(deleted)
                faults = self.faults
                if faults is not None:
                    faults.on_flush(ordinal)
                live = session.instance.facts
                inserted = tuple(fact for fact in ins if fact not in live)
                if inserted:
                    session.insert_facts(inserted)
            except Exception as error:
                # All-or-nothing: restore the pre-batch instance (the only
                # mutation so far was the delete phase) and fail everyone.
                if deleted:
                    session.insert_facts(deleted)
                group.rollbacks += 1
                if tel is not None:
                    tel.count("frontend.rollbacks")
                failure = FrontendWriteFailed(
                    f"group-commit batch {ordinal} ({len(batch)} op(s)) "
                    f"aborted and rolled back: {error}"
                )
                for op in batch:
                    if not op.future.done():
                        op.future.set_exception(failure)
                return
        group.version += 1
        group._snapshot = None
        group.flushes += 1
        group.ops_batched += len(batch)
        group.reasons[reason] += 1
        group.commit_log.append(
            {
                "version": group.version,
                "reason": reason,
                "ops": len(batch),
                "inserts": inserted,
                "deletes": deleted,
                "epoch": session.stats.epoch,
            }
        )
        if tel is not None:
            tel.count("frontend.flushes")
            tel.record("frontend.batch_size", len(batch))
            tel.record("frontend.flush_s", _telemetry.now() - start)
        for op in batch:
            if not op.future.done():
                op.future.set_result(group.version)

    # -- lifecycle -------------------------------------------------------------

    async def drain(self) -> None:
        """Force-flush every group's buffered writes now."""
        for group in self._groups.values():
            if group.pending:
                self._flush(group, "drain")
        await asyncio.sleep(0)

    async def close(self) -> None:
        """Flush outstanding writes and stop every flusher task."""
        if self._closed:
            return
        self._closed = True
        await self.drain()
        tasks = [
            group.flusher
            for group in self._groups.values()
            if group.flusher is not None and not group.flusher.done()
        ]
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)


def replay_commit_log(
    programs: Mapping[str, DisjunctiveDatalogProgram],
    commit_log: Sequence[Mapping],
    versions: Iterable[int] | None = None,
    policy: PlanPolicy | None = None,
) -> dict[int, dict[str, frozenset]]:
    """Answers of a *serial twin* replaying committed batches in order.

    Builds a fresh single-caller :class:`ObdaSession` over the same
    compiled programs and applies every commit-log batch exactly as the
    frontend did (deletes, then inserts).  Returns the certain answers of
    every query at each requested group-commit version (all versions,
    0..len(log), when ``versions`` is None) — the reference the
    concurrency harness cross-validates every concurrent read against.
    """
    twin = ObdaSession(dict(programs), policy=policy)
    wanted = None if versions is None else set(versions)
    answers: dict[int, dict[str, frozenset]] = {}
    if wanted is None or 0 in wanted:
        answers[0] = twin.answer_all()
    for entry in commit_log:
        if entry["deletes"]:
            twin.delete_facts(entry["deletes"])
        if entry["inserts"]:
            twin.insert_facts(entry["inserts"])
        version = entry["version"]
        if wanted is None or version in wanted:
            answers[version] = twin.answer_all()
    return answers
