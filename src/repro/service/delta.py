"""Delta grounding and incremental certain-answer maintenance.

The serving layer keeps a ground disjunctive-datalog program *warm* across a
stream of ABox updates.  Two maintenance strategies cover the two program
classes:

**Support-guarded delta grounding** (:class:`DeltaGrounder`), for arbitrary
(disjunctive) programs.  Every ground clause instantiation carries its
*support* as extra assumption literals:

* one *fact guard* ``guard(f)`` per EDB fact ``f`` used by the clause's body
  join, and
* one *domain guard* ``in_adom(c)`` per active-domain element ``c`` the
  clause's free variables were instantiated with (and per constant ``adom``
  guard of the rule).

Domain guards are derived, never assumed: for every fact ``f`` and constant
``c`` occurring in it, a support clause ``guard(f) → in_adom(c)`` is emitted,
so ``in_adom(c)`` is forced true exactly while some live fact mentions ``c``.
The session asserts ``guard(f)`` as a persistent solver assumption while
``f`` is live and simply retracts it on deletion — the clause database and
all learned clauses survive, because guards are ordinary atoms and learned
clauses are implied by the clause database alone.  On insertion, only clause
instantiations whose body join touches the delta (semi-naive, through the
engine's join planner) or whose free variables touch a new domain element
are grounded and pushed into the live solver.

**DRed maintenance** (:class:`IncrementalFixpoint`), for disjunction-free
programs: the materialized least fixpoint is maintained by semi-naive
insertion and delete-and-rederive (over-delete everything whose derivation
touched a deleted fact, then re-derive what survives from the remainder).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, Mapping

from ..core.cq import Atom, Variable
from ..core.instance import Fact, Instance, MutableIndexedInstance
from ..core.interning import Interner, IntRow
from ..core.schema import RelationSymbol
from ..datalog.ddlog import ADOM, GOAL, DisjunctiveDatalogProgram, Rule
from ..datalog.plain import DatalogProgram, seed_row_builder
from ..engine.grounder import _split_body, instantiate_atom
from ..engine.joins import JoinPlan, compile_join, execute_join, join_exists
from ..engine.sat import Clause
from ..obs import telemetry as _telemetry

Element = Hashable

_ADOM_SYMBOL = RelationSymbol(ADOM, 1)


def fact_guard(fact: Fact) -> tuple:
    """The activation literal standing for "fact is live"."""
    return ("guard", fact)


def adom_guard(element: Element) -> tuple:
    """The derived literal standing for "element is in the active domain"."""
    return ("in_adom", element)


@dataclass
class _RuleState:
    """Per-rule grounding state: the body split and the join results seen.

    ``partials`` maps the interned key of each EDB join result — its row of
    codes in sorted EDB-variable order, stable across epochs because the
    session's delta copies share one append-only interner — to the decoded
    assignment used for clause emission.  ``plans`` caches, per EDB atom
    index, the compiled rest-of-body join plan, its seed-row builder and
    the permutation onto the key order; compiled once per session and
    reused every epoch (guarded by ``plans_interner`` identity).
    """

    rule: Rule
    edb_atoms: list[Atom]
    adom_atoms: list[Atom]
    idb_atoms: list[Atom]
    free: list[Variable]
    partials: dict[tuple, dict] = field(default_factory=dict)
    plans: list[tuple] | None = None
    plans_interner: "Interner | None" = None

    def compile_plans(self, store) -> list[tuple]:
        interner = store.interner
        if self.plans is None or self.plans_interner is not interner:
            edb_variables = sorted(
                {v for atom in self.edb_atoms for v in atom.variables},
                key=lambda v: v.name,
            )
            plans = []
            for index, atom in enumerate(self.edb_atoms):
                rest = self.edb_atoms[:index] + self.edb_atoms[index + 1 :]
                plan = compile_join(rest, store, bound=atom.variables)
                slot_of = {v: s for s, v in enumerate(plan.variables)}
                perm = tuple(slot_of[v] for v in edb_variables)
                plans.append(
                    (plan, seed_row_builder(atom, plan, interner), perm)
                )
            self.plans = plans
            self.plans_interner = interner
        return self.plans


class DeltaGrounder:
    """Grounds only what an insertion can newly justify.

    The grounder mirrors the from-scratch semantics of
    :func:`repro.engine.grounder.ground_program` exactly — for the live fact
    set, a clause is *active* (all its guards hold) iff the from-scratch
    grounding over the current instance would contain its unguarded core —
    so a session's answers always agree with a fresh recomputation.
    """

    def __init__(self, program: DisjunctiveDatalogProgram) -> None:
        self.program = program
        self._idb_names = frozenset(
            {sym.name for sym in program.idb_relations} | {GOAL}
        ) - {ADOM}
        self._rules: list[_RuleState] = []
        self._emitted: set[Clause] = set()
        self.clauses_emitted = 0
        self.instantiations = 0  # clause instantiations attempted (incl. tautologies)
        bootstrap: list[Clause] = []
        for rule in program.rules:
            edb_atoms, adom_atoms, idb_atoms = _split_body(
                rule, self._idb_names, ADOM
            )
            free = sorted(
                {
                    v
                    for v in rule.variables
                    if not any(v in a.variables for a in edb_atoms)
                },
                key=str,
            )
            state = _RuleState(rule, edb_atoms, adom_atoms, idb_atoms, free)
            self._rules.append(state)
            if not edb_atoms:
                # The empty join result holds in every instance (including
                # the empty one a session starts from); store it now so later
                # epochs only top it up with new domain elements.
                state.partials[()] = {}
                if not free:
                    self._emit_clause(state, {}, (), bootstrap.append)
        self._bootstrap = bootstrap

    def bootstrap_clauses(self) -> list[Clause]:
        """Clauses valid over the empty instance (rules without EDB atoms or
        free variables); push these into the solver before the first epoch."""
        return list(self._bootstrap)

    # -- insertion -------------------------------------------------------------

    def insert(
        self,
        old_instance: Instance,
        delta: Instance,
        new_instance: Instance,
    ) -> list[Clause]:
        """The guarded clauses newly justified by inserting ``delta``.

        ``new_instance`` must equal ``old_instance`` plus ``delta``.  Clauses
        already emitted in an earlier epoch (a deleted fact being re-inserted)
        are not re-emitted: retracting and re-asserting their guards is all
        the reactivation they need.
        """
        instantiations_before = self.instantiations
        emitted: list[Clause] = []

        def emit(clause: Clause) -> None:
            if clause not in self._emitted:
                self._emitted.add(clause)
                emitted.append(clause)

        # guard(f) -> in_adom(c) for every constant of every new fact
        for fact in sorted(delta, key=str):
            for constant in set(fact.arguments):
                emit(
                    (
                        frozenset([fact_guard(fact)]),
                        frozenset([adom_guard(constant)]),
                    )
                )

        new_elements = delta.active_domain - old_instance.active_domain
        full_domain = sorted(new_instance.active_domain, key=repr)
        for state in self._rules:
            arity = len(state.free)
            # Existing join results meet the new domain elements: enumerate
            # only the free-variable tuples touching at least one of them.
            if new_elements and arity and state.partials:
                top_up = [
                    values
                    for values in itertools.product(full_domain, repeat=arity)
                    if any(value in new_elements for value in values)
                ]
                for partial in state.partials.values():
                    for values in top_up:
                        self._emit_clause(state, partial, values, emit)
            # New join results: semi-naive over the EDB atoms, each atom in
            # turn matched against the delta as a whole batch, the rest
            # joined set-at-a-time against the full instance through the
            # cached compiled plans (the delta's rows are interned into the
            # session's shared interner on the way in).
            if not state.edb_atoms:
                continue
            interner = new_instance.interner
            plans = state.compile_plans(new_instance)
            new_partials: list[dict] = []
            for index, atom in enumerate(state.edb_atoms):
                rows = delta.tuples(atom.relation)
                if not rows:
                    continue
                plan, build_seed, perm = plans[index]
                seeds = []
                for row in rows:
                    seed = build_seed(interner.intern_row(row))
                    if seed is not None:
                        seeds.append(seed)
                if not seeds:
                    continue
                for result in execute_join(plan, new_instance, seeds):
                    key = tuple(result[p] for p in perm)
                    if key in state.partials:
                        continue
                    assignment = plan.assignment(result, interner)
                    state.partials[key] = assignment
                    new_partials.append(assignment)
            if new_partials:
                all_tuples = list(itertools.product(full_domain, repeat=arity))
                for assignment in new_partials:
                    for values in all_tuples:
                        self._emit_clause(state, assignment, values, emit)
        self.clauses_emitted += len(emitted)
        tel = _telemetry.ACTIVE
        if tel is not None:
            tel.count("delta.ground_inserts")
            tel.count("delta.clauses_emitted", len(emitted))
            tel.count(
                "delta.instantiations",
                self.instantiations - instantiations_before,
            )
        return emitted

    # -- clause construction ---------------------------------------------------

    def _emit_clause(
        self,
        state: _RuleState,
        partial: Mapping[Variable, Element],
        values: tuple,
        emit: Callable[[Clause], None],
    ) -> None:
        self.instantiations += 1
        assignment = dict(partial)
        assignment.update(zip(state.free, values))
        negative = {instantiate_atom(a, assignment) for a in state.idb_atoms}
        positive = frozenset(
            instantiate_atom(a, assignment) for a in state.rule.head
        )
        if negative & positive:
            return  # tautology
        for atom in state.edb_atoms:
            relation, arguments = instantiate_atom(atom, assignment)
            negative.add(fact_guard(Fact(relation, arguments)))
        for value in values:
            negative.add(adom_guard(value))
        for atom in state.adom_atoms:
            term = atom.arguments[0]
            if not isinstance(term, Variable):
                negative.add(adom_guard(term))
        emit((frozenset(negative), positive))


# ---------------------------------------------------------------------------
# DRed maintenance of plain-datalog fixpoints
# ---------------------------------------------------------------------------


class IncrementalFixpoint:
    """A materialized least fixpoint maintained under fact-level updates.

    Insertions run semi-naive rounds seeded by the delta; deletions use
    DRed (delete-and-rederive): over-delete every fact whose derivation may
    have used a deleted fact, then re-derive the survivors from what is
    left.  ``adom`` facts are maintained directly from the EDB instance's
    active domain, exactly as :meth:`DatalogProgram.least_fixpoint` seeds
    them.
    """

    def __init__(
        self, program: DatalogProgram, instance: Instance | None = None
    ) -> None:
        self.program = program
        self._edb = instance if instance is not None else Instance([])
        self._fixpoint = program.least_fixpoint(self._edb)
        # Re-derivation plans (whole rule body bound by the head variables),
        # lazily compiled per rule and reused across epochs: the session's
        # delta copies and fixpoints all share one append-only interner, so
        # the identity guard only recompiles if a caller ever swaps in an
        # unrelated instance.  The semi-naive per-rule plans live on the
        # program itself (:meth:`DatalogProgram.compiled_rules`).
        self._rederive_plans: list[tuple[JoinPlan, Callable] | None] | None = None
        self._rederive_interner: Interner | None = None

    def _rederive(
        self, rule_index: int, store
    ) -> tuple[JoinPlan, Callable]:
        """One rule's re-derivation plan: the whole body bound by the head
        variables, plus the head-row matcher seeding it (DRed checks)."""
        interner = store.interner
        if self._rederive_plans is None or self._rederive_interner is not interner:
            self._rederive_plans = [None] * len(self.program.rules)
            self._rederive_interner = interner
        entry = self._rederive_plans[rule_index]
        if entry is None:
            rule = self.program.rules[rule_index]
            head = rule.head[0]
            plan = compile_join(rule.body, store, bound=head.variables)
            entry = (plan, seed_row_builder(head, plan, interner))
            self._rederive_plans[rule_index] = entry
        return entry

    @property
    def edb(self) -> Instance:
        return self._edb

    @property
    def fixpoint(self) -> Instance:
        return self._fixpoint

    def goal_answers(self) -> frozenset[tuple]:
        """Goal tuples over the active domain (the certain answers of a
        disjunction-free program)."""
        adom = self._edb.active_domain
        return frozenset(
            row
            for row in self._fixpoint.tuples(self.program.goal_relation)
            if all(value in adom for value in row)
        )

    # -- updates ---------------------------------------------------------------

    def insert(self, facts: Iterable[Fact]) -> None:
        added = [f for f in facts if f not in self._edb.facts]
        if not added:
            return
        with _telemetry.maybe_span("dred.insert", facts=len(added)):
            new_edb = self._edb.with_facts(added)
            new_elements = new_edb.active_domain - self._edb.active_domain
            self._edb = new_edb
            delta = list(added) + [
                Fact(_ADOM_SYMBOL, (element,)) for element in new_elements
            ]
            self._propagate(delta)

    def delete(self, facts: Iterable[Fact]) -> None:
        removed = [f for f in facts if f in self._edb.facts]
        if not removed:
            return
        new_edb = self._edb.without_facts(removed)
        dropped = self._edb.active_domain - new_edb.active_domain
        self._edb = new_edb
        # Over-deletion: anything derivable through a deleted fact, computed
        # against the pre-deletion fixpoint (the standard over-approximation).
        # The whole pass runs on interned rows: the old fixpoint, the new
        # EDB and the compiled plans share the session interner, so the
        # frontier is a dict of row batches and membership checks hash ints.
        old_fixpoint = self._fixpoint
        interner = old_fixpoint.interner
        compiled = self.program.compiled_rules(old_fixpoint)
        protected_adom = {
            interner.code(element) for element in new_edb.active_domain
        }
        overdeleted: dict[RelationSymbol, set[IntRow]] = {}
        frontier: dict[RelationSymbol, list[IntRow]] = {}

        def seed(relation: RelationSymbol, row: IntRow) -> None:
            overdeleted.setdefault(relation, set()).add(row)
            frontier.setdefault(relation, []).append(row)

        for fact in removed:
            seed(fact.relation, interner.intern_row(fact.arguments))
        for element in dropped:
            seed(_ADOM_SYMBOL, (interner.code(element),))
        while frontier:
            wave: dict[RelationSymbol, list[IntRow]] = {}
            for crule in compiled:
                head_relation = crule.rule.head[0].relation
                live = old_fixpoint.relation_rows(head_relation)
                gone = overdeleted.setdefault(head_relation, set())
                protected = (
                    new_edb.relation_rows(head_relation)
                    if head_relation != _ADOM_SYMBOL
                    else None
                )
                for build_head, rows in crule.delta_result_rows(
                    old_fixpoint, frontier
                ):
                    for row in rows:
                        head_row = build_head(row)
                        if head_row in gone or head_row not in live:
                            continue
                        if protected is None:
                            if head_row[0] in protected_adom:
                                continue
                        elif head_row in protected:
                            continue
                        gone.add(head_row)
                        wave.setdefault(head_relation, []).append(head_row)
            frontier = wave
        overdeleted_facts = [
            Fact(relation, interner.decode_row(row))
            for relation, rows in overdeleted.items()
            for row in rows
        ]
        remaining = self._fixpoint.without_facts(overdeleted_facts)
        self._fixpoint = remaining
        # Re-derivation: an over-deleted fact with an alternative derivation
        # from the remainder comes back (and propagates semi-naively).  The
        # removed facts themselves are candidates too — a deleted fact over
        # an IDB relation stays derived exactly when some rule still derives
        # it, matching a from-scratch recomputation.  Each candidate is one
        # early-exit existence probe of the rule body seeded by its head row.
        rederived = []
        for fact in sorted(overdeleted_facts, key=str):
            row = interner.intern_row(fact.arguments)
            for rule_index, rule in enumerate(self.program.rules):
                head = rule.head[0]
                if head.relation != fact.relation:
                    continue
                plan, match_head = self._rederive(rule_index, remaining)
                seed_row = match_head(row)
                if seed_row is None:
                    continue
                if join_exists(plan, remaining, seed_row):
                    rederived.append(fact)
                    break
        tel = _telemetry.ACTIVE
        if tel is not None:
            tel.count("dred.deletes")
            tel.count("dred.overdeleted", len(overdeleted_facts))
            tel.count("dred.rederived", len(rederived))
        if rederived:
            self._propagate(rederived)

    # -- semi-naive propagation ------------------------------------------------

    def _propagate(self, delta_facts: list[Fact]) -> None:
        # One mutable columnar store across all semi-naive rounds (same
        # pattern as DatalogProgram.least_fixpoint): each round seeds the
        # cached compiled plans with the previous round's delta batches, a
        # round's derivations are buffered and applied at the round
        # boundary, and the store is frozen once at saturation.
        current = MutableIndexedInstance(self._fixpoint)
        compiled = self.program.compiled_rules(current)
        interner = current.interner
        delta: dict[RelationSymbol, list[IntRow]] = {}
        for fact in delta_facts:
            row = interner.intern_row(fact.arguments)
            if current.add_row(fact.relation, row):
                delta.setdefault(fact.relation, []).append(row)
        while delta:
            pending: dict[RelationSymbol, set[IntRow]] = {}
            for crule in compiled:
                head_relation = crule.rule.head[0].relation
                derived = pending.get(head_relation)
                for build_head, rows in crule.delta_result_rows(current, delta):
                    for row in rows:
                        head_row = build_head(row)
                        if current.has_row(head_relation, head_row):
                            continue
                        if derived is None:
                            derived = pending.setdefault(head_relation, set())
                        derived.add(head_row)
            delta = {}
            for relation, rows in pending.items():
                fresh = [row for row in rows if current.add_row(relation, row)]
                if fresh:
                    delta[relation] = fresh
        self._fixpoint = current.freeze()
