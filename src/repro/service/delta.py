"""Delta grounding and incremental certain-answer maintenance.

The serving layer keeps a ground disjunctive-datalog program *warm* across a
stream of ABox updates.  Two maintenance strategies cover the two program
classes:

**Support-guarded delta grounding** (:class:`DeltaGrounder`), for arbitrary
(disjunctive) programs.  Every ground clause instantiation carries its
*support* as extra assumption literals:

* one *fact guard* ``guard(f)`` per EDB fact ``f`` used by the clause's body
  join, and
* one *domain guard* ``in_adom(c)`` per active-domain element ``c`` the
  clause's free variables were instantiated with (and per constant ``adom``
  guard of the rule).

Domain guards are derived, never assumed: for every fact ``f`` and constant
``c`` occurring in it, a support clause ``guard(f) → in_adom(c)`` is emitted,
so ``in_adom(c)`` is forced true exactly while some live fact mentions ``c``.
The session asserts ``guard(f)`` as a persistent solver assumption while
``f`` is live and simply retracts it on deletion — the clause database and
all learned clauses survive, because guards are ordinary atoms and learned
clauses are implied by the clause database alone.  On insertion, only clause
instantiations whose body join touches the delta (semi-naive, through the
engine's join planner) or whose free variables touch a new domain element
are grounded and pushed into the live solver.

**DRed maintenance** (:class:`IncrementalFixpoint`), for disjunction-free
programs: the materialized least fixpoint is maintained by semi-naive
insertion and delete-and-rederive (over-delete everything whose derivation
touched a deleted fact, then re-derive what survives from the remainder).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, Mapping

from ..core.cq import Atom, Variable
from ..core.instance import Fact, Instance, MutableIndexedInstance
from ..core.schema import RelationSymbol
from ..datalog.ddlog import ADOM, GOAL, DisjunctiveDatalogProgram, Rule
from ..datalog.plain import DatalogProgram, delta_body_matches
from ..engine.grounder import _split_body, instantiate_atom
from ..engine.joins import canonical_key, extend_assignment, join_assignments
from ..engine.sat import Clause

Element = Hashable

_ADOM_SYMBOL = RelationSymbol(ADOM, 1)


def fact_guard(fact: Fact) -> tuple:
    """The activation literal standing for "fact is live"."""
    return ("guard", fact)


def adom_guard(element: Element) -> tuple:
    """The derived literal standing for "element is in the active domain"."""
    return ("in_adom", element)


@dataclass
class _RuleState:
    """Per-rule grounding state: the body split and the join results seen."""

    rule: Rule
    edb_atoms: list[Atom]
    adom_atoms: list[Atom]
    idb_atoms: list[Atom]
    free: list[Variable]
    partials: dict[tuple, dict] = field(default_factory=dict)


class DeltaGrounder:
    """Grounds only what an insertion can newly justify.

    The grounder mirrors the from-scratch semantics of
    :func:`repro.engine.grounder.ground_program` exactly — for the live fact
    set, a clause is *active* (all its guards hold) iff the from-scratch
    grounding over the current instance would contain its unguarded core —
    so a session's answers always agree with a fresh recomputation.
    """

    def __init__(self, program: DisjunctiveDatalogProgram) -> None:
        self.program = program
        self._idb_names = frozenset(
            {sym.name for sym in program.idb_relations} | {GOAL}
        ) - {ADOM}
        self._rules: list[_RuleState] = []
        self._emitted: set[Clause] = set()
        self.clauses_emitted = 0
        bootstrap: list[Clause] = []
        for rule in program.rules:
            edb_atoms, adom_atoms, idb_atoms = _split_body(
                rule, self._idb_names, ADOM
            )
            free = sorted(
                {
                    v
                    for v in rule.variables
                    if not any(v in a.variables for a in edb_atoms)
                },
                key=str,
            )
            state = _RuleState(rule, edb_atoms, adom_atoms, idb_atoms, free)
            self._rules.append(state)
            if not edb_atoms:
                # The empty join result holds in every instance (including
                # the empty one a session starts from); store it now so later
                # epochs only top it up with new domain elements.
                state.partials[canonical_key({})] = {}
                if not free:
                    self._emit_clause(state, {}, (), bootstrap.append)
        self._bootstrap = bootstrap

    def bootstrap_clauses(self) -> list[Clause]:
        """Clauses valid over the empty instance (rules without EDB atoms or
        free variables); push these into the solver before the first epoch."""
        return list(self._bootstrap)

    # -- insertion -------------------------------------------------------------

    def insert(
        self,
        old_instance: Instance,
        delta: Instance,
        new_instance: Instance,
    ) -> list[Clause]:
        """The guarded clauses newly justified by inserting ``delta``.

        ``new_instance`` must equal ``old_instance`` plus ``delta``.  Clauses
        already emitted in an earlier epoch (a deleted fact being re-inserted)
        are not re-emitted: retracting and re-asserting their guards is all
        the reactivation they need.
        """
        emitted: list[Clause] = []

        def emit(clause: Clause) -> None:
            if clause not in self._emitted:
                self._emitted.add(clause)
                emitted.append(clause)

        # guard(f) -> in_adom(c) for every constant of every new fact
        for fact in sorted(delta, key=str):
            for constant in set(fact.arguments):
                emit(
                    (
                        frozenset([fact_guard(fact)]),
                        frozenset([adom_guard(constant)]),
                    )
                )

        new_elements = delta.active_domain - old_instance.active_domain
        full_domain = sorted(new_instance.active_domain, key=repr)
        for state in self._rules:
            arity = len(state.free)
            # Existing join results meet the new domain elements: enumerate
            # only the free-variable tuples touching at least one of them.
            if new_elements and arity and state.partials:
                top_up = [
                    values
                    for values in itertools.product(full_domain, repeat=arity)
                    if any(value in new_elements for value in values)
                ]
                for partial in state.partials.values():
                    for values in top_up:
                        self._emit_clause(state, partial, values, emit)
            # New join results: semi-naive over the EDB atoms, each atom in
            # turn matched against the delta, the rest against the full
            # instance through the join planner.
            if not state.edb_atoms:
                continue
            new_partials: list[dict] = []
            for index, atom in enumerate(state.edb_atoms):
                rows = delta.tuples(atom.relation)
                if not rows:
                    continue
                rest = state.edb_atoms[:index] + state.edb_atoms[index + 1 :]
                for row in rows:
                    seed = extend_assignment(atom, row, {})
                    if seed is None:
                        continue
                    for assignment in join_assignments(
                        rest, new_instance, initial=seed
                    ):
                        key = canonical_key(assignment)
                        if key in state.partials:
                            continue
                        state.partials[key] = assignment
                        new_partials.append(assignment)
            if new_partials:
                all_tuples = list(itertools.product(full_domain, repeat=arity))
                for assignment in new_partials:
                    for values in all_tuples:
                        self._emit_clause(state, assignment, values, emit)
        self.clauses_emitted += len(emitted)
        return emitted

    # -- clause construction ---------------------------------------------------

    def _emit_clause(
        self,
        state: _RuleState,
        partial: Mapping[Variable, Element],
        values: tuple,
        emit: Callable[[Clause], None],
    ) -> None:
        assignment = dict(partial)
        assignment.update(zip(state.free, values))
        negative = {instantiate_atom(a, assignment) for a in state.idb_atoms}
        positive = frozenset(
            instantiate_atom(a, assignment) for a in state.rule.head
        )
        if negative & positive:
            return  # tautology
        for atom in state.edb_atoms:
            relation, arguments = instantiate_atom(atom, assignment)
            negative.add(fact_guard(Fact(relation, arguments)))
        for value in values:
            negative.add(adom_guard(value))
        for atom in state.adom_atoms:
            term = atom.arguments[0]
            if not isinstance(term, Variable):
                negative.add(adom_guard(term))
        emit((frozenset(negative), positive))


# ---------------------------------------------------------------------------
# DRed maintenance of plain-datalog fixpoints
# ---------------------------------------------------------------------------


def _match_head(head: Atom, fact: Fact) -> dict[Variable, Element] | None:
    """Unify a head atom with a ground fact; None when they do not match."""
    if head.relation != fact.relation:
        return None
    assignment: dict[Variable, Element] = {}
    for term, value in zip(head.arguments, fact.arguments):
        if isinstance(term, Variable):
            existing = assignment.get(term, value)
            if existing != value:
                return None
            assignment[term] = value
        elif term != value:
            return None
    return assignment


class IncrementalFixpoint:
    """A materialized least fixpoint maintained under fact-level updates.

    Insertions run semi-naive rounds seeded by the delta; deletions use
    DRed (delete-and-rederive): over-delete every fact whose derivation may
    have used a deleted fact, then re-derive the survivors from what is
    left.  ``adom`` facts are maintained directly from the EDB instance's
    active domain, exactly as :meth:`DatalogProgram.least_fixpoint` seeds
    them.
    """

    def __init__(
        self, program: DatalogProgram, instance: Instance | None = None
    ) -> None:
        self.program = program
        self._edb = instance if instance is not None else Instance([])
        self._fixpoint = program.least_fixpoint(self._edb)

    @property
    def edb(self) -> Instance:
        return self._edb

    @property
    def fixpoint(self) -> Instance:
        return self._fixpoint

    def goal_answers(self) -> frozenset[tuple]:
        """Goal tuples over the active domain (the certain answers of a
        disjunction-free program)."""
        adom = self._edb.active_domain
        return frozenset(
            row
            for row in self._fixpoint.tuples(self.program.goal_relation)
            if all(value in adom for value in row)
        )

    # -- updates ---------------------------------------------------------------

    def insert(self, facts: Iterable[Fact]) -> None:
        added = [f for f in facts if f not in self._edb.facts]
        if not added:
            return
        new_edb = self._edb.with_facts(added)
        new_elements = new_edb.active_domain - self._edb.active_domain
        self._edb = new_edb
        delta = list(added) + [
            Fact(_ADOM_SYMBOL, (element,)) for element in new_elements
        ]
        self._propagate(delta)

    def delete(self, facts: Iterable[Fact]) -> None:
        removed = [f for f in facts if f in self._edb.facts]
        if not removed:
            return
        new_edb = self._edb.without_facts(removed)
        dropped = self._edb.active_domain - new_edb.active_domain
        self._edb = new_edb
        seeds = list(removed) + [
            Fact(_ADOM_SYMBOL, (element,)) for element in dropped
        ]
        protected = set(new_edb.facts) | {
            Fact(_ADOM_SYMBOL, (element,)) for element in new_edb.active_domain
        }
        # Over-deletion: anything derivable through a deleted fact, computed
        # against the pre-deletion fixpoint (the standard over-approximation).
        old_fixpoint = self._fixpoint
        overdeleted: set[Fact] = set(seeds)
        frontier = Instance(seeds)
        while not frontier.is_empty():
            wave: list[Fact] = []
            for rule in self.program.rules:
                head = rule.head[0]
                for assignment in delta_body_matches(rule, old_fixpoint, frontier):
                    fact = Fact(
                        head.relation,
                        tuple(
                            assignment[a] if isinstance(a, Variable) else a
                            for a in head.arguments
                        ),
                    )
                    if fact in overdeleted or fact in protected:
                        continue
                    if fact in old_fixpoint:
                        overdeleted.add(fact)
                        wave.append(fact)
            frontier = Instance(wave)
        remaining = self._fixpoint.without_facts(overdeleted)
        self._fixpoint = remaining
        # Re-derivation: an over-deleted fact with an alternative derivation
        # from the remainder comes back (and propagates semi-naively).  The
        # removed facts themselves are candidates too — a deleted fact over
        # an IDB relation stays derived exactly when some rule still derives
        # it, matching a from-scratch recomputation.
        rederived = []
        for fact in sorted(overdeleted, key=str):
            for rule in self.program.rules:
                seed = _match_head(rule.head[0], fact)
                if seed is None:
                    continue
                found = next(
                    iter(join_assignments(rule.body, remaining, initial=seed)),
                    None,
                )
                if found is not None:
                    rederived.append(fact)
                    break
        if rederived:
            self._propagate(rederived)

    # -- semi-naive propagation ------------------------------------------------

    def _propagate(self, delta_facts: list[Fact]) -> None:
        # One mutable index set across all semi-naive rounds (same pattern
        # as DatalogProgram.least_fixpoint): a round's derivations are
        # buffered and applied at the round boundary, and the store is
        # frozen once at saturation.
        current = MutableIndexedInstance(self._fixpoint)
        fresh = [fact for fact in delta_facts if current.add(fact)]
        while fresh:
            delta = Instance(fresh)
            fresh = []
            pending: set[Fact] = set()
            for rule in self.program.rules:
                head = rule.head[0]
                for assignment in delta_body_matches(rule, current, delta):
                    fact = Fact(
                        head.relation,
                        tuple(
                            assignment[a] if isinstance(a, Variable) else a
                            for a in head.arguments
                        ),
                    )
                    if fact in current or fact in pending:
                        continue
                    pending.add(fact)
                    fresh.append(fact)
            for fact in fresh:
                current.add(fact)
        self._fixpoint = current.freeze()
