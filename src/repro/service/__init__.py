"""The OBDA serving layer: compiled sessions over streaming ABox updates.

``repro.service`` turns the one-shot pipeline (translate an OMQ to
disjunctive datalog, ground, solve) into a *server*: a workload of queries
is compiled once into an :class:`ObdaSession`, and certain answers are then
maintained incrementally while facts are inserted and deleted — delta
grounding into a persistent CDCL solver with assumption-guarded retraction
for disjunctive programs, semi-naive/DRed fixpoint maintenance for plain
datalog.  See ``examples/streaming_obda.py`` for a tour and
``benchmarks/bench_service_streaming.py`` for the speedup over from-scratch
recomputation.
"""

from .delta import DeltaGrounder, IncrementalFixpoint, adom_guard, fact_guard
from .explain import EXPLAIN_SCHEMA, validate_explain
from .frontend import (
    FaultInjector,
    Frontend,
    FrontendClosed,
    FrontendConfig,
    FrontendError,
    FrontendRejected,
    FrontendWriteFailed,
    ReadResult,
    replay_commit_log,
)
from .session import ObdaSession, SessionSnapshot, SessionStats, evaluate_plan_at
from .shards import (
    ShardedObdaSession,
    ShardedStats,
    is_shardable,
    shardability_violation,
)
from .workload import (
    StreamEvent,
    StreamReport,
    deletes,
    from_scratch_answers,
    from_scratch_stream_cost,
    graph_universe,
    inserts,
    medical_universe,
    random_stream,
    replay,
)

__all__ = [
    "DeltaGrounder",
    "EXPLAIN_SCHEMA",
    "FaultInjector",
    "Frontend",
    "FrontendClosed",
    "FrontendConfig",
    "FrontendError",
    "FrontendRejected",
    "FrontendWriteFailed",
    "IncrementalFixpoint",
    "ObdaSession",
    "ReadResult",
    "SessionSnapshot",
    "SessionStats",
    "ShardedObdaSession",
    "ShardedStats",
    "StreamEvent",
    "StreamReport",
    "adom_guard",
    "deletes",
    "evaluate_plan_at",
    "fact_guard",
    "from_scratch_answers",
    "from_scratch_stream_cost",
    "graph_universe",
    "inserts",
    "is_shardable",
    "medical_universe",
    "random_stream",
    "replay",
    "replay_commit_log",
    "shardability_violation",
    "validate_explain",
]
