"""Sharded OBDA serving: consistent-hash partitioned compiled sessions.

A :class:`ShardedObdaSession` serves the same API as a single
:class:`~repro.service.session.ObdaSession` — ``insert_facts`` /
``delete_facts`` / ``certain_answers`` / ``answer_batch`` — but partitions
the EDB fact stream across ``shards`` independent per-shard sessions and
merges their certain answers.  Each shard holds the *same* compiled
workload (programs are compiled once and shared) over a *disjoint* slice of
the data, so grounding, delta maintenance and candidate decisions all run
against instances a fraction of the global size; because both grounding and
per-candidate solving are superlinear in instance size, sharding is a
genuine algorithmic win even before the shards are placed on separate
cores or machines.

**Routing.**  Certain answers only merge correctly when facts that share a
constant land on the same shard (their rule instantiations join).  The
router therefore consistent-hashes *connected components* of the data, not
individual facts: a union-find over constants tracks components, a fresh
component is placed by a stable content hash of its first constant, and
when an incoming fact links components living on different shards the
smaller component's facts migrate (delete + re-insert) to the larger's
shard.  The union-find deliberately never splits on deletion — colocation
is only ever over-approximated, which is always safe.  Facts with no
constants (nullary relations) belong to every component and are broadcast
to all shards.

**Merge semantics** (see :func:`shardability_violation` for why these are
exactly the certain answers of the union instance):

* if some shard is inconsistent (no model extends its data), the union
  instance has no model either, and *every* tuple over the global active
  domain is vacuously certain;
* otherwise the global certain answers are the union of the per-shard
  certain answers — a candidate whose constants span shards is never
  certain, because the product of per-shard counter-models is a global
  counter-model.

The product-model argument requires the compiled programs to be
*shardable*: every rule body connected, no constants in rules, and no
nullary IDB relation other than ``goal`` (a shared nullary atom or
constant would let clauses grounded on different shards interact).  The
session validates this at construction time.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Iterable, Mapping, Sequence

from ..analysis import (
    ProgramAnalysisError,
    shardability_diagnostics,
    vet_program,
)
from ..core.instance import Fact, Instance
from ..datalog.ddlog import DisjunctiveDatalogProgram
from ..obs import telemetry as _telemetry
from ..planner.execute import vacuous_answers, vacuous_decisions
from ..planner.policy import _UNSET, PlanPolicy, resolve_policy
from .explain import EXPLAIN_SCHEMA
from .session import DEFAULT_QUERY, ObdaSession, SessionSnapshot, _compile

__all__ = [
    "ShardedObdaSession",
    "ShardedStats",
    "is_shardable",
    "shardability_violation",
]


def shardability_violation(program: DisjunctiveDatalogProgram) -> str | None:
    """Why per-shard evaluation would *not* merge to the global answers.

    Returns ``None`` when the program is shardable: certain answers over a
    disjoint union of instances decompose into per-component evaluation.
    The three conditions each close one coupling channel between shards:

    * a **disconnected rule body** (``MD101``) grounds with variables
      bound in different components, so a clause can relate facts two
      shards never see together;
    * a **constant in a rule** (``MD102``) names the same element from
      every shard's grounding, whether or not the element's facts live
      there;
    * a **nullary IDB relation** (``MD103``, other than ``goal``, which
      never occurs in bodies) is a single shared propositional atom that
      clauses from different shards both constrain.

    The conditions are produced by the static analyzer
    (:func:`repro.analysis.shardability_diagnostics`), so a lint run
    predicts this function's verdict code for code and message for
    message.
    """
    for diagnostic in shardability_diagnostics(program):
        return f"[{diagnostic.code}] {diagnostic.message}"
    return None


def is_shardable(program: DisjunctiveDatalogProgram) -> bool:
    """Can this program's certain answers be served shard-locally?"""
    return shardability_violation(program) is None


def _consistent_shard(constant, shards: int) -> int:
    """A stable (run-independent) shard for a fresh component's constant.

    ``repr`` keyed through blake2b, never the salted built-in ``hash`` —
    the placement of a component must survive process restarts so a
    replayed stream lands every fact on the same shard.
    """
    digest = hashlib.blake2b(repr(constant).encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") % shards


@dataclass
class ShardedStats:
    """Counters describing the routed traffic of a sharded session."""

    epoch: int = 0
    facts_inserted: int = 0
    facts_deleted: int = 0
    facts_migrated: int = 0
    broadcasts: int = 0


class ShardedObdaSession:
    """A compiled OMQ workload served by consistent-hash-partitioned shards.

    Mirrors the :class:`ObdaSession` API; answers after every update equal
    a single session (or a from-scratch recomputation) over the union of
    the shard instances — the randomized sharded cross-validation suite
    pins this down for every shard count, including streams with
    deletions.
    """

    def __init__(
        self,
        workload,
        shards: int = 2,
        initial_facts: Iterable[Fact] = (),
        policy: PlanPolicy | None = None,
        *,
        semantic=_UNSET,
        semantic_budget=_UNSET,
        check=_UNSET,
    ) -> None:
        policy = resolve_policy(
            policy,
            {
                "semantic": semantic,
                "semantic_budget": semantic_budget,
                "check": check,
            },
            where="ShardedObdaSession",
        )
        self.policy = policy
        if shards < 1:
            raise ValueError("need at least one shard")
        if isinstance(workload, Mapping):
            entries = dict(workload)
        else:
            entries = {DEFAULT_QUERY: workload}
        # Compile once; shards share the compiled program objects — and,
        # through the per-program plan cache, one semantic analysis.
        compiled = {name: _compile(entry) for name, entry in entries.items()}
        resolved_check = policy.resolved_check("warn")
        for name, program in compiled.items():
            vet_program(program, resolved_check, label=name)
        for name, program in compiled.items():
            # Shardability is enforced regardless of ``check``: serving an
            # unshardable program would return *wrong* answers, not just
            # suspicious ones.  Raised from the analyzer's diagnostics, so
            # the runtime error carries the same MD1xx code and message a
            # lint run reports.
            diagnostics = tuple(shardability_diagnostics(program))
            if diagnostics:
                first = diagnostics[0]
                raise ProgramAnalysisError(
                    name,
                    diagnostics,
                    message=f"query {name!r} cannot be sharded: "
                    f"[{first.code}] {first.message}",
                )
        self.shard_count = shards
        # check="off": the workload was already vetted once above; every
        # other policy field — tier, semantic, adaptive, unfold caps —
        # passes straight through to the per-shard sessions, which share
        # the compiled program objects.
        self._shard_policy = replace(policy, check="off")
        self._sessions = [
            ObdaSession(compiled, policy=self._shard_policy)
            for _ in range(shards)
        ]
        # Routing state: union-find over constants; per-component fact sets
        # and shard placements; per-fact shard for deletion.
        self._parent: dict = {}
        self._root_facts: dict = {}
        self._root_shard: dict = {}
        self._fact_shard: dict[Fact, int] = {}
        self._broadcast: set[Fact] = set()
        self._instance_cache: Instance | None = Instance([])
        self.stats = ShardedStats()
        initial = list(initial_facts)
        if initial:
            self.insert_facts(initial)

    # -- introspection ---------------------------------------------------------

    @property
    def query_names(self) -> tuple[str, ...]:
        return self._sessions[0].query_names

    def program(self, name: str | None = None) -> DisjunctiveDatalogProgram:
        return self._sessions[0].program(name)

    def plan(self, name: str | None = None):
        """The planner's routing decision for the (named) query.

        Shards share the compiled program objects, so the (cached) plan is
        the same on every shard: sharding multiplies whatever tier the
        planner picked, it never changes it.
        """
        return self._sessions[0].plan(name)

    def explain(self) -> dict:
        """The ``obda-explain/v2`` report with per-shard counters merged in.

        Shards share the compiled programs, so the static plan explanation
        is identical on every shard.  Each entry under ``"queries"``
        additionally carries:

        * ``"live"`` — the per-query counters aggregated across shards,
          including the cross-shard ``obda-session-rollup/v1`` mix-and-cost
          rollup (same schema as a single :class:`ObdaSession`);
        * ``"shards"`` — one record per shard (facts held, clauses pushed,
          epoch, queries answered, last-epoch latency) so shard skew is
          visible without attaching a profiler;
        * ``"shard_skew"`` — the max/mean fact-count ratio over shards
          (1.0 = perfectly balanced).

        The top-level ``"adaptive"`` block folds the shard sessions'
        controllers together: every re-plan record gains a ``"shard"`` tag
        (shards see different slices of the stream, so they may swap at
        different times — or not at all), and ``adaptive["queries"]``
        keeps the per-shard controller state under ``"per_shard"``.
        """
        per_shard = [session.explain() for session in self._sessions]
        shard_live: list[dict] = []
        for index, session in enumerate(self._sessions):
            stats = session.stats
            epochs = stats.epochs
            shard_live.append(
                {
                    "shard": index,
                    "facts": len(session.instance),
                    "clauses_pushed": stats.clauses_pushed,
                    "epoch": stats.epoch,
                    "queries_answered": stats.queries_answered,
                    "last_epoch_s": epochs[-1]["seconds"] if epochs else None,
                }
            )
        facts = [entry["facts"] for entry in shard_live]
        mean_facts = sum(facts) / len(facts)
        skew = {
            "facts_max": max(facts),
            "facts_mean": mean_facts,
            "facts_ratio": (max(facts) / mean_facts) if mean_facts else 1.0,
        }
        rollup = self._merged_rollup()
        queries = per_shard[0]["queries"]
        for name, info in queries.items():
            lives = [shard["queries"][name]["live"] for shard in per_shard]
            answered = sum(live["queries_answered"] for live in lives)
            total_s = sum(live["total_s"] for live in lives)
            last = [live["last_s"] for live in lives if live["last_s"] is not None]
            info["live"] = {
                "queries_answered": answered,
                "total_s": total_s,
                "mean_s": total_s / answered if answered else 0.0,
                # the slowest shard bounds the merged answer's latency
                "last_s": max(last) if last else None,
                "rollup": rollup,
            }
            info["shards"] = shard_live
            info["shard_skew"] = skew
        adaptive: dict = {
            "enabled": any(shard["adaptive"]["enabled"] for shard in per_shard)
        }
        reason = per_shard[0]["adaptive"].get("reason")
        if reason is not None:
            adaptive["reason"] = reason
        replans: list[dict] = []
        for index, shard in enumerate(per_shard):
            for record in shard["adaptive"]["replans"]:
                tagged = dict(record)
                tagged["shard"] = index
                replans.append(tagged)
        replans.sort(key=lambda record: (record["epoch"], record["event"]))
        adaptive["replans"] = replans
        adaptive["queries"] = {
            name: {
                "enabled": any(
                    shard["adaptive"]["queries"][name]["enabled"]
                    for shard in per_shard
                ),
                "replans": sum(
                    shard["adaptive"]["queries"][name].get("replans", 0)
                    for shard in per_shard
                ),
                "per_shard": [
                    shard["adaptive"]["queries"][name] for shard in per_shard
                ],
            }
            for name in queries
        }
        return {"schema": EXPLAIN_SCHEMA, "queries": queries, "adaptive": adaptive}

    def _merged_rollup(self) -> dict:
        """The shards' stats folded into one ``obda-session-rollup/v1``."""
        ops = {
            op: {"count": 0, "facts": 0, "clauses": 0, "total_s": 0.0}
            for op in ("insert", "delete", "query")
        }
        recent = {op: {"count": 0, "total_s": 0.0} for op in ops}
        window_size = 0
        capacity = 0
        for session in self._sessions:
            for op, totals in session.stats.totals.items():
                merged = ops[op]
                merged["count"] += totals["count"]
                merged["facts"] += totals["facts"]
                merged["clauses"] += totals["clauses"]
                merged["total_s"] += totals["seconds"]
            events = session.stats.events
            window_size += len(events)
            capacity += events.maxlen
            for event in events:
                bucket = recent[event["op"]]
                bucket["count"] += 1
                bucket["total_s"] += event["seconds"]
        total_events = 0
        for merged in ops.values():
            total_events += merged["count"]
            merged["mean_s"] = (
                merged["total_s"] / merged["count"] if merged["count"] else 0.0
            )
        for bucket in recent.values():
            bucket["mean_s"] = (
                bucket["total_s"] / bucket["count"] if bucket["count"] else 0.0
            )
        return {
            "schema": "obda-session-rollup/v1",
            "epoch": self.stats.epoch,
            "events": total_events,
            "mix": {
                op: (merged["count"] / total_events if total_events else 0.0)
                for op, merged in ops.items()
            },
            "ops": ops,
            "window": {
                "capacity": capacity,
                "size": window_size,
                "recent": recent,
            },
        }

    @property
    def instance(self) -> Instance:
        """The union of the shard instances (the logical global instance).

        Merged in the interned code space: the largest shard donates its
        interner and columnar stores, every other shard contributes its
        int rows plus a one-shot code-translation dictionary
        (:meth:`Instance.merge`) — constants are never re-hashed fact by
        fact.  Broadcast facts already live on every shard, so the merge
        alone covers them; they are passed as extras only for the
        zero-shard-content edge case.
        """
        if self._instance_cache is None:
            self._instance_cache = Instance.merge(
                [session.instance for session in self._sessions],
                extra_facts=sorted(self._broadcast, key=str),
            )
        return self._instance_cache

    def shard_of(self, fact: Fact) -> int | None:
        """Which shard currently holds the fact (None when it is not live;
        broadcast facts report shard 0)."""
        if fact in self._broadcast:
            return 0
        return self._fact_shard.get(fact)

    def shard_sizes(self) -> list[int]:
        return [len(session.instance) for session in self._sessions]

    # -- routing ---------------------------------------------------------------

    def _find(self, constant):
        parent = self._parent
        root = constant
        while parent[root] != root:
            parent[root] = parent[parent[root]]
            root = parent[root]
        return root

    def _union_constants(self, fact: Fact, displaced: list[Fact]):
        """Union the fact's constants into one component; returns its root.

        When two components on different shards merge, the larger one (by
        fact count) keeps its shard and the smaller component's facts are
        appended to ``displaced`` — the caller migrates exactly those once
        the whole batch has been routed, so an insert costs O(delta +
        displaced), never a rescan of settled components.
        """
        constants = list(dict.fromkeys(fact.arguments))
        for constant in constants:
            if constant not in self._parent:
                self._parent[constant] = constant
                self._root_facts[constant] = set()
                self._root_shard[constant] = _consistent_shard(
                    constant, self.shard_count
                )
        root = self._find(constants[0])
        for constant in constants[1:]:
            other = self._find(constant)
            if other == root:
                continue
            if len(self._root_facts[other]) > len(self._root_facts[root]):
                root, other = other, root
            if self._root_shard[other] != self._root_shard[root]:
                displaced.extend(self._root_facts[other])
            self._parent[other] = root
            self._root_facts[root] |= self._root_facts.pop(other)
            del self._root_shard[other]
        return root

    # -- updates ---------------------------------------------------------------

    def insert_facts(self, facts: Iterable[Fact]) -> int:
        """Insert facts, routing each to its component's shard.  One epoch.

        Returns how many facts were new.  Components linked by the batch
        are merged first; facts already live on a shard that lost its
        component's placement migrate before the new facts land.
        """
        fresh: list[Fact] = []
        seen: set[Fact] = set()
        for fact in facts:
            if (
                fact in seen
                or fact in self._fact_shard
                or fact in self._broadcast
            ):
                continue
            seen.add(fact)
            fresh.append(fact)
        if not fresh:
            return 0
        migrated_before = self.stats.facts_migrated
        with _telemetry.maybe_span(
            "shards.insert", facts=len(fresh), epoch=self.stats.epoch + 1
        ) as span:
            broadcast = [fact for fact in fresh if not fact.arguments]
            regular = [fact for fact in fresh if fact.arguments]
            displaced: list[Fact] = []
            for fact in regular:
                self._root_facts[self._union_constants(fact, displaced)].add(
                    fact
                )
            deletes: dict[int, list[Fact]] = {}
            inserts: dict[int, list[Fact]] = {}
            routed: set[Fact] = set()
            # Route the batch's new facts plus facts of components whose
            # placement just changed; cascading merges within the batch
            # resolve to each fact's final root here.
            for fact in regular + displaced:
                if fact in routed:
                    continue
                routed.add(fact)
                shard = self._root_shard[self._find(fact.arguments[0])]
                current = self._fact_shard.get(fact)
                if current == shard:
                    continue
                if current is not None:  # migrate a previously routed fact
                    deletes.setdefault(current, []).append(fact)
                    self.stats.facts_migrated += 1
                inserts.setdefault(shard, []).append(fact)
                self._fact_shard[fact] = shard
            for shard, batch in deletes.items():
                self._sessions[shard].delete_facts(batch)
            for shard, batch in inserts.items():
                self._sessions[shard].insert_facts(batch)
            if broadcast:
                self._broadcast.update(broadcast)
                self.stats.broadcasts += len(broadcast)
                for session in self._sessions:
                    session.insert_facts(broadcast)
            span.set(
                migrated=self.stats.facts_migrated - migrated_before,
                broadcast=len(broadcast),
            )
        self.stats.epoch += 1
        self.stats.facts_inserted += len(fresh)
        self._instance_cache = None
        tel = _telemetry.ACTIVE
        if tel is not None:
            tel.count("shards.inserts")
            tel.count(
                "shards.facts_migrated",
                self.stats.facts_migrated - migrated_before,
            )
            sizes = self.shard_sizes()
            mean_size = sum(sizes) / len(sizes)
            if mean_size:
                tel.record("shards.facts_skew", max(sizes) / mean_size)
        return len(fresh)

    def delete_facts(self, facts: Iterable[Fact]) -> int:
        """Delete facts from their shards; unknown facts are a clean no-op.

        Components are *not* re-split — colocation stays over-approximated,
        which never affects answers (``compact`` rebuilds placements).
        """
        removals: dict[int, list[Fact]] = {}
        broadcast: list[Fact] = []
        removed = 0
        for fact in facts:
            if fact in self._broadcast:
                self._broadcast.discard(fact)
                broadcast.append(fact)
                removed += 1
                continue
            shard = self._fact_shard.pop(fact, None)
            if shard is None:
                continue  # never inserted, or already deleted
            self._root_facts[self._find(fact.arguments[0])].discard(fact)
            removals.setdefault(shard, []).append(fact)
            removed += 1
        if not removed:
            return 0
        with _telemetry.maybe_span(
            "shards.delete", facts=removed, epoch=self.stats.epoch + 1
        ):
            for shard, batch in removals.items():
                self._sessions[shard].delete_facts(batch)
            if broadcast:
                for session in self._sessions:
                    session.delete_facts(broadcast)
        self.stats.epoch += 1
        self.stats.facts_deleted += removed
        self._instance_cache = None
        tel = _telemetry.ACTIVE
        if tel is not None:
            tel.count("shards.deletes")
        return removed

    def compact(self) -> None:
        """Rebuild every shard from scratch and re-place all components.

        Long streams accumulate retracted-epoch clauses inside the shard
        sessions and merged-but-since-disconnected components inside the
        router; compaction replays the live facts through a fresh routing
        state.
        """
        facts = sorted(self.instance.facts, key=str)
        self._sessions = [
            ObdaSession(
                {name: session.program(name) for name in session.query_names},
                policy=self._shard_policy,
            )
            for session in self._sessions
        ]
        self._parent.clear()
        self._root_facts.clear()
        self._root_shard.clear()
        self._fact_shard.clear()
        self._broadcast.clear()
        self._instance_cache = Instance([])
        stats = self.stats
        self.stats = ShardedStats()  # the replay is maintenance, not traffic
        if facts:
            self.insert_facts(facts)
        self.stats = stats

    # -- queries ---------------------------------------------------------------

    def _vacuous(self, name: str | None) -> bool:
        """No model extends some shard's data — everything is certain."""
        return any(
            not session.is_consistent(name) for session in self._sessions
        )

    def certain_answers(self, name: str | None = None) -> frozenset[tuple]:
        """The certain answers of the (named) query on the union instance."""
        if self._vacuous(name):
            return vacuous_answers(self.instance, self.program(name).arity)
        merged: set[tuple] = set()
        for session in self._sessions:
            merged |= session.certain_answers(name)
        return frozenset(merged)

    def answer_batch(
        self,
        candidates: Iterable[Sequence],
        name: str | None = None,
    ) -> dict[tuple, bool]:
        """Decide a batch of candidate tuples against the warm shard states.

        Each candidate is routed to the shard owning all its constants; a
        candidate whose constants span shards (or include unknown
        constants) is never certain unless some shard is inconsistent.
        """
        batch = [tuple(candidate) for candidate in candidates]
        if self._vacuous(name):
            return vacuous_decisions(self.instance, batch)
        decided: dict[tuple, bool] = {}
        routed: dict[int, list[tuple]] = {}
        for candidate in batch:
            if not candidate:
                # Boolean query: goal() is certain iff certain on some shard.
                decided[candidate] = any(
                    session.is_certain(candidate, name)
                    for session in self._sessions
                )
                continue
            shards = set()
            for value in candidate:
                if value not in self._parent:
                    shards.add(None)
                    break
                shards.add(self._root_shard[self._find(value)])
            if len(shards) == 1 and None not in shards:
                routed.setdefault(next(iter(shards)), []).append(candidate)
            else:
                decided[candidate] = False
        for shard, group in routed.items():
            decided.update(self._sessions[shard].answer_batch(group, name))
        return decided

    def is_certain(self, answer: Sequence = (), name: str | None = None) -> bool:
        """Does the tuple belong to the certain answers right now?"""
        answer = tuple(answer)
        return self.answer_batch([answer], name)[answer]

    def answer_all(self) -> dict[str, frozenset[tuple]]:
        """Certain answers of every query in the workload."""
        return {name: self.certain_answers(name) for name in self.query_names}

    def snapshot(self, version: int | None = None) -> SessionSnapshot:
        """A read-only view pinned to the current merged union instance.

        Mirrors :meth:`ObdaSession.snapshot`.  The pinned instance is the
        (cached) union of the shard instances; while the shards have not
        advanced, reads take the warm merged path, afterwards they
        recompute statelessly against the pinned union.
        """
        tel = _telemetry.ACTIVE
        if tel is not None:
            tel.count("session.snapshots")
        return SessionSnapshot(
            self,
            self.stats.epoch if version is None else version,
            self.instance,
            {name: self.plan(name) for name in self.query_names},
        )
