"""Command-line linter: ``python -m repro.analysis <target>...``.

Targets are dotted module names (``repro.workloads.medical``) or ``.py``
file paths (``examples/quickstart.py``).  Exit status: 0 when every
harvested program is free of error-severity diagnostics (and, under
``--strict``, of warnings too), 1 otherwise, 2 when a target cannot be
imported or a factory raises.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from .checks import REGISTRY, analyse
from .diagnostics import ERROR, INFO, WARNING
from .harvest import harvest_target


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Statically analyse MDDlog programs in workload "
        "modules and example scripts.",
    )
    parser.add_argument(
        "targets",
        nargs="*",
        help="dotted module names or .py files to lint",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat warning-severity diagnostics as failures too",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON document instead of text",
    )
    parser.add_argument(
        "--show-info",
        action="store_true",
        help="also print info-severity diagnostics (tier pinning, shardability)",
    )
    parser.add_argument(
        "--list-codes",
        action="store_true",
        help="print every registered diagnostic code and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    options = _build_parser().parse_args(argv)
    if options.list_codes:
        for info in REGISTRY.values():
            print(f"{info.code}  {info.severity:8s}  {info.title}: {info.summary}")
        return 0
    if not options.targets:
        print("no targets given (try --help)", file=sys.stderr)
        return 2
    failing = ERROR if not options.strict else (ERROR, WARNING)
    min_severity = INFO if options.show_info else WARNING
    exit_code = 0
    documents = []
    for target in options.targets:
        programs, failures = harvest_target(target)
        if not programs and not failures and not options.json:
            print(f"== {target}: no programs harvested (no zero-argument "
                  "factories with a program/OMQ return annotation)")
        for failure in failures:
            exit_code = 2
            if not options.json:
                print(f"{failure.label}: HARVEST FAILED: {failure.error}")
            documents.append(
                {"target": failure.label, "harvest_error": failure.error}
            )
        for harvested in programs:
            report = analyse(harvested.program)
            if any(d.severity in failing for d in report):
                exit_code = max(exit_code, 1)
            documents.append(
                {"target": harvested.label, **report.describe()}
            )
            if not options.json:
                shown = report.format_text(min_severity)
                status = "FAIL" if any(
                    d.severity in failing for d in report
                ) else "ok"
                print(f"== {harvested.label}: {status}")
                if shown != "clean: no diagnostics" or status == "ok":
                    print(
                        "\n".join(
                            "   " + line for line in shown.splitlines()
                        )
                    )
    if options.json:
        print(json.dumps({"reports": documents, "exit": exit_code}, indent=2))
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
