"""Collecting programs out of workload modules for the lint CLI.

``python -m repro.analysis`` points at modules (``repro.workloads.medical``)
or files (``examples/quickstart.py``); this module turns each target into a
list of named :class:`DisjunctiveDatalogProgram` objects to analyse:

* module attributes that already *are* programs or OMQs;
* public zero-argument callables whose return annotation names an OMQ or
  program type — the convention every committed workload follows.  Only
  such annotated factories are called: a bare ``main()`` in an example
  script is never executed by the linter.

OMQs are compiled with :func:`repro.omq.certain.compile_to_mddlog`
(``check="off"`` — the harvested program is analysed by the caller);
OMQs outside the translatable fragment (functional/transitive roles)
are skipped, not failures.
"""

from __future__ import annotations

import importlib
import importlib.util
import inspect
from dataclasses import dataclass
from pathlib import Path

from ..datalog.ddlog import DisjunctiveDatalogProgram
from ..omq.query import OntologyMediatedQuery

#: Return-annotation substrings that mark a callable as a program factory.
FACTORY_ANNOTATIONS = ("OntologyMediatedQuery", "DisjunctiveDatalogProgram")


@dataclass(frozen=True)
class HarvestedProgram:
    """One program found in a target, with its provenance label."""

    label: str
    program: DisjunctiveDatalogProgram


@dataclass(frozen=True)
class HarvestFailure:
    """A factory that raised while being harvested (not a lint finding)."""

    label: str
    error: str


def load_module(target: str):
    """Import a dotted module name or a ``.py`` file path."""
    path = Path(target)
    if target.endswith(".py") or path.exists():
        name = "_repro_lint_" + path.stem
        spec = importlib.util.spec_from_file_location(name, path)
        if spec is None or spec.loader is None:
            raise ImportError(f"cannot load {target}")
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module
    return importlib.import_module(target)


def _is_factory(obj) -> bool:
    if not callable(obj) or inspect.isclass(obj):
        return False
    try:
        signature = inspect.signature(obj)
    except (TypeError, ValueError):
        return False
    for parameter in signature.parameters.values():
        if parameter.default is inspect.Parameter.empty and parameter.kind not in (
            inspect.Parameter.VAR_POSITIONAL,
            inspect.Parameter.VAR_KEYWORD,
        ):
            return False
    annotation = signature.return_annotation
    if annotation is inspect.Signature.empty:
        return False
    rendered = annotation if isinstance(annotation, str) else getattr(
        annotation, "__name__", str(annotation)
    )
    return any(marker in rendered for marker in FACTORY_ANNOTATIONS)


def _coerce(value, label: str) -> list[HarvestedProgram]:
    if isinstance(value, DisjunctiveDatalogProgram):
        return [HarvestedProgram(label, value)]
    if isinstance(value, OntologyMediatedQuery):
        from ..omq.certain import compile_to_mddlog

        try:
            program = compile_to_mddlog(value)
        except ValueError:
            return []  # outside the translatable fragment — not a finding
        return [HarvestedProgram(label, program)]
    if isinstance(value, (list, tuple)):
        found = []
        for position, item in enumerate(value):
            found.extend(_coerce(item, f"{label}[{position}]"))
        return found
    return []


def harvest_module(
    module, label: str
) -> tuple[list[HarvestedProgram], list[HarvestFailure]]:
    """All programs reachable from a module's public surface."""
    programs: list[HarvestedProgram] = []
    failures: list[HarvestFailure] = []
    for name in sorted(vars(module)):
        if name.startswith("_"):
            continue
        obj = getattr(module, name)
        if getattr(obj, "__module__", module.__name__) != module.__name__:
            continue  # re-exports are linted where they are defined
        qualified = f"{label}:{name}"
        programs.extend(_coerce(obj, qualified))
        if _is_factory(obj):
            try:
                value = obj()
            except Exception as error:  # noqa: BLE001 - reported, not raised
                failures.append(HarvestFailure(qualified, repr(error)))
                continue
            programs.extend(_coerce(value, qualified))
    return programs, failures


def harvest_target(
    target: str,
) -> tuple[list[HarvestedProgram], list[HarvestFailure]]:
    """Import and harvest one CLI target (module name or file path)."""
    try:
        module = load_module(target)
    except Exception as error:  # noqa: BLE001 - reported, not raised
        return [], [HarvestFailure(target, repr(error))]
    return harvest_module(module, target)
