"""Predicate dependency graphs over disjunctive datalog programs.

The IDB dependency graph — an edge from every head predicate of a rule to
every IDB predicate of its body — drives both the planner's recursion
detection (:mod:`repro.planner.analysis` imports :func:`cyclic_relations`
from here) and the analyzer's reachability diagnostics (dead rules that no
goal or constraint can ever observe).  One implementation, two consumers:
the planner and the linter must never disagree about what "recursive" or
"reachable" means.
"""

from __future__ import annotations

import itertools

from ..datalog.ddlog import ADOM, DisjunctiveDatalogProgram


def idb_names(program: DisjunctiveDatalogProgram) -> set[str]:
    """Names of the relations derived by some rule head (``adom`` excluded)."""
    return {
        atom.relation.name for rule in program.rules for atom in rule.head
    } - {ADOM}


def dependency_graph(program: DisjunctiveDatalogProgram) -> dict[str, set[str]]:
    """Head-to-body IDB edges: ``graph[p]`` is every IDB predicate some
    rule deriving ``p`` reads."""
    names = idb_names(program)
    graph: dict[str, set[str]] = {name: set() for name in names}
    for rule in program.rules:
        body_idb = {
            atom.relation.name for atom in rule.body if atom.relation.name in names
        }
        for atom in rule.head:
            if atom.relation.name in names:
                graph[atom.relation.name] |= body_idb
    return graph


def cyclic_relations(graph: dict[str, set[str]]) -> set[str]:
    """Relation names on a dependency cycle (Tarjan SCCs, iteratively)."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = itertools.count()
    cyclic: set[str] = set()
    for root in graph:
        if root in index:
            continue
        # Iterative Tarjan: (node, iterator over successors) frames.
        work = [(root, iter(sorted(graph[root])))]
        index[root] = lowlink[root] = next(counter)
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = lowlink[succ] = next(counter)
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph[succ]))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1 or node in graph[node]:
                    cyclic.update(component)
    return cyclic


def reachable_predicates(
    graph: dict[str, set[str]], roots: set[str]
) -> set[str]:
    """Predicates reachable from ``roots`` along head-to-body edges."""
    reachable = set(roots)
    frontier = [name for name in roots if name in graph]
    while frontier:
        node = frontier.pop()
        for succ in graph.get(node, ()):
            if succ not in reachable:
                reachable.add(succ)
                frontier.append(succ)
    return reachable
