"""Static diagnostics for datalog/MDDlog programs.

The front door is :func:`analyse` (full :class:`DiagnosticReport`) and
:func:`vet_program` (the ``check="warn"|"strict"|"off"`` hook every compile
path exposes).  ``python -m repro.analysis <target>...`` lints workload
modules and example scripts from the command line; the stable diagnostic
codes are documented in ``docs/diagnostics.md``.
"""

from .checks import (
    CHECK_MODES,
    REGISTRY,
    CheckInfo,
    ProgramContext,
    all_codes,
    analyse,
    shardability_diagnostics,
    vet_program,
)
from .deps import (
    cyclic_relations,
    dependency_graph,
    idb_names,
    reachable_predicates,
)
from .diagnostics import (
    ERROR,
    INFO,
    SEVERITIES,
    WARNING,
    Diagnostic,
    DiagnosticReport,
    ProgramAnalysisError,
    merge_reports,
)

__all__ = [
    "CHECK_MODES",
    "ERROR",
    "INFO",
    "REGISTRY",
    "SEVERITIES",
    "WARNING",
    "CheckInfo",
    "Diagnostic",
    "DiagnosticReport",
    "ProgramAnalysisError",
    "ProgramContext",
    "all_codes",
    "analyse",
    "cyclic_relations",
    "dependency_graph",
    "idb_names",
    "merge_reports",
    "reachable_predicates",
    "shardability_diagnostics",
    "vet_program",
]
