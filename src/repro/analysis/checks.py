"""The registry of static checks over disjunctive datalog programs.

Each check inspects one :class:`ProgramContext` (a program plus the
optional EDB evidence — a declared data schema and/or a concrete instance)
and yields :class:`~repro.analysis.diagnostics.Diagnostic` records.  The
registry maps every stable code to its check, title and severity, which is
what ``docs/diagnostics.md`` documents and the mutation-test suite sweeps.

Codes are grouped by hundreds:

* ``MD0xx`` — program correctness (errors and probable bugs);
* ``MD1xx`` — shardability pre-diagnosis (the exact conditions
  :mod:`repro.service.shards` enforces at runtime, surfaced ahead of
  deployment);
* ``MD2xx`` — tier-pinning explanations (why the planner will refuse
  tier 0/1; mirrors :mod:`repro.planner.plan` rationales).
"""

from __future__ import annotations

import contextlib
import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from ..core.cq import Atom, Variable
from ..core.schema import Schema
from ..datalog.ddlog import ADOM, GOAL, DisjunctiveDatalogProgram, Rule
from .deps import (
    cyclic_relations,
    dependency_graph,
    idb_names,
    reachable_predicates,
)
from .diagnostics import (
    ERROR,
    INFO,
    WARNING,
    Diagnostic,
    DiagnosticReport,
)

# Pairwise subsumption is quadratic in the rule count; past this size only
# the linear duplicate detection runs (big compiled programs are machine
# generated, where subsumed-rule lint noise is least actionable anyway).
MAX_SUBSUMPTION_RULES = 300
# Node budget for one rule-pair subsumption match (backtracking states).
SUBSUMPTION_BUDGET = 2_000


@dataclass(frozen=True)
class CheckInfo:
    """Registry entry: one stable code and the check that can emit it."""

    code: str
    title: str
    severity: str
    summary: str


#: code -> CheckInfo, in registration (= documentation) order.
REGISTRY: dict[str, CheckInfo] = {}

_CHECKS: list[Callable[["ProgramContext"], Iterator[Diagnostic]]] = []


def register(*codes: CheckInfo):
    """Register a check function together with the codes it may emit."""

    def wrap(function):
        for info in codes:
            if info.code in REGISTRY:
                raise ValueError(f"duplicate diagnostic code {info.code}")
            REGISTRY[info.code] = info
        _CHECKS.append(function)
        return function

    return wrap


def all_codes() -> tuple[str, ...]:
    """Every registered diagnostic code, in documentation order."""
    return tuple(REGISTRY)


@dataclass
class ProgramContext:
    """Everything the checks share: the program plus precomputed views.

    ``edb_schema`` is the *declared* data schema when one is known — taken
    from the compiled program's source OMQ (``program.source_omq``) unless
    passed explicitly; ``None`` means the EDB is open (any relation not
    derived by a rule is assumed to be data).
    """

    program: DisjunctiveDatalogProgram
    edb_schema: Schema | None = None
    instance_schema: Schema | None = None
    idb: set[str] = field(init=False)
    graph: dict[str, set[str]] = field(init=False)

    def __post_init__(self) -> None:
        if self.edb_schema is None:
            source = getattr(self.program, "source_omq", None)
            if source is not None:
                self.edb_schema = getattr(source, "data_schema", None)
        self.idb = idb_names(self.program)
        self.graph = dependency_graph(self.program)

    def rules(self) -> Iterator[tuple[int, Rule]]:
        return enumerate(self.program.rules)


def analyse(
    program: DisjunctiveDatalogProgram,
    edb_schema: Schema | None = None,
    instance=None,
) -> DiagnosticReport:
    """Run every registered check; returns the full diagnostic report.

    The no-evidence form (``edb_schema=None``, ``instance=None``) is cached
    on the program object — sessions, shards and the planner all vet the
    same compiled program once.  Analysis cost is one pass per check over
    the rules (plus a capped quadratic subsumption stage), strictly off the
    evaluation hot path.
    """
    if edb_schema is None and instance is None:
        cached = getattr(program, "_analysis_report", None)
        if cached is not None:
            return cached
    instance_schema = instance.schema() if instance is not None else None
    context = ProgramContext(program, edb_schema, instance_schema)
    found: list[Diagnostic] = []
    for check in _CHECKS:
        found.extend(check(context))
    report = DiagnosticReport(tuple(found))
    if edb_schema is None and instance is None:
        # A slotted/frozen program subclass just skips the cache.
        with contextlib.suppress(AttributeError):
            program._analysis_report = report
    return report


CHECK_MODES = ("warn", "strict", "off")


def vet_program(
    program: DisjunctiveDatalogProgram,
    check: str = "warn",
    label: str = "<program>",
) -> DiagnosticReport | None:
    """The compile-path hook behind every ``check=`` keyword.

    * ``"off"`` — do nothing, return ``None``.
    * ``"warn"`` — analyse and surface error/warning-severity findings as
      Python warnings; never fatal.
    * ``"strict"`` — analyse and raise :class:`ProgramAnalysisError` when
      any error-severity diagnostic is present, *before* any solver or
      session state is built.
    """
    if check == "off":
        return None
    if check not in CHECK_MODES:
        raise ValueError(
            f"check must be one of {CHECK_MODES}, got {check!r}"
        )
    report = analyse(program)
    if check == "strict":
        report.raise_if_errors(label)
    else:
        import warnings

        for diagnostic in report:
            if diagnostic.severity != INFO:
                warnings.warn(
                    f"{label}: {diagnostic}", stacklevel=3
                )
    return report


# ---------------------------------------------------------------------------
# MD0xx — program correctness
# ---------------------------------------------------------------------------


@register(
    CheckInfo(
        "MD001",
        "arity-clash",
        ERROR,
        "one relation name used with two different arities across rules, "
        "the declared data schema, or the instance",
    )
)
def check_arity_consistency(ctx: ProgramContext) -> Iterator[Diagnostic]:
    seen: dict[str, dict[int, str]] = {}

    def observe(name: str, arity: int, where: str) -> None:
        seen.setdefault(name, {}).setdefault(arity, where)

    for index, rule in ctx.rules():
        for atom in itertools.chain(rule.head, rule.body):
            observe(atom.relation.name, atom.relation.arity, f"rule {index}")
    observe(ctx.program.goal_relation.name, ctx.program.goal_relation.arity, "goal")
    for schema, where in (
        (ctx.edb_schema, "declared data schema"),
        (ctx.instance_schema, "instance"),
    ):
        if schema is not None:
            for symbol in schema:
                observe(symbol.name, symbol.arity, where)
    for name, arities in sorted(seen.items()):
        expected = {ADOM: 1}.get(name)
        if expected is not None and list(arities) != [expected]:
            wrong = ", ".join(
                f"{arity} ({where})"
                for arity, where in sorted(arities.items())
                if arity != expected
            )
            yield Diagnostic(
                "MD001",
                ERROR,
                f"built-in relation {name} must have arity {expected}, "
                f"used with arity {wrong}",
                subject=name,
                suggestion=f"{ADOM} is the unary active-domain relation",
            )
        elif len(arities) > 1:
            uses = ", ".join(
                f"{arity} ({where})" for arity, where in sorted(arities.items())
            )
            yield Diagnostic(
                "MD001",
                ERROR,
                f"relation {name} is used with conflicting arities: {uses}",
                subject=name,
                suggestion="rename one of the relations or fix the argument list",
            )


@register(
    CheckInfo(
        "MD002",
        "unsafe-rule",
        ERROR,
        "a head variable is not bound by any positive body atom "
        "(range restriction), or a rule body is empty",
    )
)
def check_safety(ctx: ProgramContext) -> Iterator[Diagnostic]:
    # The Rule constructor enforces this too; the analyzer re-checks so
    # rules built by generators/translations that bypass the constructor
    # (or future negated contexts) still hit a structured error instead of
    # an empty join deep in the engine.
    for index, rule in ctx.rules():
        if not rule.body:
            yield Diagnostic(
                "MD002",
                ERROR,
                "rule body is empty; facts belong in the instance, not the program",
                rule_index=index,
                rule=str(rule),
                suggestion="assert the head as EDB facts instead",
            )
            continue
        body_vars = {v for atom in rule.body for v in atom.variables}
        unsafe = sorted(
            {
                v
                for atom in rule.head
                for v in atom.variables
                if v not in body_vars
            },
            key=str,
        )
        for variable in unsafe:
            yield Diagnostic(
                "MD002",
                ERROR,
                f"head variable {variable} is not bound by any positive body atom",
                rule_index=index,
                rule=str(rule),
                subject=str(variable),
                suggestion=f"add a body atom over {variable} "
                f"(adom({variable}) bounds it to the active domain)",
            )


@register(
    CheckInfo(
        "MD003",
        "unused-idb",
        WARNING,
        "an IDB relation is derived (by disjunction-free heads only) "
        "but never read by any rule body",
    )
)
def check_unused_idb(ctx: ProgramContext) -> Iterator[Diagnostic]:
    read = {
        atom.relation.name for _, rule in ctx.rules() for atom in rule.body
    }
    goal_name = ctx.program.goal_relation.name
    derived_plain: dict[str, int] = {}
    derived_disjunctive: set[str] = set()
    for index, rule in ctx.rules():
        for atom in rule.head:
            if len(rule.head) == 1:
                derived_plain.setdefault(atom.relation.name, index)
            else:
                # A predicate in a disjunctive head is semantically live
                # even when never read: choosing it is what *blocks* the
                # sibling disjuncts, so it must not be flagged (every
                # Theorem 3.3 type-guess rule would be a false positive).
                derived_disjunctive.add(atom.relation.name)
    for name, index in sorted(derived_plain.items()):
        if name in read or name in derived_disjunctive:
            continue
        if name in (goal_name, GOAL, ADOM):
            continue
        yield Diagnostic(
            "MD003",
            WARNING,
            f"IDB relation {name} is derived but never read and is not the goal",
            rule_index=index,
            rule=str(ctx.program.rules[index]),
            subject=name,
            suggestion="delete the rule(s) deriving it, or wire it into a "
            "body or the goal",
        )


@register(
    CheckInfo(
        "MD004",
        "underivable-predicate",
        WARNING,
        "the goal has no defining rule, or a body atom can match neither "
        "data (outside the declared schema) nor any rule head",
    )
)
def check_underivable(ctx: ProgramContext) -> Iterator[Diagnostic]:
    goal_name = ctx.program.goal_relation.name
    has_constraints = any(rule.is_constraint() for _, rule in ctx.rules())
    # A constraint-only program (e.g. a coCSP translation) derives the goal
    # through inconsistency: the answer is "yes" exactly when no model
    # satisfies the constraints.  A missing goal rule is only a defect when
    # the program has no constraints either.
    if not has_constraints and not any(rule.is_goal_rule() for _, rule in ctx.rules()):
        yield Diagnostic(
            "MD004",
            WARNING,
            f"no rule derives the goal relation {goal_name} and the program "
            "has no constraints; the query is empty on every instance",
            subject=goal_name,
            suggestion="add a goal rule or a constraint, or select a "
            "different goal relation",
        )
    if ctx.edb_schema is None:
        return
    declared = set(ctx.edb_schema.names)
    reported: set[str] = set()
    for index, rule in ctx.rules():
        for atom in rule.body:
            name = atom.relation.name
            if (
                name in declared
                or name in ctx.idb
                or name in (ADOM, goal_name)
                or name in reported
            ):
                continue
            reported.add(name)
            yield Diagnostic(
                "MD004",
                WARNING,
                f"body relation {name} is outside the declared data schema "
                "and no rule derives it; the atom never matches",
                rule_index=index,
                rule=str(rule),
                subject=name,
                suggestion="fix the relation name, or add it to the data schema",
            )


@register(
    CheckInfo(
        "MD005",
        "unreachable-rule",
        WARNING,
        "no chain of rules connects the rule's head to the goal or to "
        "any constraint: it can never influence certain answers",
    )
)
def check_unreachable_rules(ctx: ProgramContext) -> Iterator[Diagnostic]:
    goal_name = ctx.program.goal_relation.name
    roots = {goal_name, GOAL}
    for _, rule in ctx.rules():
        if rule.is_constraint():
            # Constraints are always observed (they decide consistency),
            # so everything they read is reachable.
            roots.update(
                atom.relation.name
                for atom in rule.body
                if atom.relation.name in ctx.idb
            )
    reachable = reachable_predicates(ctx.graph, roots)
    for index, rule in ctx.rules():
        if rule.is_constraint():
            continue
        if any(atom.relation.name in reachable for atom in rule.head):
            continue
        yield Diagnostic(
            "MD005",
            WARNING,
            "rule is unreachable from the goal and from every constraint "
            "in the predicate dependency graph",
            rule_index=index,
            rule=str(rule),
            suggestion="delete the rule, or connect its head towards the goal",
        )


@register(
    CheckInfo(
        "MD006",
        "subsumed-rule",
        WARNING,
        "a rule duplicates or is logically subsumed by another rule "
        "(weaker head, stronger body, up to variable renaming)",
    )
)
def check_subsumed_rules(ctx: ProgramContext) -> Iterator[Diagnostic]:
    rules = ctx.program.rules
    if len(rules) > MAX_SUBSUMPTION_RULES:
        # Quadratic stage gated; exact duplicates are still caught.
        seen: dict[tuple, int] = {}
        for index, rule in ctx.rules():
            key = _canonical_rule(rule)
            if key in seen:
                yield _subsumption_diagnostic(ctx, index, seen[key], "duplicates")
            else:
                seen[key] = index
        return
    for j, later in enumerate(rules):
        for i in range(j):
            if _subsumes(rules[i], later):
                kind = (
                    "duplicates" if _subsumes(later, rules[i]) else "is subsumed by"
                )
                yield _subsumption_diagnostic(ctx, j, i, kind)
                break


def _subsumption_diagnostic(
    ctx: ProgramContext, redundant: int, by: int, kind: str
) -> Diagnostic:
    return Diagnostic(
        "MD006",
        WARNING,
        f"rule {kind} rule {by} ({ctx.program.rules[by]})",
        rule_index=redundant,
        rule=str(ctx.program.rules[redundant]),
        suggestion="delete the redundant rule",
    )


def _canonical_rule(rule: Rule) -> tuple:
    """A renaming-invariant key for *exact* duplicate detection."""
    order: dict[Variable, int] = {}

    def key_term(term):
        if isinstance(term, Variable):
            return ("v", order.setdefault(term, len(order)))
        return ("c", repr(term))

    def key_atoms(atoms: Iterable[Atom]) -> tuple:
        rendered = sorted(
            (a.relation.name, a.relation.arity, a.arguments) for a in atoms
        )
        return tuple(
            (name, arity, tuple(key_term(t) for t in args))
            for name, arity, args in rendered
        )

    return (key_atoms(rule.head), key_atoms(rule.body))


def _subsumes(general: Rule, specific: Rule) -> bool:
    """Does ``general`` logically imply ``specific``?

    True when a substitution θ maps every body atom of ``general`` into the
    body of ``specific`` and every head atom into its head: the specific
    rule then adds nothing (a constraint — empty head — subsumes with the
    body condition alone).  Backtracking over atom images with a node
    budget; a blown budget reports "not subsumed", which only costs a
    missed warning.
    """
    if len(general.body) > len(specific.body) or len(general.head) > len(
        specific.head
    ):
        return False
    specific_body = list(specific.body)
    by_relation: dict = {}
    for atom in specific_body:
        by_relation.setdefault(atom.relation, []).append(atom)
    for atom in general.body:
        if atom.relation not in by_relation:
            return False
    head_targets = set(specific.head)

    budget = SUBSUMPTION_BUDGET
    body = sorted(
        general.body, key=lambda a: len(by_relation.get(a.relation, ()))
    )

    def bind(theta: dict, source: Atom, target: Atom) -> dict | None:
        extended = theta
        for s_term, t_term in zip(source.arguments, target.arguments):
            if isinstance(s_term, Variable):
                if s_term in extended:
                    if extended[s_term] != t_term:
                        return None
                else:
                    if extended is theta:
                        extended = dict(theta)
                    extended[s_term] = t_term
            elif s_term != t_term:
                return None
        return extended

    def match(position: int, theta: dict) -> bool:
        nonlocal budget
        if budget <= 0:
            return False
        budget -= 1
        if position == len(body):
            return all(
                atom.substitute(theta) in head_targets for atom in general.head
            )
        source = body[position]
        for target in by_relation[source.relation]:
            extended = bind(theta, source, target)
            if extended is not None and match(position + 1, extended):
                return True
        return False

    return match(0, {})


@register(
    CheckInfo(
        "MD007",
        "singleton-constant",
        WARNING,
        "a constant occurs exactly once across all rules — often a typo "
        "for another constant or a variable",
    )
)
def check_singleton_constants(ctx: ProgramContext) -> Iterator[Diagnostic]:
    occurrences: dict = {}
    for index, rule in ctx.rules():
        for atom in itertools.chain(rule.head, rule.body):
            for term in atom.arguments:
                if not isinstance(term, Variable):
                    occurrences.setdefault(term, []).append((index, rule))
    for constant, where in sorted(occurrences.items(), key=lambda kv: repr(kv[0])):
        if len(where) != 1:
            continue
        index, rule = where[0]
        yield Diagnostic(
            "MD007",
            WARNING,
            f"constant {constant!r} occurs exactly once in the program",
            rule_index=index,
            rule=str(rule),
            subject=repr(constant),
            suggestion="check the spelling against the instance's constants",
        )


# ---------------------------------------------------------------------------
# MD1xx — shardability pre-diagnosis (mirrors service.shards at runtime)
# ---------------------------------------------------------------------------


@register(
    CheckInfo(
        "MD101",
        "shard-disconnected-body",
        INFO,
        "a rule body is not connected, so its groundings would couple "
        "facts that consistent-hash sharding places on different shards",
    ),
    CheckInfo(
        "MD102",
        "shard-constant",
        INFO,
        "a rule mentions a constant, which names the same element from "
        "every shard's grounding",
    ),
    CheckInfo(
        "MD103",
        "shard-nullary-idb",
        INFO,
        "a nullary IDB relation (other than goal) is a propositional atom "
        "shared by clauses grounded on different shards",
    ),
)
def check_shardability(ctx: ProgramContext) -> Iterator[Diagnostic]:
    yield from shardability_diagnostics(ctx.program)


def shardability_diagnostics(
    program: DisjunctiveDatalogProgram,
) -> Iterator[Diagnostic]:
    """The exact conditions :class:`repro.service.shards.ShardedObdaSession`
    enforces, as structured diagnostics.

    The runtime raises these (as ``ProgramAnalysisError``) at construction;
    the linter reports them as *info* — a program that will never shard is
    perfectly serveable by a single session.  Same codes, same messages, so
    a lint run predicts the runtime rejection verbatim.
    """
    for symbol in sorted(program.idb_relations):
        if symbol.arity == 0 and symbol.name != GOAL:
            yield Diagnostic(
                "MD103",
                INFO,
                f"nullary IDB relation {symbol} is shared across shards",
                subject=symbol.name,
                suggestion="parameterize the relation by a data element, "
                "or serve the workload unsharded",
            )
    for index, rule in enumerate(program.rules):
        if not rule.is_connected():
            yield Diagnostic(
                "MD101",
                INFO,
                f"rule body is not connected: {rule}",
                rule_index=index,
                rule=str(rule),
                suggestion="split the rule through an intermediate IDB "
                "relation joining the components, or serve unsharded",
            )
        for atom in itertools.chain(rule.head, rule.body):
            for term in atom.arguments:
                if not isinstance(term, Variable):
                    yield Diagnostic(
                        "MD102",
                        INFO,
                        f"constant {term!r} in rule: {rule}",
                        rule_index=index,
                        rule=str(rule),
                        subject=repr(term),
                        suggestion="lift the constant into a unary EDB "
                        "relation, or serve unsharded",
                    )


# ---------------------------------------------------------------------------
# MD2xx — tier-pinning explanations (mirrors planner rationales)
# ---------------------------------------------------------------------------


@register(
    CheckInfo(
        "MD201",
        "tier-pinned-adom",
        INFO,
        "the program derives the built-in adom relation, which only the "
        "ground+CDCL engine implements faithfully (pinned to tier 2)",
    ),
    CheckInfo(
        "MD202",
        "tier-pinned-disjunction",
        INFO,
        "disjunctive rules put the program on syntactic tier 2; only a "
        "successful semantic rewriting can route it off SAT",
    ),
    CheckInfo(
        "MD203",
        "tier-pinned-recursion",
        INFO,
        "recursion through the IDB dependency graph rules out the tier-0 "
        "UCQ unfolding (tier 1 at best)",
    ),
    CheckInfo(
        "MD204",
        "tier-pinned-unfolding-caps",
        INFO,
        "the UCQ unfolding exceeds the disjunct/atom caps, so the planner "
        "serves the program from the tier-1 fixpoint instead of tier 0",
    ),
)
def check_tier_pinning(ctx: ProgramContext) -> Iterator[Diagnostic]:
    program = ctx.program
    defines_adom = any(
        atom.relation.name == ADOM for _, rule in ctx.rules() for atom in rule.head
    )
    if defines_adom:
        yield Diagnostic(
            "MD201",
            INFO,
            "program derives the built-in adom relation: pinned to the "
            "ground+CDCL tier (2)",
            subject=ADOM,
            suggestion="treat adom as read-only input if tier 0/1 routing matters",
        )
        return  # the planner stops here too; further pins are unreachable
    disjunctive = [
        (index, rule) for index, rule in ctx.rules() if len(rule.head) > 1
    ]
    if disjunctive:
        index, rule = disjunctive[0]
        yield Diagnostic(
            "MD202",
            INFO,
            f"{len(disjunctive)} disjunctive rule(s): syntactic tier 2 "
            "(the semantic stage may still construct a tier-0/1 rewriting)",
            rule_index=index,
            rule=str(rule),
        )
        return
    recursive = sorted(cyclic_relations(ctx.graph))
    if recursive:
        yield Diagnostic(
            "MD203",
            INFO,
            "recursive through " + ", ".join(recursive[:4]) + ": tier-0 "
            "UCQ unfolding unavailable; served by the tier-1 fixpoint",
            subject=recursive[0],
        )
        return
    from ..planner.analysis import unfold_to_ucq

    if unfold_to_ucq(program) is None:
        yield Diagnostic(
            "MD204",
            INFO,
            "nonrecursive and disjunction-free, but the UCQ unfolding "
            "exceeds its caps: served by the tier-1 fixpoint",
            suggestion="raise MAX_UNFOLDED_DISJUNCTS/MAX_DISJUNCT_ATOMS "
            "only if the unfolded UCQ is genuinely wanted",
        )
