"""Diagnostic records: the stable vocabulary of the static analyzer.

Every finding of :mod:`repro.analysis.checks` is a :class:`Diagnostic` — a
stable code (``MD001``), a severity, the offending rule or symbol, a human
message and, where one exists, a suggested fix.  Codes are *append-only*
API: once a code has shipped it keeps its meaning forever, so runtime
errors (``service.shards``), lint output (``tools/check_program.py``) and
documentation (``docs/diagnostics.md``) can all reference the same
vocabulary.

Severity policy (see ``docs/diagnostics.md``):

* **error** — the program is structurally broken (arity clash, unsafe
  rule): evaluating it would crash or silently return wrong answers.
  ``check="strict"`` compile paths refuse these before any solver work.
* **warning** — almost certainly a bug (dead rules, singleton constants),
  but evaluation is well-defined; reported, never fatal outside
  ``--strict`` lint runs.
* **info** — explanatory facts about routing and deployability (tier
  pinning, shardability): not defects, but the answers to "why is this
  slow / why can't I shard it" surfaced ahead of time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

ERROR = "error"
WARNING = "warning"
INFO = "info"

#: Severity names in decreasing order of gravity.
SEVERITIES = (ERROR, WARNING, INFO)


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static analyzer.

    ``rule_index`` points into ``program.rules`` when the finding is about
    a specific rule (``rule`` carries its rendered text); ``subject`` names
    the offending symbol, constant or variable.  ``suggestion`` is a human
    hint, not a machine-applicable fix.
    """

    code: str
    severity: str
    message: str
    rule_index: int | None = None
    rule: str | None = None
    subject: str | None = None
    suggestion: str | None = None

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"unknown severity {self.severity!r}; expected one of {SEVERITIES}"
            )

    def __str__(self) -> str:
        location = f" [rule {self.rule_index}]" if self.rule_index is not None else ""
        text = f"{self.code} {self.severity}{location}: {self.message}"
        if self.suggestion:
            text += f" (hint: {self.suggestion})"
        return text

    def describe(self) -> dict:
        """A JSON-able dump (what the CLI emits with ``--json``)."""
        info = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
        }
        if self.rule_index is not None:
            info["rule_index"] = self.rule_index
        if self.rule is not None:
            info["rule"] = self.rule
        if self.subject is not None:
            info["subject"] = self.subject
        if self.suggestion is not None:
            info["suggestion"] = self.suggestion
        return info


class ProgramAnalysisError(ValueError):
    """A ``check="strict"`` compile path refused a program.

    Subclasses ``ValueError`` so call sites that already guard compilation
    with ``except ValueError`` keep working; carries the error-severity
    diagnostics for programmatic access.
    """

    def __init__(
        self,
        label: str,
        diagnostics: tuple[Diagnostic, ...],
        message: str | None = None,
    ) -> None:
        self.label = label
        self.diagnostics = diagnostics
        if message is None:
            lines = "; ".join(str(d) for d in diagnostics)
            message = f"program {label!r} failed static analysis: {lines}"
        super().__init__(message)


@dataclass
class DiagnosticReport:
    """All diagnostics of one program, with severity views and formatting."""

    diagnostics: tuple[Diagnostic, ...] = field(default_factory=tuple)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def of_severity(self, severity: str) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == severity)

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return self.of_severity(ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return self.of_severity(WARNING)

    @property
    def infos(self) -> tuple[Diagnostic, ...]:
        return self.of_severity(INFO)

    @property
    def codes(self) -> frozenset[str]:
        return frozenset(d.code for d in self.diagnostics)

    @property
    def has_errors(self) -> bool:
        return any(d.severity == ERROR for d in self.diagnostics)

    def by_code(self, code: str) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.code == code)

    def raise_if_errors(self, label: str = "<program>") -> None:
        """Raise :class:`ProgramAnalysisError` when any error is present."""
        errors = self.errors
        if errors:
            raise ProgramAnalysisError(label, errors)

    def format_text(self, min_severity: str = INFO) -> str:
        """One line per diagnostic at or above ``min_severity``."""
        threshold = SEVERITIES.index(min_severity)
        shown = [
            d for d in self.diagnostics if SEVERITIES.index(d.severity) <= threshold
        ]
        if not shown:
            return "clean: no diagnostics"
        return "\n".join(str(d) for d in shown)

    def describe(self) -> dict:
        return {
            "diagnostics": [d.describe() for d in self.diagnostics],
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "infos": len(self.infos),
        }


def merge_reports(reports: Iterable[DiagnosticReport]) -> DiagnosticReport:
    """Concatenate several reports (used by the workload-level CLI)."""
    merged: list[Diagnostic] = []
    for report in reports:
        merged.extend(report.diagnostics)
    return DiagnosticReport(tuple(merged))
