"""Plain (disjunction-free) datalog with semi-naive bottom-up evaluation.

Datalog queries are the rewriting target of Section 5.3; a *datalog query* in
the paper is a DDlog query defined by a program whose rule heads are single
atoms.  This module provides a least-fixpoint evaluator, which is what makes
the datalog-rewritability experiments executable.
"""

from __future__ import annotations

import itertools
from typing import Hashable, Sequence

from ..core.cq import Atom, Variable
from ..core.instance import Fact, Instance
from ..core.schema import RelationSymbol
from .ddlog import ADOM, DisjunctiveDatalogProgram, Rule

Element = Hashable


class DatalogProgram(DisjunctiveDatalogProgram):
    """A disjunction-free DDlog program evaluated via least fixpoint."""

    def __init__(self, rules, goal_relation: RelationSymbol | None = None) -> None:
        super().__init__(rules, goal_relation=goal_relation)
        for rule in self.rules:
            if len(rule.head) != 1:
                raise ValueError(
                    "datalog rules must have exactly one head atom; "
                    f"offending rule: {rule}"
                )

    # -- evaluation --------------------------------------------------------------

    def least_fixpoint(self, instance: Instance) -> Instance:
        """The minimal model of the program extending the instance."""
        adom_facts = [
            Fact(RelationSymbol(ADOM, 1), (element,))
            for element in instance.active_domain
        ]
        current = instance.with_facts(adom_facts)
        changed = True
        while changed:
            changed = False
            new_facts: set[Fact] = set()
            for rule in self.rules:
                for assignment in _body_matches(rule, current):
                    head_atom = rule.head[0]
                    arguments = tuple(
                        assignment[a] if isinstance(a, Variable) else a
                        for a in head_atom.arguments
                    )
                    fact = Fact(head_atom.relation, arguments)
                    if fact not in current:
                        new_facts.add(fact)
            if new_facts:
                current = current.with_facts(new_facts)
                changed = True
        return current

    def evaluate(self, instance: Instance) -> frozenset[tuple]:
        """The answers of the datalog query: goal facts in the least fixpoint."""
        fixpoint = self.least_fixpoint(instance)
        return frozenset(fixpoint.tuples(self.goal_relation))

    def evaluate_boolean(self, instance: Instance) -> bool:
        if self.arity != 0:
            raise ValueError("program is not Boolean")
        return () in self.evaluate(instance)

    def holds(self, instance: Instance, answer: Sequence = ()) -> bool:
        return tuple(answer) in self.evaluate(instance)


def _body_matches(rule: Rule, instance: Instance):
    """Enumerate assignments of body variables satisfying the body in ``instance``."""
    atoms = sorted(rule.body, key=lambda a: len(instance.tuples(a.relation)))
    variables = sorted(rule.variables, key=str)

    def extend(index: int, assignment: dict):
        if index == len(atoms):
            if all(v in assignment for v in variables):
                yield dict(assignment)
            else:
                # variables occurring only in the head are not allowed by Rule,
                # so every variable is already bound here.
                yield dict(assignment)
            return
        atom = atoms[index]
        for row in instance.tuples(atom.relation):
            candidate = dict(assignment)
            consistent = True
            for term, value in zip(atom.arguments, row):
                if isinstance(term, Variable):
                    if term in candidate and candidate[term] != value:
                        consistent = False
                        break
                    candidate[term] = value
                elif term != value:
                    consistent = False
                    break
            if consistent:
                yield from extend(index + 1, candidate)

    yield from extend(0, {})


def conjoin_datalog_queries(
    programs: Sequence[DatalogProgram],
) -> DatalogProgram:
    """The conjunction of datalog queries of the same arity (Lemma 5.14 uses
    closure of datalog queries under conjunction).

    Relation symbols of each program are renamed apart, and the combined goal
    fires when every constituent goal fires on the same tuple.
    """
    if not programs:
        raise ValueError("need at least one program")
    arity = programs[0].arity
    if any(p.arity != arity for p in programs):
        raise ValueError("programs must share the goal arity")
    renamed_rules: list[Rule] = []
    component_goals: list[RelationSymbol] = []
    for index, program in enumerate(programs):
        idb_names = {s.name for s in program.idb_relations} - {ADOM}
        renaming = {
            name: f"{name}__c{index}" for name in idb_names
        }
        component_goals.append(RelationSymbol(renaming["goal"], arity))

        def rename_atom(atom: Atom) -> Atom:
            name = atom.relation.name
            if name in renaming:
                return Atom(
                    RelationSymbol(renaming[name], atom.relation.arity), atom.arguments
                )
            return atom

        for rule in program.rules:
            renamed_rules.append(
                Rule(
                    tuple(rename_atom(a) for a in rule.head),
                    tuple(rename_atom(a) for a in rule.body),
                )
            )
    answer_vars = tuple(Variable(f"x{i}") for i in range(arity))
    goal = RelationSymbol("goal", arity)
    if arity == 0:
        body = tuple(Atom(g, ()) for g in component_goals)
    else:
        body = tuple(Atom(g, answer_vars) for g in component_goals)
    renamed_rules.append(Rule((Atom(goal, answer_vars),), body))
    return DatalogProgram(renamed_rules, goal_relation=goal)


def union_datalog_queries(programs: Sequence[DatalogProgram]) -> DatalogProgram:
    """The union (disjunction) of datalog queries of the same arity."""
    if not programs:
        raise ValueError("need at least one program")
    arity = programs[0].arity
    if any(p.arity != arity for p in programs):
        raise ValueError("programs must share the goal arity")
    renamed_rules: list[Rule] = []
    goal = RelationSymbol("goal", arity)
    answer_vars = tuple(Variable(f"x{i}") for i in range(arity))
    for index, program in enumerate(programs):
        idb_names = {s.name for s in program.idb_relations} - {ADOM}
        renaming = {name: f"{name}__u{index}" for name in idb_names}

        def rename_atom(atom: Atom) -> Atom:
            name = atom.relation.name
            if name in renaming:
                return Atom(
                    RelationSymbol(renaming[name], atom.relation.arity), atom.arguments
                )
            return atom

        for rule in program.rules:
            renamed_rules.append(
                Rule(
                    tuple(rename_atom(a) for a in rule.head),
                    tuple(rename_atom(a) for a in rule.body),
                )
            )
        component_goal = RelationSymbol(renaming["goal"], arity)
        renamed_rules.append(
            Rule((Atom(goal, answer_vars),), (Atom(component_goal, answer_vars),))
        )
    return DatalogProgram(renamed_rules, goal_relation=goal)
