"""Plain (disjunction-free) datalog with semi-naive bottom-up evaluation.

Datalog queries are the rewriting target of Section 5.3; a *datalog query* in
the paper is a DDlog query defined by a program whose rule heads are single
atoms.  This module provides a least-fixpoint evaluator, which is what makes
the datalog-rewritability experiments executable.
"""

from __future__ import annotations

from typing import Hashable, Iterator, Sequence

from ..core.cq import Atom, Variable
from ..core.instance import Fact, Instance, MutableIndexedInstance
from ..core.schema import RelationSymbol
from ..engine.joins import (
    canonical_key,
    extend_assignment,
    join_assignments,
    order_atoms,
)
from .ddlog import ADOM, DisjunctiveDatalogProgram, Rule

Element = Hashable


class DatalogProgram(DisjunctiveDatalogProgram):
    """A disjunction-free DDlog program evaluated via least fixpoint."""

    def __init__(self, rules, goal_relation: RelationSymbol | None = None) -> None:
        super().__init__(rules, goal_relation=goal_relation)
        for rule in self.rules:
            if len(rule.head) != 1:
                raise ValueError(
                    "datalog rules must have exactly one head atom; "
                    f"offending rule: {rule}"
                )

    # -- evaluation --------------------------------------------------------------

    def least_fixpoint(self, instance: Instance) -> Instance:
        """The minimal model of the program extending the instance.

        Evaluation is *semi-naive*: after the first round, a rule body is
        only re-joined through instantiations that touch at least one fact
        derived in the previous round (the delta), instead of re-enumerating
        every body match against the full instance on every round.  Facts
        accumulate in **one** :class:`MutableIndexedInstance` whose indexes
        are updated in place across rounds — a round's derivations are
        buffered and applied between rounds (so every join still runs
        against the previous round's state, and no live index mutates under
        an in-flight join), and the store is frozen exactly once at
        saturation.
        """
        current = MutableIndexedInstance(instance)
        adom = RelationSymbol(ADOM, 1)
        seed = list(instance.facts) + [
            Fact(adom, (element,)) for element in instance.active_domain
        ]
        for fact in seed:
            current.add(fact)
        delta = Instance(seed)  # first round: every fact is new
        while True:
            fresh: list[Fact] = []
            pending: set[Fact] = set()
            for rule in self.rules:
                head_atom = rule.head[0]
                for assignment in delta_body_matches(rule, current, delta):
                    arguments = tuple(
                        assignment[a] if isinstance(a, Variable) else a
                        for a in head_atom.arguments
                    )
                    fact = Fact(head_atom.relation, arguments)
                    # the pending set dedups facts derived several times in
                    # one round; application is deferred to the round
                    # boundary so the live indexes stay stable under the
                    # round's joins
                    if fact in current or fact in pending:
                        continue
                    pending.add(fact)
                    fresh.append(fact)
            if not fresh:
                return current.freeze()
            for fact in fresh:
                current.add(fact)
            delta = Instance(fresh)

    def evaluate(self, instance: Instance) -> frozenset[tuple]:
        """The answers of the datalog query: goal facts in the least fixpoint."""
        fixpoint = self.least_fixpoint(instance)
        return frozenset(fixpoint.tuples(self.goal_relation))

    def evaluate_boolean(self, instance: Instance) -> bool:
        if self.arity != 0:
            raise ValueError("program is not Boolean")
        return () in self.evaluate(instance)

    def holds(self, instance: Instance, answer: Sequence = ()) -> bool:
        return tuple(answer) in self.evaluate(instance)


def delta_body_matches(
    rule: Rule,
    current: "Instance | MutableIndexedInstance",
    delta: Instance,
) -> Iterator[dict[Variable, Element]]:
    """Body matches of ``rule`` in ``current`` touching at least one ``delta`` fact.

    The semi-naive primitive shared by :meth:`DatalogProgram.least_fixpoint`
    and the incremental maintenance of :mod:`repro.service.delta`: for every
    body atom in turn, the atom is matched against the delta and the
    remaining atoms are joined against the full instance (selectivity-ordered
    through the engine's join planner).  Matches are deduplicated by their
    canonical assignment key, so instantiations touching several delta facts
    are yielded once.
    """
    if delta.is_empty():
        return
    seen: set[tuple] = set()
    for index, atom in enumerate(rule.body):
        rows = delta.tuples(atom.relation)
        if not rows:
            continue
        rest = [a for i, a in enumerate(rule.body) if i != index]
        # The greedy join order depends only on which variables the seed
        # binds, so it is computed once per delta atom, not once per row.
        ordered = order_atoms(rest, current, bound=atom.variables)
        for row in rows:
            seed = extend_assignment(atom, row, {})
            if seed is None:
                continue
            for assignment in join_assignments(
                rest, current, initial=seed, ordered=ordered
            ):
                key = canonical_key(assignment)
                if key in seen:
                    continue
                seen.add(key)
                yield assignment


def conjoin_datalog_queries(
    programs: Sequence[DatalogProgram],
) -> DatalogProgram:
    """The conjunction of datalog queries of the same arity (Lemma 5.14 uses
    closure of datalog queries under conjunction).

    Relation symbols of each program are renamed apart, and the combined goal
    fires when every constituent goal fires on the same tuple.
    """
    if not programs:
        raise ValueError("need at least one program")
    arity = programs[0].arity
    if any(p.arity != arity for p in programs):
        raise ValueError("programs must share the goal arity")
    renamed_rules: list[Rule] = []
    component_goals: list[RelationSymbol] = []
    for index, program in enumerate(programs):
        idb_names = {s.name for s in program.idb_relations} - {ADOM}
        renaming = {
            name: f"{name}__c{index}" for name in idb_names
        }
        component_goals.append(RelationSymbol(renaming["goal"], arity))

        def rename_atom(atom: Atom) -> Atom:
            name = atom.relation.name
            if name in renaming:
                return Atom(
                    RelationSymbol(renaming[name], atom.relation.arity), atom.arguments
                )
            return atom

        for rule in program.rules:
            renamed_rules.append(
                Rule(
                    tuple(rename_atom(a) for a in rule.head),
                    tuple(rename_atom(a) for a in rule.body),
                )
            )
    answer_vars = tuple(Variable(f"x{i}") for i in range(arity))
    goal = RelationSymbol("goal", arity)
    if arity == 0:
        body = tuple(Atom(g, ()) for g in component_goals)
    else:
        body = tuple(Atom(g, answer_vars) for g in component_goals)
    renamed_rules.append(Rule((Atom(goal, answer_vars),), body))
    return DatalogProgram(renamed_rules, goal_relation=goal)


def union_datalog_queries(programs: Sequence[DatalogProgram]) -> DatalogProgram:
    """The union (disjunction) of datalog queries of the same arity."""
    if not programs:
        raise ValueError("need at least one program")
    arity = programs[0].arity
    if any(p.arity != arity for p in programs):
        raise ValueError("programs must share the goal arity")
    renamed_rules: list[Rule] = []
    goal = RelationSymbol("goal", arity)
    answer_vars = tuple(Variable(f"x{i}") for i in range(arity))
    for index, program in enumerate(programs):
        idb_names = {s.name for s in program.idb_relations} - {ADOM}
        renaming = {name: f"{name}__u{index}" for name in idb_names}

        def rename_atom(atom: Atom) -> Atom:
            name = atom.relation.name
            if name in renaming:
                return Atom(
                    RelationSymbol(renaming[name], atom.relation.arity), atom.arguments
                )
            return atom

        for rule in program.rules:
            renamed_rules.append(
                Rule(
                    tuple(rename_atom(a) for a in rule.head),
                    tuple(rename_atom(a) for a in rule.body),
                )
            )
        component_goal = RelationSymbol(renaming["goal"], arity)
        renamed_rules.append(
            Rule((Atom(goal, answer_vars),), (Atom(component_goal, answer_vars),))
        )
    return DatalogProgram(renamed_rules, goal_relation=goal)
