"""Plain (disjunction-free) datalog with semi-naive bottom-up evaluation.

Datalog queries are the rewriting target of Section 5.3; a *datalog query* in
the paper is a DDlog query defined by a program whose rule heads are single
atoms.  This module provides a least-fixpoint evaluator, which is what makes
the datalog-rewritability experiments executable.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from ..core.cq import Atom, Variable
from ..core.instance import Fact, Instance, InstanceBuilder
from ..core.schema import RelationSymbol
from ..engine.joins import join_assignments
from .ddlog import ADOM, DisjunctiveDatalogProgram, Rule

Element = Hashable


class DatalogProgram(DisjunctiveDatalogProgram):
    """A disjunction-free DDlog program evaluated via least fixpoint."""

    def __init__(self, rules, goal_relation: RelationSymbol | None = None) -> None:
        super().__init__(rules, goal_relation=goal_relation)
        for rule in self.rules:
            if len(rule.head) != 1:
                raise ValueError(
                    "datalog rules must have exactly one head atom; "
                    f"offending rule: {rule}"
                )

    # -- evaluation --------------------------------------------------------------

    def least_fixpoint(self, instance: Instance) -> Instance:
        """The minimal model of the program extending the instance.

        Rounds run the join-planned body matcher of the engine against the
        current instance; facts accumulate in an :class:`InstanceBuilder`,
        whose freeze skips re-deriving the active domain and per-relation
        index from scratch (the fact set itself is still copied per round).
        """
        builder = InstanceBuilder.from_instance(instance)
        builder.add_all(
            Fact(RelationSymbol(ADOM, 1), (element,))
            for element in instance.active_domain
        )
        changed = True
        while changed:
            current = builder.build()
            changed = False
            for rule in self.rules:
                head_atom = rule.head[0]
                for assignment in _body_matches(rule, current):
                    arguments = tuple(
                        assignment[a] if isinstance(a, Variable) else a
                        for a in head_atom.arguments
                    )
                    if builder.add(Fact(head_atom.relation, arguments)):
                        changed = True
        return builder.build()

    def evaluate(self, instance: Instance) -> frozenset[tuple]:
        """The answers of the datalog query: goal facts in the least fixpoint."""
        fixpoint = self.least_fixpoint(instance)
        return frozenset(fixpoint.tuples(self.goal_relation))

    def evaluate_boolean(self, instance: Instance) -> bool:
        if self.arity != 0:
            raise ValueError("program is not Boolean")
        return () in self.evaluate(instance)

    def holds(self, instance: Instance, answer: Sequence = ()) -> bool:
        return tuple(answer) in self.evaluate(instance)


def _body_matches(rule: Rule, instance: Instance):
    """Enumerate assignments of body variables satisfying the body in ``instance``.

    Rule safety guarantees every rule variable occurs in the body, so the
    engine's selectivity-ordered join binds them all.
    """
    yield from join_assignments(rule.body, instance)


def conjoin_datalog_queries(
    programs: Sequence[DatalogProgram],
) -> DatalogProgram:
    """The conjunction of datalog queries of the same arity (Lemma 5.14 uses
    closure of datalog queries under conjunction).

    Relation symbols of each program are renamed apart, and the combined goal
    fires when every constituent goal fires on the same tuple.
    """
    if not programs:
        raise ValueError("need at least one program")
    arity = programs[0].arity
    if any(p.arity != arity for p in programs):
        raise ValueError("programs must share the goal arity")
    renamed_rules: list[Rule] = []
    component_goals: list[RelationSymbol] = []
    for index, program in enumerate(programs):
        idb_names = {s.name for s in program.idb_relations} - {ADOM}
        renaming = {
            name: f"{name}__c{index}" for name in idb_names
        }
        component_goals.append(RelationSymbol(renaming["goal"], arity))

        def rename_atom(atom: Atom) -> Atom:
            name = atom.relation.name
            if name in renaming:
                return Atom(
                    RelationSymbol(renaming[name], atom.relation.arity), atom.arguments
                )
            return atom

        for rule in program.rules:
            renamed_rules.append(
                Rule(
                    tuple(rename_atom(a) for a in rule.head),
                    tuple(rename_atom(a) for a in rule.body),
                )
            )
    answer_vars = tuple(Variable(f"x{i}") for i in range(arity))
    goal = RelationSymbol("goal", arity)
    if arity == 0:
        body = tuple(Atom(g, ()) for g in component_goals)
    else:
        body = tuple(Atom(g, answer_vars) for g in component_goals)
    renamed_rules.append(Rule((Atom(goal, answer_vars),), body))
    return DatalogProgram(renamed_rules, goal_relation=goal)


def union_datalog_queries(programs: Sequence[DatalogProgram]) -> DatalogProgram:
    """The union (disjunction) of datalog queries of the same arity."""
    if not programs:
        raise ValueError("need at least one program")
    arity = programs[0].arity
    if any(p.arity != arity for p in programs):
        raise ValueError("programs must share the goal arity")
    renamed_rules: list[Rule] = []
    goal = RelationSymbol("goal", arity)
    answer_vars = tuple(Variable(f"x{i}") for i in range(arity))
    for index, program in enumerate(programs):
        idb_names = {s.name for s in program.idb_relations} - {ADOM}
        renaming = {name: f"{name}__u{index}" for name in idb_names}

        def rename_atom(atom: Atom) -> Atom:
            name = atom.relation.name
            if name in renaming:
                return Atom(
                    RelationSymbol(renaming[name], atom.relation.arity), atom.arguments
                )
            return atom

        for rule in program.rules:
            renamed_rules.append(
                Rule(
                    tuple(rename_atom(a) for a in rule.head),
                    tuple(rename_atom(a) for a in rule.body),
                )
            )
        component_goal = RelationSymbol(renaming["goal"], arity)
        renamed_rules.append(
            Rule((Atom(goal, answer_vars),), (Atom(component_goal, answer_vars),))
        )
    return DatalogProgram(renamed_rules, goal_relation=goal)
