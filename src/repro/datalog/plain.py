"""Plain (disjunction-free) datalog with semi-naive bottom-up evaluation.

Datalog queries are the rewriting target of Section 5.3; a *datalog query* in
the paper is a DDlog query defined by a program whose rule heads are single
atoms.  This module provides a least-fixpoint evaluator, which is what makes
the datalog-rewritability experiments executable.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterator, Sequence

from ..core.cq import Atom, Variable
from ..core.instance import Fact, Instance, MutableIndexedInstance, TupleIndexedInstance
from ..core.interning import Interner, IntRow
from ..core.schema import RelationSymbol
from ..engine.joins import (
    JoinPlan,
    canonical_key,
    compile_join,
    execute_join,
    extend_assignment,
    join_assignments,
    order_atoms,
)
from ..obs import telemetry as _telemetry
from .ddlog import ADOM, DisjunctiveDatalogProgram, Rule

Element = Hashable


def seed_row_builder(
    atom: Atom, plan: JoinPlan, interner: Interner
) -> Callable[[IntRow], IntRow | None]:
    """A function turning one (interned) row of ``atom``'s relation into a
    seed row over ``plan.bound_variables``, or ``None`` when the row is
    incompatible with the atom (constant mismatch, repeated-variable clash).

    The semi-naive primitive: delta rows seed the plan compiled for the
    *rest* of the rule body with ``atom``'s variables bound.  Distinct
    accepted rows yield distinct seeds (constant positions are pinned and
    variable positions are the projection), so the seed batch is
    duplicate-free whenever the delta rows are.
    """
    position_of: dict[Variable, int] = {}
    checks: list[tuple[int, int]] = []  # (position, required code)
    duplicates: list[tuple[int, int]] = []  # row[p] == row[q]
    for position, term in enumerate(atom.arguments):
        if isinstance(term, Variable):
            first = position_of.get(term)
            if first is None:
                position_of[term] = position
            else:
                duplicates.append((first, position))
        else:
            checks.append((position, interner.intern(term)))
    extract = tuple(position_of[v] for v in plan.bound_variables)

    def build(row: IntRow) -> IntRow | None:
        for position, code in checks:
            if row[position] != code:
                return None
        for left, right in duplicates:
            if row[left] != row[right]:
                return None
        return tuple(row[p] for p in extract)

    return build


def head_row_builder(
    head: Atom, plan: JoinPlan, interner: Interner
) -> Callable[[IntRow], IntRow]:
    """A function projecting one executed plan row onto the head atom's
    argument row (head constants pre-interned)."""
    slot_of = {variable: slot for slot, variable in enumerate(plan.variables)}
    layout = tuple(
        (True, slot_of[term]) if isinstance(term, Variable) else (False, interner.intern(term))
        for term in head.arguments
    )

    def build(row: IntRow) -> IntRow:
        return tuple(row[key] if is_slot else key for is_slot, key in layout)

    return build


class CompiledRule:
    """One rule compiled for batched semi-naive evaluation over a store.

    For every body atom index the *rest* of the body is compiled into a
    :class:`~repro.engine.joins.JoinPlan` with that atom's variables bound;
    a delta round seeds each plan with the delta rows of the atom's
    relation and executes set-at-a-time.  Per-index plans compile lazily,
    the first time the atom's relation actually carries delta rows — on
    small instances most IDB atoms never do, and their plans are never
    built.  Plans are interner-independent, so one compiled rule serves
    every store the program ever evaluates — fixpoint rounds, DRed passes,
    session epochs *and* unrelated fresh instances (the cross-validation
    pattern); only the thin seed/head row builders, which embed constant
    codes, are re-derived when the store's interner changes (identity
    guard, single slot).
    """

    __slots__ = ("rule", "_head", "_plans", "_builders_interner", "_builders")

    def __init__(self, rule: Rule) -> None:
        self.rule = rule
        self._head = rule.head[0] if len(rule.head) == 1 else None
        # per body atom index: the rest-of-body JoinPlan, compiled lazily
        self._plans: list[JoinPlan | None] = [None] * len(rule.body)
        # per body atom index: (plan, seed builder, head builder) for the
        # current interner; rebuilt (cheaply) when the interner changes
        self._builders_interner: Interner | None = None
        self._builders: list[tuple | None] = [None] * len(rule.body)

    def entry(self, index: int, store) -> tuple:
        """The compiled (plan, seed builder, head builder) of one atom index."""
        interner = store.interner
        if self._builders_interner is not interner:
            self._builders = [None] * len(self.rule.body)
            self._builders_interner = interner
        entry = self._builders[index]
        if entry is None:
            atom = self.rule.body[index]
            plan = self._plans[index]
            if plan is None:
                rest = [a for i, a in enumerate(self.rule.body) if i != index]
                plan = compile_join(rest, store, bound=atom.variables)
                self._plans[index] = plan
            entry = (
                plan,
                seed_row_builder(atom, plan, interner),
                head_row_builder(self._head, plan, interner)
                if self._head is not None
                else None,
            )
            self._builders[index] = entry
        return entry

    def delta_result_rows(
        self, store, delta: "dict[RelationSymbol, list[IntRow]]"
    ) -> Iterator[tuple[Callable, list[IntRow]]]:
        """Per delta atom index with delta rows: the head-row builder and the
        full result rows of the rest-plan seeded with those rows
        (set-at-a-time, duplicate-free batches)."""
        for index, atom in enumerate(self.rule.body):
            rows = delta.get(atom.relation)
            if not rows:
                continue
            plan, build_seed, build_head = self.entry(index, store)
            seeds = [
                seed for row in rows if (seed := build_seed(row)) is not None
            ]
            if not seeds:
                continue
            out = execute_join(plan, store, seeds)
            if out:
                yield build_head, out


class DatalogProgram(DisjunctiveDatalogProgram):
    """A disjunction-free DDlog program evaluated via least fixpoint."""

    def __init__(self, rules, goal_relation: RelationSymbol | None = None) -> None:
        super().__init__(rules, goal_relation=goal_relation)
        for rule in self.rules:
            if len(rule.head) != 1:
                raise ValueError(
                    "datalog rules must have exactly one head atom; "
                    f"offending rule: {rule}"
                )

    # -- evaluation --------------------------------------------------------------

    def compiled_rules(self, store) -> "list[CompiledRule]":
        """The program's rules compiled for batched evaluation (cached).

        The cache lives on the program object — it dies with the program —
        and since plans are interner-independent it is hit by *every*
        store the program evaluates: delta copies and fixpoint stores of a
        session, and entirely unrelated fresh instances alike.  ``store``
        only informs the greedy atom ordering of plans compiled lazily on
        this call.
        """
        cache = getattr(self, "_columnar_compiled", None)
        if cache is None:
            cache = [CompiledRule(rule) for rule in self.rules]
            self._columnar_compiled = cache
        return cache

    def least_fixpoint(
        self, instance: Instance, engine: str = "columnar"
    ) -> Instance:
        """The minimal model of the program extending the instance.

        Evaluation is *semi-naive*: after the first round, a rule body is
        only re-joined through instantiations that touch at least one fact
        derived in the previous round (the delta).  The default
        ``columnar`` engine runs entirely on interned int rows: every rule
        is compiled once (:class:`CompiledRule`), each round seeds the
        compiled rest-plans with the previous round's delta *batches* and
        executes set-at-a-time, and derived head rows accumulate in **one**
        :class:`MutableIndexedInstance` whose columnar buckets are updated
        in place across rounds.  A round's derivations are buffered and
        applied at the round boundary (so every join runs against the
        previous round's state and no live index mutates under an in-flight
        join), and the store is frozen exactly once at saturation.

        ``engine="tuple"`` runs the pre-columnar tuple-at-a-time
        implementation over a :class:`TupleIndexedInstance` — the
        cross-validation reference and benchmark baseline.
        """
        if engine == "tuple":
            return self._least_fixpoint_tuple(instance)
        if engine != "columnar":
            raise ValueError(f"unknown fixpoint engine: {engine!r}")
        current = MutableIndexedInstance(instance)
        adom = RelationSymbol(ADOM, 1)
        delta: dict[RelationSymbol, list] = {}
        for relation in instance.schema:
            rows = current.relation_rows(relation)
            if rows:
                delta[relation] = list(rows)
        adom_rows = []
        for code in sorted(current.domain_codes):
            row = (code,)
            if current.add_row(adom, row):
                adom_rows.append(row)
        if adom_rows:
            delta[adom] = adom_rows
        compiled = self.compiled_rules(current)
        tel = _telemetry.ACTIVE
        rounds = 0
        derived_total = 0
        with _telemetry.maybe_span(
            "fixpoint.least_fixpoint", rules=len(compiled)
        ) as span:
            while delta:
                pending: dict[RelationSymbol, set] = {}
                for crule in compiled:
                    head_relation = crule.rule.head[0].relation
                    derived = pending.get(head_relation)
                    for build_head, rows in crule.delta_result_rows(
                        current, delta
                    ):
                        for row in rows:
                            head_row = build_head(row)
                            if current.has_row(head_relation, head_row):
                                continue
                            if derived is None:
                                derived = pending.setdefault(
                                    head_relation, set()
                                )
                            derived.add(head_row)
                # round boundary: apply the buffered derivations in one batch
                delta = {}
                for relation, rows in pending.items():
                    fresh = [
                        row for row in rows if current.add_row(relation, row)
                    ]
                    if fresh:
                        delta[relation] = fresh
                rounds += 1
                if tel is not None:
                    delta_size = sum(len(rows) for rows in delta.values())
                    derived_total += delta_size
                    tel.record("fixpoint.round_delta_rows", delta_size)
            if tel is not None:
                tel.count("fixpoint.runs")
                tel.count("fixpoint.rounds", rounds)
                tel.count("fixpoint.rows_derived", derived_total)
                span.set(rounds=rounds, rows_derived=derived_total)
        return current.freeze()

    def _least_fixpoint_tuple(self, instance: Instance) -> Instance:
        """The pre-columnar tuple-at-a-time semi-naive fixpoint (reference)."""
        current = TupleIndexedInstance(instance)
        adom = RelationSymbol(ADOM, 1)
        seed = list(instance.facts) + [
            Fact(adom, (element,)) for element in instance.active_domain
        ]
        for fact in seed:
            current.add(fact)
        delta = Instance(seed)  # first round: every fact is new
        while True:
            fresh: list[Fact] = []
            pending: set[Fact] = set()
            for rule in self.rules:
                head_atom = rule.head[0]
                for assignment in delta_body_matches(rule, current, delta):
                    arguments = tuple(
                        assignment[a] if isinstance(a, Variable) else a
                        for a in head_atom.arguments
                    )
                    fact = Fact(head_atom.relation, arguments)
                    # the pending set dedups facts derived several times in
                    # one round; application is deferred to the round
                    # boundary so the live indexes stay stable under the
                    # round's joins
                    if fact in current or fact in pending:
                        continue
                    pending.add(fact)
                    fresh.append(fact)
            if not fresh:
                return current.freeze()
            for fact in fresh:
                current.add(fact)
            delta = Instance(fresh)

    def evaluate(
        self, instance: Instance, engine: str = "columnar"
    ) -> frozenset[tuple]:
        """The answers of the datalog query: goal facts in the least fixpoint."""
        fixpoint = self.least_fixpoint(instance, engine=engine)
        return frozenset(fixpoint.tuples(self.goal_relation))

    def evaluate_boolean(self, instance: Instance) -> bool:
        if self.arity != 0:
            raise ValueError("program is not Boolean")
        return () in self.evaluate(instance)

    def holds(self, instance: Instance, answer: Sequence = ()) -> bool:
        return tuple(answer) in self.evaluate(instance)


def delta_body_matches(
    rule: Rule,
    current: "Instance | MutableIndexedInstance",
    delta: Instance,
) -> Iterator[dict[Variable, Element]]:
    """Body matches of ``rule`` in ``current`` touching at least one ``delta`` fact.

    The semi-naive primitive shared by :meth:`DatalogProgram.least_fixpoint`
    and the incremental maintenance of :mod:`repro.service.delta`: for every
    body atom in turn, the atom is matched against the delta and the
    remaining atoms are joined against the full instance (selectivity-ordered
    through the engine's join planner).  Matches are deduplicated by their
    canonical assignment key, so instantiations touching several delta facts
    are yielded once.
    """
    if delta.is_empty():
        return
    seen: set[tuple] = set()
    for index, atom in enumerate(rule.body):
        rows = delta.tuples(atom.relation)
        if not rows:
            continue
        rest = [a for i, a in enumerate(rule.body) if i != index]
        # The greedy join order depends only on which variables the seed
        # binds, so it is computed once per delta atom, not once per row.
        ordered = order_atoms(rest, current, bound=atom.variables)
        for row in rows:
            seed = extend_assignment(atom, row, {})
            if seed is None:
                continue
            for assignment in join_assignments(
                rest, current, initial=seed, ordered=ordered
            ):
                key = canonical_key(assignment)
                if key in seen:
                    continue
                seen.add(key)
                yield assignment


def conjoin_datalog_queries(
    programs: Sequence[DatalogProgram],
) -> DatalogProgram:
    """The conjunction of datalog queries of the same arity (Lemma 5.14 uses
    closure of datalog queries under conjunction).

    Relation symbols of each program are renamed apart, and the combined goal
    fires when every constituent goal fires on the same tuple.
    """
    if not programs:
        raise ValueError("need at least one program")
    arity = programs[0].arity
    if any(p.arity != arity for p in programs):
        raise ValueError("programs must share the goal arity")
    renamed_rules: list[Rule] = []
    component_goals: list[RelationSymbol] = []
    for index, program in enumerate(programs):
        idb_names = {s.name for s in program.idb_relations} - {ADOM}
        renaming = {
            name: f"{name}__c{index}" for name in idb_names
        }
        component_goals.append(RelationSymbol(renaming["goal"], arity))

        def rename_atom(atom: Atom) -> Atom:
            name = atom.relation.name
            if name in renaming:
                return Atom(
                    RelationSymbol(renaming[name], atom.relation.arity), atom.arguments
                )
            return atom

        for rule in program.rules:
            renamed_rules.append(
                Rule(
                    tuple(rename_atom(a) for a in rule.head),
                    tuple(rename_atom(a) for a in rule.body),
                )
            )
    answer_vars = tuple(Variable(f"x{i}") for i in range(arity))
    goal = RelationSymbol("goal", arity)
    if arity == 0:
        body = tuple(Atom(g, ()) for g in component_goals)
    else:
        body = tuple(Atom(g, answer_vars) for g in component_goals)
    renamed_rules.append(Rule((Atom(goal, answer_vars),), body))
    return DatalogProgram(renamed_rules, goal_relation=goal)


def union_datalog_queries(programs: Sequence[DatalogProgram]) -> DatalogProgram:
    """The union (disjunction) of datalog queries of the same arity."""
    if not programs:
        raise ValueError("need at least one program")
    arity = programs[0].arity
    if any(p.arity != arity for p in programs):
        raise ValueError("programs must share the goal arity")
    renamed_rules: list[Rule] = []
    goal = RelationSymbol("goal", arity)
    answer_vars = tuple(Variable(f"x{i}") for i in range(arity))
    for index, program in enumerate(programs):
        idb_names = {s.name for s in program.idb_relations} - {ADOM}
        renaming = {name: f"{name}__u{index}" for name in idb_names}

        def rename_atom(atom: Atom) -> Atom:
            name = atom.relation.name
            if name in renaming:
                return Atom(
                    RelationSymbol(renaming[name], atom.relation.arity), atom.arguments
                )
            return atom

        for rule in program.rules:
            renamed_rules.append(
                Rule(
                    tuple(rename_atom(a) for a in rule.head),
                    tuple(rename_atom(a) for a in rule.body),
                )
            )
        component_goal = RelationSymbol(renaming["goal"], arity)
        renamed_rules.append(
            Rule((Atom(goal, answer_vars),), (Atom(component_goal, answer_vars),))
        )
    return DatalogProgram(renamed_rules, goal_relation=goal)
