"""Disjunctive datalog: programs, fragments, and certain-answer evaluation."""

from .ddlog import (
    ADOM,
    GOAL,
    DisjunctiveDatalogProgram,
    Rule,
    adom_atom,
    goal_atom,
    mddlog_program,
)
from .evaluation import (
    evaluate,
    evaluate_boolean,
    ground_clauses,
    has_model_avoiding,
    holds,
    models,
)
from .plain import DatalogProgram, conjoin_datalog_queries, union_datalog_queries

__all__ = [
    "ADOM",
    "GOAL",
    "DatalogProgram",
    "DisjunctiveDatalogProgram",
    "Rule",
    "adom_atom",
    "conjoin_datalog_queries",
    "evaluate",
    "evaluate_boolean",
    "goal_atom",
    "ground_clauses",
    "has_model_avoiding",
    "holds",
    "mddlog_program",
    "models",
    "union_datalog_queries",
]
