"""Certain-answer evaluation of disjunctive datalog programs.

``qΠ(D)`` consists of the tuples ``a`` over ``adom(D)`` such that ``goal(a)``
holds in *every* model of Π extending ``D`` (Section 3).  Because the
programs are negation-free it suffices to consider models whose domain is
``adom(D)``; the evaluator therefore grounds the program over the active
domain and decides, per candidate tuple, the satisfiability of the ground
clauses together with ``¬goal(a)`` using a small DPLL-style solver.
"""

from __future__ import annotations

import itertools
from typing import Hashable, Iterable, Iterator, Sequence

from ..core.cq import Atom, Variable
from ..core.instance import Fact, Instance
from ..core.schema import RelationSymbol
from .ddlog import ADOM, DisjunctiveDatalogProgram, Rule

Element = Hashable
GroundAtom = tuple  # (RelationSymbol, argument tuple)
Clause = tuple[frozenset, frozenset]  # (negative ground atoms, positive ground atoms)


def _ground_atom(atom: Atom, assignment: dict[Variable, Element]) -> GroundAtom:
    arguments = tuple(
        assignment[arg] if isinstance(arg, Variable) else arg for arg in atom.arguments
    )
    return (atom.relation, arguments)


def _edb_lookup(instance: Instance, relation: RelationSymbol, arguments: tuple) -> bool:
    if relation.name == ADOM:
        return arguments[0] in instance.active_domain
    return arguments in instance.tuples(relation)


def ground_clauses(
    program: DisjunctiveDatalogProgram, instance: Instance
) -> list[Clause]:
    """Ground the program over ``adom(D)``.

    Each returned clause is a pair (negative IDB atoms, positive IDB atoms);
    it is satisfied if some negative atom is false or some positive atom is
    true.  Rules whose EDB body part is not matched by the data produce no
    clause; EDB head atoms cannot occur (heads are IDB by definition).
    """
    domain = sorted(instance.active_domain, key=repr)
    edb = program.edb_relations
    idb_names = {sym.name for sym in program.idb_relations}
    clauses: list[Clause] = []
    for rule in program.rules:
        variables = sorted(rule.variables, key=str)
        # Seed candidate bindings from EDB atoms to avoid the full cartesian
        # product whenever possible.
        for assignment in _rule_assignments(rule, variables, domain, instance, edb):
            negative: set[GroundAtom] = set()
            positive: set[GroundAtom] = set()
            satisfied = False
            for atom in rule.body:
                ground = _ground_atom(atom, assignment)
                relation, arguments = ground
                if relation in edb or (
                    relation.name not in idb_names and relation.name != ADOM
                ):
                    if not _edb_lookup(instance, relation, arguments):
                        satisfied = True
                        break
                elif relation.name == ADOM:
                    if arguments[0] not in instance.active_domain:
                        satisfied = True
                        break
                else:
                    negative.add(ground)
            if satisfied:
                continue
            for atom in rule.head:
                positive.add(_ground_atom(atom, assignment))
            clauses.append((frozenset(negative), frozenset(positive)))
    return clauses


def _rule_assignments(
    rule: Rule,
    variables: Sequence[Variable],
    domain: Sequence[Element],
    instance: Instance,
    edb: frozenset[RelationSymbol],
) -> Iterator[dict[Variable, Element]]:
    """Enumerate variable assignments consistent with the EDB part of the body."""
    if not variables:
        yield {}
        return
    edb_atoms = [a for a in rule.body if a.relation in edb]
    other_variables = set(variables)
    partial_maps: list[dict[Variable, Element]] = [{}]
    for atom in edb_atoms:
        tuples = instance.tuples(atom.relation)
        extended: list[dict[Variable, Element]] = []
        for partial in partial_maps:
            for row in tuples:
                candidate = dict(partial)
                ok = True
                for term, value in zip(atom.arguments, row):
                    if isinstance(term, Variable):
                        if term in candidate and candidate[term] != value:
                            ok = False
                            break
                        candidate[term] = value
                    elif term != value:
                        ok = False
                        break
                if ok:
                    extended.append(candidate)
        partial_maps = extended
        if not partial_maps:
            return
    bound = set().union(*(set(p) for p in partial_maps)) if partial_maps else set()
    free = sorted(other_variables - bound, key=str)
    seen: set[tuple] = set()
    for partial in partial_maps:
        key = tuple(sorted(((v.name, partial[v]) for v in partial), key=repr))
        if key in seen:
            continue
        seen.add(key)
        for values in itertools.product(domain, repeat=len(free)):
            assignment = dict(partial)
            assignment.update(zip(free, values))
            yield assignment


def _dpll(clauses: list[Clause], forced_false: set[GroundAtom]) -> bool:
    """Satisfiability of the ground clause set with the given atoms forced false.

    An interpretation assigns true/false to ground IDB atoms; a clause
    ``(neg, pos)`` is satisfied if some atom of ``neg`` is false or some atom of
    ``pos`` is true.  Returns True iff a satisfying interpretation exists.
    """
    true_atoms: set[GroundAtom] = set()
    false_atoms: set[GroundAtom] = set(forced_false)

    def simplify(active: list[Clause]) -> tuple[list[Clause], bool]:
        changed = True
        current = active
        while changed:
            changed = False
            remaining: list[Clause] = []
            for negative, positive in current:
                if negative & false_atoms or positive & true_atoms:
                    continue  # clause already satisfied
                negative = negative - true_atoms
                positive = positive - false_atoms
                if not negative and not positive:
                    return [], False  # empty clause: conflict
                if not negative and len(positive) == 1:
                    atom = next(iter(positive))
                    if atom in false_atoms:
                        return [], False
                    true_atoms.add(atom)
                    changed = True
                    continue
                if not positive and len(negative) == 1:
                    atom = next(iter(negative))
                    if atom in true_atoms:
                        return [], False
                    false_atoms.add(atom)
                    changed = True
                    continue
                remaining.append((negative, positive))
            current = remaining
        return current, True

    def solve(active: list[Clause]) -> bool:
        nonlocal true_atoms, false_atoms
        simplified, consistent = simplify(active)
        if not consistent:
            return False
        if not simplified:
            return True
        # Branch on an arbitrary undecided atom; prefer making atoms false,
        # which heads towards minimal models.
        negative, positive = simplified[0]
        atom = next(iter(positive)) if positive else next(iter(negative))
        saved_true, saved_false = set(true_atoms), set(false_atoms)
        false_atoms.add(atom)
        if solve(simplified):
            return True
        true_atoms, false_atoms = saved_true, saved_false
        true_atoms.add(atom)
        if solve(simplified):
            return True
        true_atoms, false_atoms = saved_true, saved_false
        return False

    return solve(clauses)


def has_model_avoiding(
    program: DisjunctiveDatalogProgram,
    instance: Instance,
    avoided_goal_tuples: Iterable[tuple],
    clauses: list[Clause] | None = None,
) -> bool:
    """Is there a model of the program extending ``instance`` in which none of the
    given goal tuples holds?"""
    if clauses is None:
        clauses = ground_clauses(program, instance)
    forced_false = {
        (program.goal_relation, tuple(args)) for args in avoided_goal_tuples
    }
    return _dpll(list(clauses), forced_false)


def evaluate(
    program: DisjunctiveDatalogProgram, instance: Instance
) -> frozenset[tuple]:
    """The certain answers ``qΠ(D)`` of a DDlog program on an instance."""
    domain = sorted(instance.active_domain, key=repr)
    clauses = ground_clauses(program, instance)
    answers: set[tuple] = set()
    for candidate in itertools.product(domain, repeat=program.arity):
        if not has_model_avoiding(program, instance, [candidate], clauses):
            answers.add(candidate)
    return frozenset(answers)


def evaluate_boolean(program: DisjunctiveDatalogProgram, instance: Instance) -> bool:
    """Evaluate a Boolean (0-ary) program: ``qΠ(D) = 1``?"""
    if program.arity != 0:
        raise ValueError("program is not Boolean")
    if not instance.active_domain:
        return False
    clauses = ground_clauses(program, instance)
    return not has_model_avoiding(program, instance, [()], clauses)


def holds(
    program: DisjunctiveDatalogProgram, instance: Instance, answer: Sequence = ()
) -> bool:
    """Does the tuple ``answer`` belong to ``qΠ(D)``?"""
    clauses = ground_clauses(program, instance)
    return not has_model_avoiding(program, instance, [tuple(answer)], clauses)


def models(
    program: DisjunctiveDatalogProgram,
    instance: Instance,
    max_models: int | None = None,
) -> Iterator[Instance]:
    """Enumerate models of the program extending the instance (over ``adom(D)``).

    Used by tests to validate the clause-based evaluator against the textbook
    definition; exponential, so only for very small inputs.
    """
    domain = sorted(instance.active_domain, key=repr)
    idb = [
        sym
        for sym in program.idb_relations
        if sym.name != ADOM
    ]
    possible: list[Fact] = []
    for symbol in idb:
        for args in itertools.product(domain, repeat=symbol.arity):
            possible.append(Fact(symbol, args))
    count = 0
    for size in range(len(possible) + 1):
        for subset in itertools.combinations(possible, size):
            candidate = instance.with_facts(subset)
            if _satisfies_all_rules(program, candidate, instance):
                yield candidate
                count += 1
                if max_models is not None and count >= max_models:
                    return


def _satisfies_all_rules(
    program: DisjunctiveDatalogProgram, candidate: Instance, original: Instance
) -> bool:
    domain = sorted(original.active_domain, key=repr)
    for rule in program.rules:
        variables = sorted(rule.variables, key=str)
        for values in itertools.product(domain, repeat=len(variables)):
            assignment = dict(zip(variables, values))
            body_holds = True
            for atom in rule.body:
                relation, arguments = _ground_atom(atom, assignment)
                if relation.name == ADOM:
                    if arguments[0] not in original.active_domain:
                        body_holds = False
                        break
                elif arguments not in candidate.tuples(relation):
                    body_holds = False
                    break
            if not body_holds:
                continue
            head_holds = False
            for atom in rule.head:
                relation, arguments = _ground_atom(atom, assignment)
                if arguments in candidate.tuples(relation):
                    head_holds = True
                    break
            if not head_holds:
                return False
    return True
