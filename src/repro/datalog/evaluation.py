"""Certain-answer evaluation of disjunctive datalog programs.

``qΠ(D)`` consists of the tuples ``a`` over ``adom(D)`` such that ``goal(a)``
holds in *every* model of Π extending ``D`` (Section 3).  Because the
programs are negation-free it suffices to consider models whose domain is
``adom(D)``; :func:`evaluate` routes each program through the tiered
planner (:mod:`repro.planner`) — UCQ unfolding or semi-naive fixpoint for
disjunction-free programs, and otherwise grounding over the active domain
(exactly once per (program, instance) pair, via the join-planned grounder
of :mod:`repro.engine.grounder`) with every candidate tuple decided
against one persistent assumption-based solver (:mod:`repro.engine.sat`).

:func:`models` and :func:`_dpll` are intentionally naive reference
implementations of the textbook semantics; the randomized cross-validation
suite checks the engine against them.
"""

from __future__ import annotations

import itertools
from typing import Hashable, Iterable, Iterator, Sequence

from ..core.instance import Fact, Instance
from ..engine.grounder import Clause, GroundAtom, ground_program, instantiate_atom as _ground_atom
from ..engine.sat import solver_for_clauses
from ..planner.policy import _UNSET
from .ddlog import ADOM, DisjunctiveDatalogProgram

__all__ = [
    "Clause",
    "GroundAtom",
    "evaluate",
    "evaluate_boolean",
    "ground_clauses",
    "has_model_avoiding",
    "holds",
    "models",
]

Element = Hashable


def ground_clauses(
    program: DisjunctiveDatalogProgram, instance: Instance
) -> list[Clause]:
    """Ground the program over ``adom(D)``.

    Each returned clause is a pair (negative IDB atoms, positive IDB atoms);
    it is satisfied if some negative atom is false or some positive atom is
    true.  Rules whose EDB body part is not matched by the data produce no
    clause; the clause set is deduplicated and subsumption-reduced.
    """
    return ground_program(program, instance).clauses


def has_model_avoiding(
    program: DisjunctiveDatalogProgram,
    instance: Instance,
    avoided_goal_tuples: Iterable[tuple],
    clauses: list[Clause] | None = None,
) -> bool:
    """Is there a model of the program extending ``instance`` in which none of the
    given goal tuples holds?"""
    if clauses is None:
        return ground_program(program, instance).has_model_avoiding(
            avoided_goal_tuples
        )
    solver = solver_for_clauses(clauses)
    goal = program.goal_relation
    return solver.solve(
        false_atoms=[(goal, tuple(args)) for args in avoided_goal_tuples]
    )


def evaluate(
    program: DisjunctiveDatalogProgram,
    instance: Instance,
    policy=None,
    *,
    parallel=_UNSET,
    chunk_size=_UNSET,
    force_tier=_UNSET,
    semantic=_UNSET,
    semantic_budget=_UNSET,
) -> frozenset[tuple]:
    """The certain answers ``qΠ(D)`` of a DDlog program on an instance.

    Routed through the tiered planner (:mod:`repro.planner`): nonrecursive
    disjunction-free programs run as UCQs against the instance indexes,
    recursive disjunction-free programs as a semi-naive least fixpoint, and
    only genuinely disjunctive programs ground once and decide all
    ``domain ** arity`` candidates against the persistent solver.  Answers
    are identical for every tier.

    Every knob arrives through one frozen
    :class:`~repro.planner.PlanPolicy` (``policy=``); the individual
    keywords remain as deprecated aliases.  ``tier`` pins one tier (2 is
    always sound) for cross-validation and benchmarking, bypassing the
    semantic stage entirely.

    ``parallel`` affects only the ground+CDCL tier: with > 1 worker the
    candidate decisions are dispatched in chunks across a worker pool in
    which every worker replicates the ground program
    (:mod:`repro.engine.parallel`); ``"auto"`` sizes the pool from the
    planner's cost estimate.  Answers are identical for every worker count
    and chunk size.

    ``semantic`` / ``semantic_budget`` control the planner's semantic
    rewritability stage (:mod:`repro.planner.semantic`) for syntactic
    tier-2 programs.  The semantic analysis runs once per program object
    (cached on the program), so its one-off cost — typically well under a
    second, bounded by the budget's deadline — amortizes across repeated
    evaluations and serving sessions; for a genuinely single-shot query on
    a small instance where that up-front cost is not worth paying, pass
    ``PlanPolicy(semantic=False)``.
    """
    from ..planner import execute_plan, plan_program
    from ..planner.policy import resolve_policy

    policy = resolve_policy(
        policy,
        {
            "parallel": parallel,
            "chunk_size": chunk_size,
            "force_tier": force_tier,
            "semantic": semantic,
            "semantic_budget": semantic_budget,
        },
        where="evaluate",
    )
    plan = plan_program(program, policy)
    return execute_plan(
        plan, instance, parallel=policy.parallel, chunk_size=policy.chunk_size
    )


def evaluate_boolean(program: DisjunctiveDatalogProgram, instance: Instance) -> bool:
    """Evaluate a Boolean (0-ary) program: ``qΠ(D) = 1``?"""
    if program.arity != 0:
        raise ValueError("program is not Boolean")
    if not instance.active_domain:
        return False
    return ground_program(program, instance).holds(())


def holds(
    program: DisjunctiveDatalogProgram, instance: Instance, answer: Sequence = ()
) -> bool:
    """Does the tuple ``answer`` belong to ``qΠ(D)``?"""
    return ground_program(program, instance).holds(answer)


# ---------------------------------------------------------------------------
# Naive reference implementations (kept for cross-validation)
# ---------------------------------------------------------------------------


def _dpll(clauses: list[Clause], forced_false: set[GroundAtom]) -> bool:
    """Reference satisfiability check by restart-free recursive DPLL.

    Kept as an independent implementation for the cross-validation tests;
    the engine's watched-literal solver replaces it on all evaluation paths.
    """
    true_atoms: set[GroundAtom] = set()
    false_atoms: set[GroundAtom] = set(forced_false)

    def simplify(active: list[Clause]) -> tuple[list[Clause], bool]:
        changed = True
        current = active
        while changed:
            changed = False
            remaining: list[Clause] = []
            for negative, positive in current:
                if negative & false_atoms or positive & true_atoms:
                    continue  # clause already satisfied
                negative = negative - true_atoms
                positive = positive - false_atoms
                if not negative and not positive:
                    return [], False  # empty clause: conflict
                if not negative and len(positive) == 1:
                    atom = next(iter(positive))
                    if atom in false_atoms:
                        return [], False
                    true_atoms.add(atom)
                    changed = True
                    continue
                if not positive and len(negative) == 1:
                    atom = next(iter(negative))
                    if atom in true_atoms:
                        return [], False
                    false_atoms.add(atom)
                    changed = True
                    continue
                remaining.append((negative, positive))
            current = remaining
        return current, True

    def solve(active: list[Clause]) -> bool:
        nonlocal true_atoms, false_atoms
        simplified, consistent = simplify(active)
        if not consistent:
            return False
        if not simplified:
            return True
        negative, positive = simplified[0]
        atom = next(iter(positive)) if positive else next(iter(negative))
        saved_true, saved_false = set(true_atoms), set(false_atoms)
        false_atoms.add(atom)
        if solve(simplified):
            return True
        true_atoms, false_atoms = saved_true, saved_false
        true_atoms.add(atom)
        if solve(simplified):
            return True
        true_atoms, false_atoms = saved_true, saved_false
        return False

    return solve(clauses)


def models(
    program: DisjunctiveDatalogProgram,
    instance: Instance,
    max_models: int | None = None,
) -> Iterator[Instance]:
    """Enumerate models of the program extending the instance (over ``adom(D)``).

    Used by tests to validate the clause-based evaluator against the textbook
    definition; exponential, so only for very small inputs.
    """
    domain = sorted(instance.active_domain, key=repr)
    idb = [
        sym
        for sym in program.idb_relations
        if sym.name != ADOM
    ]
    possible: list[Fact] = []
    for symbol in idb:
        for args in itertools.product(domain, repeat=symbol.arity):
            possible.append(Fact(symbol, args))
    count = 0
    for size in range(len(possible) + 1):
        for subset in itertools.combinations(possible, size):
            candidate = instance.with_facts(subset)
            if _satisfies_all_rules(program, candidate, instance):
                yield candidate
                count += 1
                if max_models is not None and count >= max_models:
                    return


def _satisfies_all_rules(
    program: DisjunctiveDatalogProgram, candidate: Instance, original: Instance
) -> bool:
    domain = sorted(original.active_domain, key=repr)
    for rule in program.rules:
        variables = sorted(rule.variables, key=str)
        for values in itertools.product(domain, repeat=len(variables)):
            assignment = dict(zip(variables, values))
            body_holds = True
            for atom in rule.body:
                relation, arguments = _ground_atom(atom, assignment)
                if relation.name == ADOM:
                    if arguments[0] not in original.active_domain:
                        body_holds = False
                        break
                elif arguments not in candidate.tuples(relation):
                    body_holds = False
                    break
            if not body_holds:
                continue
            head_holds = False
            for atom in rule.head:
                relation, arguments = _ground_atom(atom, assignment)
                if arguments in candidate.tuples(relation):
                    head_holds = True
                    break
            if not head_holds:
                return False
    return True
