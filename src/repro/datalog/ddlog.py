"""Disjunctive datalog programs and their syntactic fragments (Section 3).

A DDlog rule has the form ``S1(x1) v ... v Sm(xm) <- R1(y1) & ... & Rn(yn)``
with every head variable occurring in the body.  A program has a selected
``goal`` relation not occurring in rule bodies.  The paper's fragments are
implemented as predicates over programs:

* **MDDlog** — all IDB relations except possibly ``goal`` are monadic;
* **simple** — each rule has at most one EDB atom, with pairwise distinct
  variables;
* **connected** — every rule body is connected;
* **unary / Boolean** — the goal relation is unary / nullary;
* **frontier-guarded** — every head atom has a body atom containing all of
  its variables.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from ..core.cq import Atom, Variable
from ..core.schema import RelationSymbol, Schema

GOAL = "goal"
ADOM = "adom"


@dataclass(frozen=True)
class Rule:
    """A disjunctive datalog rule ``head_1 v ... v head_m <- body_1 & ... & body_n``.

    An empty head denotes ``⊥`` (a constraint).  The body must be non-empty and
    contain every head variable.
    """

    head: tuple[Atom, ...]
    body: tuple[Atom, ...]

    def __post_init__(self) -> None:
        if not self.body:
            raise ValueError("rule bodies must be non-empty")
        body_vars = {v for atom in self.body for v in atom.variables}
        for atom in self.head:
            for variable in atom.variables:
                if variable not in body_vars:
                    raise ValueError(
                        f"head variable {variable} does not occur in the body"
                    )

    def __str__(self) -> str:
        head = " v ".join(str(a) for a in self.head) if self.head else "⊥"
        body = " & ".join(str(a) for a in self.body)
        return f"{head} <- {body}"

    @property
    def variables(self) -> frozenset[Variable]:
        result = {v for atom in self.body for v in atom.variables}
        result.update(v for atom in self.head for v in atom.variables)
        return frozenset(result)

    def is_constraint(self) -> bool:
        return not self.head

    def is_goal_rule(self) -> bool:
        return any(atom.relation.name == GOAL for atom in self.head)

    def is_disjunction_free(self) -> bool:
        return len(self.head) <= 1

    def is_connected(self) -> bool:
        """Connectedness of the co-occurrence graph on the rule's body variables."""
        variables = sorted({v for atom in self.body for v in atom.variables}, key=str)
        if len(variables) <= 1:
            return True
        parent = {v: v for v in variables}

        def find(x: Variable) -> Variable:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for atom in self.body:
            atom_vars = list(atom.variables)
            for other in atom_vars[1:]:
                root_a, root_b = find(atom_vars[0]), find(other)
                if root_a != root_b:
                    parent[root_a] = root_b
        roots = {find(v) for v in variables}
        return len(roots) == 1

    def is_frontier_guarded(self) -> bool:
        for head_atom in self.head:
            head_vars = set(head_atom.variables)
            if not any(
                head_vars <= set(body_atom.variables) for body_atom in self.body
            ):
                return False
        return True

    def is_guarded(self) -> bool:
        all_vars = {v for atom in self.body for v in atom.variables}
        return any(set(atom.variables) >= all_vars for atom in self.body)

    def size(self) -> int:
        return sum(2 + len(a.arguments) for a in itertools.chain(self.head, self.body))

    def substitute(self, mapping: Mapping) -> "Rule":
        return Rule(
            tuple(a.substitute(mapping) for a in self.head),
            tuple(a.substitute(mapping) for a in self.body),
        )


class DisjunctiveDatalogProgram:
    """A (negation-free) disjunctive datalog program with a selected goal relation.

    The goal relation may only occur in heads of *goal rules* (rules whose head
    is a single goal atom).  Relations occurring in some head are IDB; all
    others are EDB.  The ``adom`` relation is treated as a built-in IDB
    shorthand for active-domain membership (Section 3).
    """

    def __init__(
        self,
        rules: Iterable[Rule],
        goal_relation: RelationSymbol | None = None,
    ) -> None:
        self.rules: tuple[Rule, ...] = tuple(rules)
        goal_candidates = {
            atom.relation
            for rule in self.rules
            for atom in rule.head
            if atom.relation.name == GOAL
        }
        if goal_relation is None:
            if len(goal_candidates) > 1:
                raise ValueError("ambiguous goal relation arity")
            goal_relation = next(iter(goal_candidates), RelationSymbol(GOAL, 0))
        self.goal_relation = goal_relation
        self._validate()

    def _validate(self) -> None:
        for rule in self.rules:
            for atom in rule.body:
                if atom.relation.name == GOAL:
                    raise ValueError("the goal relation must not occur in rule bodies")
            if len(rule.head) != 1 and any(
                a.relation.name == GOAL for a in rule.head
            ):
                raise ValueError("goal rules must have a single head atom")

    # -- relations -------------------------------------------------------------

    @property
    def idb_relations(self) -> frozenset[RelationSymbol]:
        result = {atom.relation for rule in self.rules for atom in rule.head}
        result.add(self.goal_relation)
        result.add(RelationSymbol(ADOM, 1))
        return frozenset(result)

    @property
    def edb_relations(self) -> frozenset[RelationSymbol]:
        idb_names = {sym.name for sym in self.idb_relations}
        result = set()
        for rule in self.rules:
            for atom in itertools.chain(rule.head, rule.body):
                if atom.relation.name not in idb_names:
                    result.add(atom.relation)
        return frozenset(result)

    def edb_schema(self) -> Schema:
        return Schema(self.edb_relations)

    @property
    def arity(self) -> int:
        return self.goal_relation.arity

    def size(self) -> int:
        return sum(rule.size() for rule in self.rules)

    def __repr__(self) -> str:
        return "\n".join(str(rule) for rule in self.rules)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    # -- fragments (Section 3) ---------------------------------------------------

    def is_monadic(self) -> bool:
        """MDDlog: all IDB relations except goal (and adom) are monadic."""
        for symbol in self.idb_relations:
            if symbol.name in (GOAL, ADOM):
                continue
            if symbol.arity != 1:
                return False
        return True

    def is_disjunction_free(self) -> bool:
        return all(rule.is_disjunction_free() for rule in self.rules)

    def is_connected(self) -> bool:
        return all(rule.is_connected() for rule in self.rules)

    def is_simple(self) -> bool:
        """Each rule has at most one EDB atom, whose variables are pairwise distinct."""
        edb = self.edb_relations
        for rule in self.rules:
            edb_atoms = [a for a in rule.body if a.relation in edb]
            if len(edb_atoms) > 1:
                return False
            for atom in edb_atoms:
                if len(set(atom.arguments)) != len(atom.arguments):
                    return False
        return True

    def is_unary(self) -> bool:
        return self.goal_relation.arity == 1

    def is_boolean(self) -> bool:
        return self.goal_relation.arity == 0

    def is_frontier_guarded(self) -> bool:
        return all(rule.is_frontier_guarded() for rule in self.rules)

    def is_guarded(self) -> bool:
        return all(rule.is_guarded() for rule in self.rules)

    # -- helpers ------------------------------------------------------------------

    def with_rules(self, rules: Iterable[Rule]) -> "DisjunctiveDatalogProgram":
        return DisjunctiveDatalogProgram(
            list(self.rules) + list(rules), goal_relation=self.goal_relation
        )

    def goal_rules(self) -> list[Rule]:
        return [rule for rule in self.rules if rule.is_goal_rule()]

    def non_goal_rules(self) -> list[Rule]:
        return [rule for rule in self.rules if not rule.is_goal_rule()]


def goal_atom(*arguments) -> Atom:
    """Convenience constructor for goal atoms of the matching arity."""
    return Atom(RelationSymbol(GOAL, len(arguments)), tuple(arguments))


def adom_atom(argument) -> Atom:
    """The built-in ``adom(x)`` atom."""
    return Atom(RelationSymbol(ADOM, 1), (argument,))


def mddlog_program(rules: Iterable[Rule]) -> DisjunctiveDatalogProgram:
    """Build a program and assert that it is an MDDlog program."""
    program = DisjunctiveDatalogProgram(rules)
    if not program.is_monadic():
        raise ValueError("program is not monadic")
    return program
