"""Section 5 applications: query evaluation dichotomy, containment, rewritability.

Every application routes an ontology-mediated query through the
correspondences of Section 4 — atomic queries become (generalized, marked)
CSPs via Theorem 4.6, UCQs become MDDlog/MMSNP via Theorem 3.3 and
Proposition 4.1 — and then applies the CSP-side machinery:

* **dichotomy** (Theorems 5.1 / 5.3): classify the data complexity of an OMQ
  as PTIME or coNP-hard via the algebraic criterion on its CSP templates;
* **containment** (Theorems 5.6 / 5.7): decide ``Q1 ⊆ Q2`` via homomorphisms
  between templates (atomic queries) or via bounded counterexample search
  plus the MMSNP route (UCQs);
* **FO-/datalog-rewritability** (Theorems 5.15 / 5.16): decide rewritability
  via finite duality and bounded width of the templates, and construct
  concrete UCQ / datalog rewritings.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.homomorphism import marked_homomorphism_exists
from ..core.instance import Instance
from ..core.schema import Schema
from ..core.structures import all_instances_over
from ..csp.dichotomy import PTIME, TemplateClassification, classify_template
from ..csp.rewritability import (
    cocsp_datalog_rewritable,
    cocsp_fo_rewritable,
    generalized_datalog_rewritable,
    generalized_fo_rewritable,
)
from ..csp.template import prune_to_incomparable
from ..omq.query import OntologyMediatedQuery
from ..planner.policy import _UNSET
from ..translations.csp_templates import CspEncoding, omq_to_csp


# ---------------------------------------------------------------------------
# Data-complexity classification (Theorems 5.1 and 5.3)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OmqComplexityReport:
    """Data-complexity classification of an ontology-mediated query."""

    complexity: str
    template_reports: tuple[TemplateClassification, ...]
    fo_rewritable: bool
    datalog_rewritable: bool

    def is_tractable(self) -> bool:
        return self.complexity == PTIME


def classify_omq(omq: OntologyMediatedQuery) -> OmqComplexityReport:
    """Classify the data complexity of an (ALC(H)(U), AQ/BAQ) query.

    The query's CSP templates (Theorem 4.6) are classified algebraically; the
    query evaluation problem is in PTIME iff every template CSP is, and
    coNP-hard as soon as one template CSP is NP-hard (evaluation is the
    complement of the CSP).
    """
    encoding = omq_to_csp(omq)
    templates = _all_template_instances(encoding)
    reports = tuple(classify_template(t) for t in templates)
    complexity = PTIME if all(r.complexity == PTIME for r in reports) else "coNP-hard"
    return OmqComplexityReport(
        complexity=complexity,
        template_reports=reports,
        fo_rewritable=omq_fo_rewritable(omq, encoding),
        datalog_rewritable=omq_datalog_rewritable(omq, encoding),
    )


def _all_template_instances(encoding: CspEncoding) -> list[Instance]:
    if encoding.boolean:
        return list(encoding.templates)
    from ..csp.rewritability import marked_template_expansion

    return [marked_template_expansion(t) for t in encoding.marked_templates]


# ---------------------------------------------------------------------------
# Rewritability (Theorems 5.15 and 5.16)
# ---------------------------------------------------------------------------


def omq_fo_rewritable(
    omq: OntologyMediatedQuery, encoding: CspEncoding | None = None
) -> bool:
    """Is the (ALC(H)(U), AQ/BAQ) query FO-rewritable?  (Theorem 5.16.)"""
    encoding = encoding if encoding is not None else omq_to_csp(omq)
    if encoding.boolean:
        pruned = prune_to_incomparable(list(encoding.templates))
        return all(cocsp_fo_rewritable(t) for t in pruned)
    return generalized_fo_rewritable(list(encoding.marked_templates))


def omq_datalog_rewritable(
    omq: OntologyMediatedQuery, encoding: CspEncoding | None = None
) -> bool:
    """Is the (ALC(H)(U), AQ/BAQ) query datalog-rewritable?  (Theorem 5.16.)"""
    encoding = encoding if encoding is not None else omq_to_csp(omq)
    if encoding.boolean:
        pruned = prune_to_incomparable(list(encoding.templates))
        return all(cocsp_datalog_rewritable(t) for t in pruned)
    return generalized_datalog_rewritable(list(encoding.marked_templates))


# ---------------------------------------------------------------------------
# Query containment (Theorems 5.6 and 5.7)
# ---------------------------------------------------------------------------


def atomic_omq_contained_in(
    first: OntologyMediatedQuery, second: OntologyMediatedQuery
) -> bool:
    """Containment for atomic-query OMQs over the same data schema, decided via
    homomorphisms between their CSP templates (the NEXPTIME procedure behind
    Theorem 5.7: answers of coCSP(F) ⊆ answers of coCSP(F') iff every template
    of F' maps into some template of F ... oriented for the complement)."""
    if first.data_schema != second.data_schema:
        raise ValueError("containment requires a common data schema")
    first_encoding = omq_to_csp(first)
    second_encoding = omq_to_csp(second)
    if first_encoding.boolean != second_encoding.boolean:
        raise ValueError("queries must both be Boolean or both be unary")
    if first_encoding.boolean:
        # q1 ⊆ q2 iff every counter-witness for q2 is one for q1:
        # every template of F2 admits a homomorphism from ... — via the
        # homomorphism characterisation: coCSP(F1) ⊆ coCSP(F2) iff
        # ∀ B2 ∈ F2 ∃ B1 ∈ F1 with B2 → B1.
        from ..core.homomorphism import has_homomorphism

        return all(
            any(has_homomorphism(b2, b1) for b1 in first_encoding.templates)
            for b2 in second_encoding.templates
        )
    return all(
        any(
            marked_homomorphism_exists(b2, b1)
            for b1 in first_encoding.marked_templates
        )
        for b2 in second_encoding.marked_templates
    )


def omq_contained_in_bounded(
    first: OntologyMediatedQuery,
    second: OntologyMediatedQuery,
    max_elements: int = 2,
    max_facts: int = 3,
    engine: str = "auto",
) -> bool:
    """Bounded-counterexample containment check for arbitrary OMQs.

    Enumerates data instances over the common schema up to the given size and
    verifies ``cert_{q1,O1}(D) ⊆ cert_{q2,O2}(D)`` on each.  This is the
    sound-but-bounded companion to the decidability statement of Theorem 5.6
    (whose exact procedure goes through MMSNP containment); a returned
    counterexample is always genuine.
    """
    schema = first.data_schema
    domain = [f"e{i}" for i in range(max_elements)]
    for data in all_instances_over(schema, domain, max_facts):
        if data.is_empty():
            continue
        left = first.certain_answers(data, engine=engine)
        right = second.certain_answers(data, engine=engine)
        if not left <= right:
            return False
    return True


def containment_counterexample(
    first: OntologyMediatedQuery,
    second: OntologyMediatedQuery,
    max_elements: int = 2,
    max_facts: int = 3,
    engine: str = "auto",
):
    """A witness instance (and tuple) showing non-containment, if one exists
    within the bound."""
    schema = first.data_schema
    domain = [f"e{i}" for i in range(max_elements)]
    for data in all_instances_over(schema, domain, max_facts):
        if data.is_empty():
            continue
        left = first.certain_answers(data, engine=engine)
        right = second.certain_answers(data, engine=engine)
        extra = left - right
        if extra:
            return data, sorted(extra)[0]
    return None


# ---------------------------------------------------------------------------
# Schema-free OMQs (Section 6)
# ---------------------------------------------------------------------------


def schema_free_variant(omq: OntologyMediatedQuery) -> OntologyMediatedQuery:
    """The schema-free version of an OMQ (Section 6): the data may use any
    relation symbol; decision problems reduce to the fixed-schema query over
    ``sig(O) ∪ sig(q)``, which is how all Section 6 upper bounds are proved."""
    return OntologyMediatedQuery(
        ontology=omq.ontology,
        query=omq.query,
        data_schema=None,
        schema_free=True,
    )


def schema_free_equivalent_fixed_schema(
    omq: OntologyMediatedQuery,
) -> OntologyMediatedQuery:
    """The fixed-schema query over ``sig(O) ∪ sig(q)`` that a schema-free query
    behaves like (the observation opening Section 6)."""
    return OntologyMediatedQuery(
        ontology=omq.ontology, query=omq.query, data_schema=None, schema_free=False
    )


def restrict_to_schema(instance: Instance, schema: Schema) -> Instance:
    """Drop facts outside the schema — how schema-free answering reduces to the
    fixed-schema case for ontologies that cannot see the extra symbols."""
    return instance.restrict_to_schema(schema)


# ---------------------------------------------------------------------------
# Serving (repro.service)
# ---------------------------------------------------------------------------


def serve_omq_workload(
    workload,
    initial_instance: Instance | None = None,
    shards: int = 1,
    policy=None,
    *,
    semantic=_UNSET,
    semantic_budget=_UNSET,
):
    """Compile an OMQ workload into a live serving session.

    ``workload`` is one OMQ (or DDlog program) or a mapping of query names
    to them; the result is an :class:`repro.service.session.ObdaSession`
    whose certain answers are maintained incrementally under
    ``insert_facts`` / ``delete_facts``.  Each compiled query is routed by
    the tiered planner (:mod:`repro.planner`) to its cheapest sound
    serving state — stateless UCQ evaluation, DRed-maintained fixpoint, or
    the guarded CDCL solver; ``session.explain()`` reports the decisions.
    With ``shards`` > 1 the fact stream is consistent-hash-partitioned
    across that many per-shard sessions
    (:class:`repro.service.shards.ShardedObdaSession`; requires shardable —
    connected, constant-free — programs) and per-shard certain answers are
    merged.  This is the deployment-facing entry point tying Section 5's
    one-shot applications to the streaming serving layer.

    ``policy`` is the unified :class:`~repro.planner.PlanPolicy` (forced
    tier, semantic stage, adaptive re-planning, unfolding caps); the
    ``semantic=`` / ``semantic_budget=`` keywords remain as deprecated
    aliases.
    """
    from ..planner.policy import resolve_policy

    policy = resolve_policy(
        policy,
        {"semantic": semantic, "semantic_budget": semantic_budget},
        where="serve_omq_workload",
    )
    initial = () if initial_instance is None else initial_instance.facts
    if shards > 1:
        from ..service.shards import ShardedObdaSession

        return ShardedObdaSession(
            workload, shards=shards, initial_facts=initial, policy=policy
        )
    from ..service.session import ObdaSession

    return ObdaSession(workload, initial_facts=initial, policy=policy)


def serve_frontend_workload(
    workload,
    initial_instance: Instance | None = None,
    shards: int = 1,
    policy=None,
    *,
    tenants=(),
    config=None,
    faults=None,
):
    """Serve an OMQ workload through the multi-tenant asyncio frontend.

    Compiles the workload into a session exactly as
    :func:`serve_omq_workload` (including ``shards`` > 1) and wraps it in
    a :class:`repro.service.frontend.Frontend` whose *default group*
    serves that session: tenants share the compiled programs, writes are
    group-committed, reads run against versioned snapshots, and admission
    control sheds tier-2 tenants first.  ``tenants`` is an iterable of
    names or ``(name, tier)`` pairs registered up front (a single
    ``"tenant-0"`` at tier 1 when empty); ``config`` is a
    :class:`~repro.service.frontend.FrontendConfig`, ``faults`` an
    optional :class:`~repro.service.frontend.FaultInjector` for harness
    runs.  The returned frontend's async API (``query`` / ``insert`` /
    ``delete`` / ``drain`` / ``close``) must be driven from one event
    loop.
    """
    from ..service.frontend import Frontend

    session = serve_omq_workload(
        workload, initial_instance=initial_instance, shards=shards, policy=policy
    )
    frontend = Frontend(
        session=session, policy=policy, config=config, faults=faults
    )
    entries = list(tenants) or ["tenant-0"]
    for entry in entries:
        if isinstance(entry, str):
            frontend.register_tenant(entry)
        else:
            name, tier = entry
            frontend.register_tenant(name, tier=tier)
    return frontend


def plan_omq_workload(workload, policy=None, *, semantic=_UNSET, semantic_budget=_UNSET) -> dict:
    """Plan a workload without serving it: query name -> :class:`QueryPlan`.

    Compiles each entry exactly as :func:`serve_omq_workload` would (OMQs
    through the Theorem 3.3 translation, DDlog programs as-is) and returns
    the planner's explainable routing decisions — which queries run as
    plain UCQs, which as datalog fixpoints, and which genuinely need the
    ground+CDCL engine; syntactic tier-2 programs additionally report the
    semantic rewritability verdict (:mod:`repro.planner.semantic`).  The
    runtime mirror of the Section 5 dichotomy.
    """
    from collections.abc import Mapping

    from ..planner import plan_workload
    from ..planner.policy import resolve_policy
    from ..service.session import DEFAULT_QUERY, _compile

    policy = resolve_policy(
        policy,
        {"semantic": semantic, "semantic_budget": semantic_budget},
        where="plan_omq_workload",
    )
    if not isinstance(workload, Mapping):
        workload = {DEFAULT_QUERY: workload}
    return plan_workload(
        {name: _compile(entry) for name, entry in workload.items()}, policy
    )
