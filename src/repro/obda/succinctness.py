"""Succinctness measurements (Theorems 3.5, 3.7 and 3.8).

The paper's succinctness results are asymptotic lower bounds; what a
reproduction can exhibit is the *growth shape* of the constructive
translations on parameterised query families:

* the (ALC, AQ) → MDDlog and (ALC, UCQ) → MDDlog translations of Theorems 3.3
  and 3.4 are exponential in the ontology because the target program guesses
  subsets of ``sub(O)`` (Theorem 3.5 says this is unavoidable unless
  EXPTIME ⊆ coNP/poly);
* the inverse-role elimination of Theorem 3.6 is exponential in the query;
* the (ALCI, UCQ) vs inverse-free succinctness gap of Theorem 3.7 is measured
  on the counting workload (:mod:`repro.workloads.counting`).

This module provides the measurement harness shared by the succinctness
benchmarks: parameterised families of ontology-mediated queries, curve
recording, and a simple growth-shape classifier used by the assertions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from ..core.cq import atomic_query
from ..dl.concepts import ConceptName, Exists, Role
from ..dl.ontology import ConceptInclusion, Ontology
from ..dl.rewritings import eliminate_inverse_roles
from ..omq.query import OntologyMediatedQuery
from ..translations.alc_aq_mddlog import alc_aq_to_mddlog
from ..translations.alc_ucq_mddlog import alc_ucq_to_mddlog


@dataclass(frozen=True)
class SuccinctnessPoint:
    """One point of a translation-blowup curve."""

    parameter: int
    source_size: int
    target_size: int

    @property
    def ratio(self) -> float:
        return self.target_size / max(self.source_size, 1)


def translation_curve(
    family: Callable[[int], OntologyMediatedQuery],
    translate: Callable[[OntologyMediatedQuery], object],
    parameters: Iterable[int],
) -> list[SuccinctnessPoint]:
    """Measure source vs target sizes of a translation along a query family."""
    points = []
    for parameter in parameters:
        omq = family(parameter)
        target = translate(omq)
        points.append(
            SuccinctnessPoint(
                parameter=parameter,
                source_size=omq.size(),
                target_size=target.size(),
            )
        )
    return points


def classify_growth(points: Sequence[SuccinctnessPoint]) -> str:
    """A coarse growth-shape label for a curve: ``exponential`` when the target
    size multiplies by an (at least) roughly constant factor per step,
    ``polynomial`` otherwise.  Used only for reporting and shape assertions."""
    if len(points) < 3:
        return "insufficient-data"
    ratios = [
        points[i + 1].target_size / max(points[i].target_size, 1)
        for i in range(len(points) - 1)
    ]
    geometric_mean = math.exp(sum(math.log(max(r, 1e-9)) for r in ratios) / len(ratios))
    return "exponential" if geometric_mean >= 1.5 else "polynomial"


# ---------------------------------------------------------------------------
# Query families driving the blowup measurements
# ---------------------------------------------------------------------------


def disjunctive_cover_family(i: int) -> OntologyMediatedQuery:
    """An (ALC, AQ) family with ``i`` independent binary choices.

    The ontology asserts ``⊤ ⊑ A_j ⊔ B_j`` for each ``j`` and derives the goal
    when all ``A_j`` hold; the ontology grows linearly in ``i`` while the
    type space (and hence the MDDlog program of Theorem 3.4) grows with the
    number of subsets of ``sub(O)`` — the Theorem 3.5 shape.
    """
    from ..dl.concepts import And, Top

    axioms = []
    conjuncts = []
    for j in range(i):
        a, b = ConceptName(f"A{j}"), ConceptName(f"B{j}")
        axioms.append(ConceptInclusion(Top(), a | b))
        conjuncts.append(a)
    chosen = conjuncts[0]
    for conjunct in conjuncts[1:]:
        chosen = And(chosen, conjunct)
    axioms.append(ConceptInclusion(chosen, ConceptName("Goal")))
    return OntologyMediatedQuery(
        ontology=Ontology(axioms), query=atomic_query("Goal")
    )


def role_chain_family(i: int) -> OntologyMediatedQuery:
    """An (ALC, AQ) family whose ontology chains ``i`` existential axioms."""
    role = Role("R")
    axioms = [
        ConceptInclusion(Exists(role, ConceptName(f"C{j}")), ConceptName(f"C{j + 1}"))
        for j in range(i)
    ]
    return OntologyMediatedQuery(
        ontology=Ontology(axioms), query=atomic_query(f"C{i}")
    )


def simple_mddlog_family(i: int):
    """A unary connected simple MDDlog family with ``i`` propagation rules,
    used to measure the *linear* reverse translation of Theorem 3.4 (2)."""
    from ..core.cq import Atom, Variable
    from ..core.schema import RelationSymbol
    from ..datalog.ddlog import DisjunctiveDatalogProgram, Rule, goal_atom

    x, y = Variable("x"), Variable("y")
    R = RelationSymbol("R", 2)
    rules = [
        Rule(
            (Atom(RelationSymbol(f"P{j + 1}", 1), (x,)),),
            (Atom(R, (x, y)), Atom(RelationSymbol(f"P{j}", 1), (y,))),
        )
        for j in range(i)
    ]
    rules.append(
        Rule((Atom(RelationSymbol("P0", 1), (x,)),), (Atom(RelationSymbol("A", 1), (x,)),))
    )
    rules.append(Rule((goal_atom(x),), (Atom(RelationSymbol(f"P{i}", 1), (x,)),)))
    return DisjunctiveDatalogProgram(rules)


def inverse_role_family(i: int) -> OntologyMediatedQuery:
    """An (ALCI, AQ) family used to measure the inverse-role elimination of
    Theorem 3.6: each axiom walks one step backwards along ``R``."""
    axioms = [
        ConceptInclusion(
            Exists(Role("R").inverted(), ConceptName(f"D{j}")), ConceptName(f"D{j + 1}")
        )
        for j in range(i)
    ]
    return OntologyMediatedQuery(
        ontology=Ontology(axioms), query=atomic_query(f"D{i}")
    )


def aq_to_mddlog_curve(parameters: Iterable[int]) -> list[SuccinctnessPoint]:
    """Theorem 3.4 / 3.5: size of the MDDlog program versus the (ALC, AQ) query."""
    return translation_curve(disjunctive_cover_family, alc_aq_to_mddlog, parameters)


def ucq_to_mddlog_curve(parameters: Iterable[int]) -> list[SuccinctnessPoint]:
    """Theorem 3.3: size of the MDDlog program versus the (ALC, UCQ) query."""
    return translation_curve(disjunctive_cover_family, alc_ucq_to_mddlog, parameters)


def mddlog_to_omq_curve(parameters: Iterable[int]) -> list[SuccinctnessPoint]:
    """Theorem 3.4 (2): the reverse translation MDDlog → (ALC, AQ) is linear —
    the control curve contrasting with the exponential forward direction."""
    from ..translations.alc_aq_mddlog import mddlog_to_alc_aq

    points = []
    for parameter in parameters:
        program = simple_mddlog_family(parameter)
        omq = mddlog_to_alc_aq(program)
        points.append(
            SuccinctnessPoint(
                parameter=parameter,
                source_size=program.size(),
                target_size=omq.size(),
            )
        )
    return points


def inverse_elimination_curve(parameters: Iterable[int]) -> list[SuccinctnessPoint]:
    """Theorem 3.6: size of the inverse-free ontology versus the ALCI original."""
    points = []
    for parameter in parameters:
        omq = inverse_role_family(parameter)
        rewritten, _query = eliminate_inverse_roles(omq.ontology)
        points.append(
            SuccinctnessPoint(
                parameter=parameter,
                source_size=omq.ontology.size(),
                target_size=rewritten.size(),
            )
        )
    return points
