"""Schema-free ontology-mediated queries (Section 6).

In the schema-free setting the data may use *any* relation symbol, so the
constructions that introduce fresh "working" symbols (template-element
concepts, goal markers) must be shielded from interference by the data.  The
paper's device is to replace a working concept name ``A_d`` by the compound
concept ``H_d = ∀R_d.A_d`` for a fresh role ``R_d``: whatever the data says
about ``R_d`` and ``A_d``, a model can always re-interpret ``H_d`` freely
(Fact 1 in the proof of Theorem 6.1).

This module implements:

* Theorem 6.1 — the schema-free (ALC, BAQ) query polynomially equivalent to a
  given CSP template;
* Theorem 6.2 — the reduction of fixed-schema query containment to schema-free
  query containment via emptiness axioms;
* Theorem 6.3 — the shielding transformation applied to an arbitrary ontology
  (replace selected concept names by ``∀R_G.G``), which is how the
  rewritability lower bounds are transferred to the schema-free case.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..core.cq import boolean_atomic_query
from ..core.instance import Instance
from ..core.schema import RelationSymbol, Schema
from ..dl.concepts import And, Bottom, Concept, ConceptName, Exists, Forall, Role, Top, big_or
from ..dl.ontology import Axiom, ConceptInclusion, Ontology
from ..omq.query import OntologyMediatedQuery


# ---------------------------------------------------------------------------
# Theorem 6.1: CSP templates as schema-free (ALC, BAQ) queries
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SchemaFreeCspEncoding:
    """The schema-free OMQ of Theorem 6.1 together with its bookkeeping."""

    omq: OntologyMediatedQuery
    template: Instance
    template_schema: Schema
    goal_concept: str

    def certain_via_template(self, data: Instance) -> bool:
        """Decide the schema-free Boolean query along Theorem 6.1's reduction.

        The query is certain iff a goal fact is asserted outright or the
        S-reduct of the data has no homomorphism into the template — a
        polynomial-time path through the engine's indexed homomorphism
        search, versus the exponential model search of the OMQ engines.
        """
        from ..core.homomorphism import has_homomorphism

        goal_symbol = RelationSymbol(self.goal_concept, 1)
        if data.tuples(goal_symbol):
            return True
        reduct = data.restrict_to_schema(self.template_schema)
        return not has_homomorphism(reduct, self.template)

    def reduces_like_template(self, data: Instance) -> bool:
        """The polynomial equivalence of Theorem 6.1 on a concrete instance:
        the schema-free query evaluates to 0 exactly when the S-reduct of the
        data (after the trivial pre-check for asserted goal facts) maps to the
        template."""
        goal_symbol = RelationSymbol(self.goal_concept, 1)
        if data.tuples(goal_symbol):
            return True
        answer = self.omq.certain_answers(data)
        return bool(answer == frozenset({()})) == self.certain_via_template(data)


def csp_to_schema_free_omq(template: Instance, goal_name: str = "A") -> SchemaFreeCspEncoding:
    """Theorem 6.1: a schema-free (ALC, BAQ) query polynomially equivalent to
    ``coCSP(B)``.

    The fixed-schema construction introduces one concept name per template
    element; here each such name is shielded as ``H_d = ∀R_d.A_d`` so that data
    mentioning ``A_d`` or ``R_d`` cannot constrain it.
    """
    elements = sorted(template.active_domain, key=repr)
    schema = template.schema
    goal = ConceptName(goal_name)
    shield: dict = {}
    for index, element in enumerate(elements):
        shield[element] = Forall(Role(f"R_elem_{index}"), ConceptName(f"A_elem_{index}"))

    axioms: list[ConceptInclusion] = [
        ConceptInclusion(Top(), big_or([shield[e] for e in elements]))
    ]
    for first, second in itertools.combinations(elements, 2):
        axioms.append(ConceptInclusion(And(shield[first], shield[second]), goal))
    for symbol in schema.concept_names:
        held = {t[0] for t in template.tuples(symbol)}
        for element in elements:
            if element not in held:
                axioms.append(
                    ConceptInclusion(And(shield[element], ConceptName(symbol.name)), goal)
                )
    for symbol in schema.role_names:
        pairs = template.tuples(symbol)
        role = Role(symbol.name)
        for source, target in itertools.product(elements, repeat=2):
            if (source, target) not in pairs:
                axioms.append(
                    ConceptInclusion(
                        And(shield[source], Exists(role, shield[target])), goal
                    )
                )
    omq = OntologyMediatedQuery(
        ontology=Ontology(axioms),
        query=boolean_atomic_query(goal_name),
        data_schema=None,
        schema_free=True,
    )
    return SchemaFreeCspEncoding(
        omq=omq, template=template, template_schema=schema, goal_concept=goal_name
    )


# ---------------------------------------------------------------------------
# Theorem 6.2: containment transfers to the schema-free case
# ---------------------------------------------------------------------------


def emptiness_axioms(symbols: "Schema | list[RelationSymbol]") -> list[ConceptInclusion]:
    """ALC axioms expressing that each given relation symbol is empty.

    Unary symbols become ``A ⊑ ⊥``; binary symbols become ``∃R.⊤ ⊑ ⊥``.  These
    are the sentences ``ϕ_{R=∅}`` used in the proof of Theorem 6.2.
    """
    axioms = []
    for symbol in symbols:
        if symbol.arity == 1:
            axioms.append(ConceptInclusion(ConceptName(symbol.name), Bottom()))
        elif symbol.arity == 2:
            axioms.append(ConceptInclusion(Exists(Role(symbol.name), Top()), Bottom()))
        else:
            raise ValueError("description logics only speak about unary/binary symbols")
    return axioms


def containment_to_schema_free(
    first: OntologyMediatedQuery, second: OntologyMediatedQuery
) -> tuple[OntologyMediatedQuery, OntologyMediatedQuery]:
    """Theorem 6.2: produce schema-free queries whose containment coincides
    with fixed-schema containment of the inputs.

    The second ontology is extended with emptiness axioms for every non-data
    symbol of the first query, so a schema-free counterexample can never use
    the first query's private symbols.
    """
    shared = first.data_schema
    private_first = [
        symbol
        for symbol in (first.ontology.signature() | first.ucq().schema())
        if symbol not in shared
    ]
    second_ontology = second.ontology.extended(emptiness_axioms(private_first))
    schema_free_first = OntologyMediatedQuery(
        ontology=first.ontology, query=first.query, data_schema=None, schema_free=True
    )
    schema_free_second = OntologyMediatedQuery(
        ontology=second_ontology, query=second.query, data_schema=None, schema_free=True
    )
    return schema_free_first, schema_free_second


# ---------------------------------------------------------------------------
# Theorem 6.3: shielding concept names for the schema-free lower bounds
# ---------------------------------------------------------------------------


def shield_concept_names(ontology: Ontology, names: "set[str] | list[str]") -> Ontology:
    """Replace every occurrence of each given concept name ``G`` by ``∀R_G.G``.

    This is the transformation used in the proofs of Theorems 6.1 and 6.3: the
    compound concept can take arbitrary values in some model extending any
    data instance, so the construction keeps working even when the data
    mentions ``G`` or ``R_G``.
    """
    shielded = {name: Forall(Role(f"R_{name}"), ConceptName(name)) for name in names}

    def rewrite(concept: Concept) -> Concept:
        if isinstance(concept, ConceptName) and concept.name in shielded:
            return shielded[concept.name]
        children = concept.children()
        if not children:
            return concept
        rewritten = [rewrite(child) for child in children]
        return _rebuild(concept, rewritten)

    axioms: list[Axiom] = []
    for axiom in ontology:
        if isinstance(axiom, ConceptInclusion):
            axioms.append(ConceptInclusion(rewrite(axiom.lhs), rewrite(axiom.rhs)))
        else:
            axioms.append(axiom)
    return Ontology(axioms)


def _rebuild(concept: Concept, children: list[Concept]) -> Concept:
    from ..dl.concepts import And as AndC
    from ..dl.concepts import Exists as ExistsC
    from ..dl.concepts import Forall as ForallC
    from ..dl.concepts import Not as NotC
    from ..dl.concepts import Or as OrC

    if isinstance(concept, NotC):
        return NotC(children[0])
    if isinstance(concept, AndC):
        return AndC(*children) if len(children) == 2 else AndC.of(*children)
    if isinstance(concept, OrC):
        return OrC(*children) if len(children) == 2 else OrC.of(*children)
    if isinstance(concept, ExistsC):
        return ExistsC(concept.role, children[0])
    if isinstance(concept, ForallC):
        return ForallC(concept.role, children[0])
    raise TypeError(f"unexpected compound concept {concept!r}")
