"""Telemetry exporters: Chrome trace-event JSON and a text summary tree.

:func:`chrome_trace` renders a :class:`~repro.obs.telemetry.Telemetry`
recorder as a Chrome trace-event document — the ``{"traceEvents": [...]}``
JSON format consumed by Perfetto (https://ui.perfetto.dev) and
``chrome://tracing``.  Spans become complete (``"ph": "X"``) events with
microsecond timestamps relative to the recorder's epoch, instant events
become ``"ph": "i"`` markers, and every counter is emitted as a final
``"ph": "C"`` sample so the totals are visible on the counter track.

:func:`validate_chrome_trace` is the schema check CI's nightly
``run_all.py --check-only`` applies to committed/exported traces — it
verifies the structural invariants Perfetto relies on (event phases,
numeric non-negative timestamps and durations, JSON-serializability)
without needing any external schema package.

:func:`text_summary` renders the span hierarchy as an indented,
time-annotated tree with the top counters appended — the quick look that
needs no trace viewer.
"""

from __future__ import annotations

import json
from pathlib import Path

from .telemetry import Telemetry

__all__ = [
    "chrome_trace",
    "text_summary",
    "validate_chrome_trace",
    "write_chrome_trace",
]

#: Phases this exporter emits (and the validator accepts).
_PHASES = frozenset({"X", "i", "C", "M"})

_PID = 1
_TID = 1


def _jsonable(value):
    """Coerce an attribute value into something JSON-serializable."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return repr(value)


def chrome_trace(telemetry: Telemetry, process_name: str = "repro") -> dict:
    """The recorder's spans, events and counters as a trace-event document."""
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": _TID,
            "ts": 0,
            "args": {"name": process_name},
        }
    ]
    last_ts = 0.0
    for span in telemetry.spans:
        ts = span.start_s * 1e6
        args = {"span_index": span.index}
        if span.parent is not None:
            args["parent_index"] = span.parent
        if span.attributes:
            args.update(
                {key: _jsonable(value) for key, value in span.attributes.items()}
            )
        if span.duration_s == 0.0 and not span.attributes:
            # a bare instant event: render as a marker, not a 0-width slice
            event = {
                "name": span.name,
                "ph": "i",
                "ts": ts,
                "pid": _PID,
                "tid": _TID,
                "s": "t",
                "args": args,
            }
            last_ts = max(last_ts, ts)
        else:
            duration = span.duration_s if span.duration_s is not None else 0.0
            event = {
                "name": span.name,
                "ph": "X",
                "ts": ts,
                "dur": duration * 1e6,
                "pid": _PID,
                "tid": _TID,
                "args": args,
            }
            last_ts = max(last_ts, ts + duration * 1e6)
        events.append(event)
    for name, value in sorted(telemetry.counters.items()):
        events.append(
            {
                "name": name,
                "ph": "C",
                "ts": last_ts,
                "pid": _PID,
                "tid": _TID,
                "args": {"value": value},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "exporter": "repro.obs",
            "spans": len(telemetry.spans),
            "counters": len(telemetry.counters),
            "histograms": {
                name: histogram.describe()
                for name, histogram in sorted(telemetry.histograms.items())
            },
        },
    }


def write_chrome_trace(telemetry: Telemetry, path, process_name: str = "repro") -> Path:
    """Serialize :func:`chrome_trace` to ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(chrome_trace(telemetry, process_name), handle, indent=1)
        handle.write("\n")
    return path


def validate_chrome_trace(document) -> list[str]:
    """Structural problems of a trace-event document (empty list = valid).

    Checks what Perfetto's JSON importer requires: a ``traceEvents`` array
    of objects, each with a string ``name``, a known ``ph`` phase, numeric
    non-negative ``ts`` (and ``dur`` for complete events), integer
    ``pid``/``tid``, and a JSON-serializable ``args`` mapping when present.
    """
    problems: list[str] = []
    if not isinstance(document, dict):
        return [f"trace document must be a JSON object, got {type(document).__name__}"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["trace document has no traceEvents array"]
    if not events:
        problems.append("traceEvents is empty")
    for position, event in enumerate(events):
        where = f"traceEvents[{position}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        name = event.get("name")
        if not isinstance(name, str) or not name:
            problems.append(f"{where}: missing or non-string name")
        phase = event.get("ph")
        if phase not in _PHASES:
            problems.append(f"{where}: unknown phase {phase!r}")
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
            problems.append(f"{where}: ts must be a non-negative number, got {ts!r}")
        if phase == "X":
            duration = event.get("dur")
            if (
                not isinstance(duration, (int, float))
                or isinstance(duration, bool)
                or duration < 0
            ):
                problems.append(
                    f"{where}: complete event needs a non-negative dur, got {duration!r}"
                )
        if phase == "C" and "value" not in event.get("args", {}):
            problems.append(f"{where}: counter event has no args.value")
        for field in ("pid", "tid"):
            ident = event.get(field)
            if not isinstance(ident, int) or isinstance(ident, bool):
                problems.append(f"{where}: {field} must be an integer, got {ident!r}")
        args = event.get("args")
        if args is not None:
            if not isinstance(args, dict):
                problems.append(f"{where}: args must be an object")
            else:
                try:
                    json.dumps(args)
                except (TypeError, ValueError) as error:
                    problems.append(f"{where}: args not JSON-serializable ({error})")
    return problems


def validate_trace_file(path) -> list[str]:
    """:func:`validate_chrome_trace` applied to a JSON file on disk."""
    path = Path(path)
    try:
        with open(path) as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        return [f"{path}: unreadable trace ({error})"]
    return [f"{path}: {problem}" for problem in validate_chrome_trace(document)]


# ---------------------------------------------------------------------------
# Text summary tree
# ---------------------------------------------------------------------------


def _format_seconds(seconds: float | None) -> str:
    if seconds is None:
        return "open"
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds * 1e6:.0f}µs"


def text_summary(telemetry: Telemetry, top: int = 20) -> str:
    """An indented span tree with durations, then the top counters.

    Sibling spans with the same name are *aggregated* (count × total
    time) so a 100-epoch stream reads as one line per span kind and
    level, not one line per epoch; attribute details are dropped in the
    aggregate.  Counters are sorted by value; histograms report
    ``count/mean/min/max``.
    """
    children: dict[int | None, list] = {}
    for span in telemetry.spans:
        children.setdefault(span.parent, []).append(span)

    lines: list[str] = ["spans:"]
    if not telemetry.spans:
        lines.append("  (none recorded)")

    def walk(parent: int | None, depth: int) -> None:
        spans = children.get(parent)
        if not spans:
            return
        groups: dict[str, list] = {}
        for span in spans:
            groups.setdefault(span.name, []).append(span)
        indent = "  " * (depth + 1)
        for name, group in groups.items():
            total = sum(s.duration_s or 0.0 for s in group)
            if len(group) == 1:
                lines.append(
                    f"{indent}{name}  {_format_seconds(group[0].duration_s)}"
                )
            else:
                lines.append(
                    f"{indent}{name}  ×{len(group)}  total {_format_seconds(total)}"
                    f"  mean {_format_seconds(total / len(group))}"
                )
            for span in group:
                walk(span.index, depth + 1)

    walk(None, 0)
    if telemetry.counters:
        lines.append("counters:")
        ranked = sorted(
            telemetry.counters.items(), key=lambda item: (-item[1], item[0])
        )
        for name, value in ranked[:top]:
            shown = int(value) if float(value).is_integer() else value
            lines.append(f"  {name} = {shown}")
        if len(ranked) > top:
            lines.append(f"  ... {len(ranked) - top} more")
    if telemetry.histograms:
        lines.append("histograms:")
        for name, histogram in sorted(telemetry.histograms.items()):
            lines.append(
                f"  {name}: n={histogram.count} mean={histogram.mean:.3g} "
                f"min={histogram.min:.3g} max={histogram.max:.3g}"
            )
    return "\n".join(lines)
