"""Structured runtime telemetry for the serving stack.

Public surface:

* :class:`~repro.obs.telemetry.Telemetry` — a recorder of hierarchical
  spans, counters and histograms;
* :func:`~repro.obs.telemetry.enabled` / :func:`~repro.obs.telemetry.install`
  / :func:`~repro.obs.telemetry.uninstall` — scope-based or process-wide
  activation (the default is *off*: instrumented code pays one attribute
  load per point);
* :func:`~repro.obs.telemetry.maybe_span` — coarse-scope span helper;
* exporters: :func:`~repro.obs.export.chrome_trace` /
  :func:`~repro.obs.export.write_chrome_trace` (Perfetto-loadable
  trace-event JSON), :func:`~repro.obs.export.text_summary`, and the
  :func:`~repro.obs.export.validate_chrome_trace` schema check CI runs
  against exported traces.

See ``docs/observability.md`` for the span/counter reference and the
rollup schema the adaptive re-planner consumes.
"""

from .export import (
    chrome_trace,
    text_summary,
    validate_chrome_trace,
    validate_trace_file,
    write_chrome_trace,
)
from .telemetry import (
    NOOP_SPAN,
    Histogram,
    Span,
    Telemetry,
    enabled,
    install,
    maybe_span,
    now,
    uninstall,
)

__all__ = [
    "NOOP_SPAN",
    "Histogram",
    "Span",
    "Telemetry",
    "chrome_trace",
    "enabled",
    "install",
    "maybe_span",
    "now",
    "text_summary",
    "uninstall",
    "validate_chrome_trace",
    "validate_trace_file",
    "write_chrome_trace",
]
