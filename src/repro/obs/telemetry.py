"""Structured runtime telemetry: hierarchical spans, counters, histograms.

A :class:`Telemetry` object is a per-run recorder.  Instrumented code never
holds one directly — it reads the module-level :data:`ACTIVE` slot, which is
``None`` unless a recorder has been installed:

* **hot loops** (join steps, fixpoint rounds, solver calls) hoist
  ``tel = telemetry.ACTIVE`` once and guard each record with
  ``if tel is not None`` — the disabled path costs exactly one module
  attribute load per instrumentation point, which is what keeps the fully
  instrumented engine within noise of the uninstrumented one;
* **coarse scopes** (an epoch, a grounding, a planner stage) use
  :func:`maybe_span`, which returns a shared no-op context manager while
  telemetry is disabled.

Spans are hierarchical: entering a span pushes it on the recorder's stack,
so spans opened inside it record it as their parent and the trace exporter
(:mod:`repro.obs.export`) can reconstruct the full tree.  Counters are
monotone numeric totals; histograms accumulate ``count/total/min/max`` per
metric name (enough for latency and size distributions without storing
samples).

Enable telemetry for a scope with :func:`enabled`::

    from repro.obs import enabled

    with enabled() as tel:
        session.insert_facts(batch)
        answers = session.certain_answers()
    print(tel.summary())

or install a recorder for the process lifetime with :func:`install`.
Recorders are deliberately not thread-safe: the engine is single-threaded
(parallelism is fork-based, and child processes start with telemetry
disabled because ``ACTIVE`` is re-imported, not inherited live).
"""

from __future__ import annotations

import math
import time
from collections import deque
from contextlib import contextmanager
from typing import Callable, Iterator

__all__ = [
    "ACTIVE",
    "Histogram",
    "Reservoir",
    "Span",
    "Telemetry",
    "enabled",
    "install",
    "maybe_span",
    "now",
    "uninstall",
]

#: The repo's one monotone clock.  Engine and serving code time intervals
#: through this alias (``_telemetry.now()``) instead of importing
#: ``time.perf_counter`` directly — ``tools/lint_invariants.py`` (RL001)
#: confines raw ``perf_counter`` references to this package and the
#: benchmark harness, so there is a single seam for faking time.
now: Callable[[], float] = time.perf_counter


class Histogram:
    """Streaming ``count/total/min/max`` accumulator for one metric."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def describe(self) -> dict[str, float | None]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }


class Reservoir:
    """Sliding-window sample store with nearest-rank quantile queries.

    :class:`Histogram` deliberately stores no samples, so it cannot answer
    p50/p99 — the figures the serving frontend reports per tenant.  A
    ``Reservoir`` keeps the most recent ``capacity`` observations in a
    bounded deque; :meth:`quantile` sorts on demand (queries are rare
    relative to observations).  Like the rest of this module it is not
    thread-safe, which is fine: the frontend is a single-threaded asyncio
    loop.
    """

    __slots__ = ("_samples",)

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 1:
            raise ValueError(f"Reservoir capacity must be >= 1, got {capacity}")
        self._samples: deque[float] = deque(maxlen=capacity)

    def __len__(self) -> int:
        return len(self._samples)

    def observe(self, value: float) -> None:
        self._samples.append(value)

    def quantile(self, q: float) -> float | None:
        """The nearest-rank ``q``-quantile of the window (None when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        index = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
        return ordered[index]

    def describe(self) -> dict[str, float | int | None]:
        return {
            "count": len(self._samples),
            "p50": self.quantile(0.5),
            "p99": self.quantile(0.99),
        }


class Span:
    """One recorded scope: name, wall-clock interval, attributes, parent.

    ``parent`` is the index of the enclosing span in
    :attr:`Telemetry.spans` (or ``None`` for a root), assigned at *open*
    time from the recorder's span stack — which is what gives the exporter
    a well-formed tree without the instrumentation threading context
    objects through every call.  ``duration_s`` is ``None`` while the span
    is still open.
    """

    __slots__ = ("name", "index", "parent", "start_s", "duration_s", "attributes")

    def __init__(self, name: str, index: int, parent: int | None, start_s: float) -> None:
        self.name = name
        self.index = index
        self.parent = parent
        self.start_s = start_s
        self.duration_s: float | None = None
        self.attributes: dict[str, object] | None = None

    def set(self, **attributes: object) -> None:
        """Attach attributes to the span (merged over earlier ones)."""
        if self.attributes is None:
            self.attributes = attributes
        else:
            self.attributes.update(attributes)

    def describe(self) -> dict[str, object]:
        info: dict[str, object] = {
            "name": self.name,
            "index": self.index,
            "parent": self.parent,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
        }
        if self.attributes:
            info["attributes"] = dict(self.attributes)
        return info


class _SpanHandle:
    """Context manager closing one span (and popping the recorder stack)."""

    __slots__ = ("_telemetry", "span")

    def __init__(self, telemetry: Telemetry, span: Span) -> None:
        self._telemetry = telemetry
        self.span = span

    def set(self, **attributes: object) -> None:
        self.span.set(**attributes)

    def __enter__(self) -> "_SpanHandle":
        return self

    def __exit__(self, *exc: object) -> None:
        self._telemetry._close(self.span)


class _NoopSpan:
    """The shared disabled-path span: every operation is a no-op."""

    __slots__ = ()
    span: None = None

    def set(self, **attributes: object) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class Telemetry:
    """A telemetry recorder: span tree + typed counters + histograms.

    ``clock`` is injectable for tests; it must be monotone (the default is
    :func:`time.perf_counter`).  All span timestamps are relative to the
    recorder's own ``epoch_s`` (the clock reading at construction), so
    exported traces start at t=0.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self.epoch_s = clock()
        self.spans: list[Span] = []
        self.counters: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}
        self._stack: list[Span] = []

    # -- spans -----------------------------------------------------------------

    def span(self, name: str, **attributes: object) -> _SpanHandle:
        """Open a span; use as a context manager (closing pops the stack)."""
        parent = self._stack[-1].index if self._stack else None
        span = Span(name, len(self.spans), parent, self._clock() - self.epoch_s)
        if attributes:
            span.attributes = attributes
        self.spans.append(span)
        self._stack.append(span)
        return _SpanHandle(self, span)

    def _close(self, span: Span) -> None:
        span.duration_s = self._clock() - self.epoch_s - span.start_s
        # Tolerate mis-nested closes (an exception unwound past an open
        # child): pop through to the closing span so the stack never leaks.
        while self._stack:
            if self._stack.pop() is span:
                break

    def event(self, name: str, **attributes: object) -> None:
        """Record an instant event: a zero-duration span at the current time."""
        parent = self._stack[-1].index if self._stack else None
        span = Span(name, len(self.spans), parent, self._clock() - self.epoch_s)
        span.duration_s = 0.0
        if attributes:
            span.attributes = attributes
        self.spans.append(span)

    @property
    def open_spans(self) -> int:
        return len(self._stack)

    # -- counters and histograms -----------------------------------------------

    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` to the monotone counter ``name``."""
        counters = self.counters
        counters[name] = counters.get(name, 0) + value

    def record(self, name: str, value: float) -> None:
        """Record one observation into the histogram ``name``."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.observe(value)

    # -- views -----------------------------------------------------------------

    def counter(self, name: str) -> float:
        return self.counters.get(name, 0)

    def describe(self) -> dict[str, object]:
        """A JSON-able dump of everything recorded so far."""
        return {
            "spans": [span.describe() for span in self.spans],
            "counters": dict(sorted(self.counters.items())),
            "histograms": {
                name: histogram.describe()
                for name, histogram in sorted(self.histograms.items())
            },
        }

    def summary(self, top: int = 20) -> str:
        """The time-annotated span tree plus top counters (see exporter)."""
        from .export import text_summary

        return text_summary(self, top=top)

    def chrome_trace(self) -> dict[str, object]:
        """The Chrome trace-event document (see exporter)."""
        from .export import chrome_trace

        return chrome_trace(self)


#: The installed recorder, or ``None`` while telemetry is disabled.  Hot
#: paths read this exactly once per instrumentation point.
ACTIVE: Telemetry | None = None


def install(telemetry: Telemetry | None = None) -> Telemetry:
    """Install (and return) a recorder as the process-wide :data:`ACTIVE`."""
    global ACTIVE
    if telemetry is None:
        telemetry = Telemetry()
    ACTIVE = telemetry
    return telemetry


def uninstall() -> None:
    """Disable telemetry (restore the one-attribute-load no-op path)."""
    global ACTIVE
    ACTIVE = None


@contextmanager
def enabled(telemetry: Telemetry | None = None) -> Iterator[Telemetry]:
    """Enable telemetry for a ``with`` scope, restoring the previous state.

    Yields the recorder, so the scope's spans/counters can be exported
    after the block::

        with enabled() as tel:
            session.certain_answers()
        trace = tel.chrome_trace()
    """
    global ACTIVE
    previous = ACTIVE
    recorder = telemetry if telemetry is not None else Telemetry()
    ACTIVE = recorder
    try:
        yield recorder
    finally:
        ACTIVE = previous


def maybe_span(name: str, **attributes: object) -> "_SpanHandle | _NoopSpan":
    """A span on the active recorder, or the shared no-op when disabled.

    The disabled cost is one module attribute load, a comparison and the
    (empty) context-manager protocol — use it for per-epoch / per-stage
    scopes; inner loops should hoist ``tel = ACTIVE`` themselves.
    """
    tel = ACTIVE
    if tel is None:
        return NOOP_SPAN
    return tel.span(name, **attributes)
