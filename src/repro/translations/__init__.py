"""The paper's translation theorems as executable constructions."""

from .alc_aq_mddlog import alc_aq_to_mddlog, mddlog_to_alc_aq
from .alc_ucq_mddlog import alc_ucq_to_mddlog, mddlog_to_alc_ucq
from .csp_templates import CspEncoding, csp_to_mddlog, csp_to_omq, marked_csp_to_omq, omq_to_csp
from .fpp_mddlog import fpp_to_mddlog, mddlog_to_fpp
from .frontier_gnfo import (
    FirstOrderOntologyMediatedQuery,
    frontier_ddlog_to_gnfo_omq,
    proposition_3_15_omq,
    proposition_3_15_schema,
    rule_to_gnfo_sentence,
)
from .gmsnp_frontier import (
    close_under_identification,
    frontier_ddlog_to_gmsnp,
    gmsnp_to_frontier_ddlog,
    gmsnp_to_mmsnp2,
    mmsnp2_to_gmsnp,
    mmsnp_as_gmsnp,
)
from .mmsnp_mddlog import mddlog_to_mmsnp, mmsnp_to_mddlog

__all__ = [
    "CspEncoding",
    "FirstOrderOntologyMediatedQuery",
    "alc_aq_to_mddlog",
    "alc_ucq_to_mddlog",
    "close_under_identification",
    "csp_to_mddlog",
    "csp_to_omq",
    "fpp_to_mddlog",
    "frontier_ddlog_to_gmsnp",
    "frontier_ddlog_to_gnfo_omq",
    "gmsnp_to_frontier_ddlog",
    "gmsnp_to_mmsnp2",
    "marked_csp_to_omq",
    "mddlog_to_alc_aq",
    "mddlog_to_alc_ucq",
    "mddlog_to_fpp",
    "mddlog_to_mmsnp",
    "mmsnp2_to_gmsnp",
    "mmsnp_as_gmsnp",
    "mmsnp_to_mddlog",
    "omq_to_csp",
    "proposition_3_15_omq",
    "proposition_3_15_schema",
    "rule_to_gnfo_sentence",
]
