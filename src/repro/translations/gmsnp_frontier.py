"""Theorem 4.2 and 4.3: GMSNP, frontier-guarded DDlog, and MMSNP2.

* **Theorem 4.2** — coGMSNP has the same expressive power as frontier-guarded
  disjunctive datalog.  Both directions mirror Proposition 4.1, except that the
  "guess" rules are guarded by schema atoms rather than ``adom``:
  ``X(z) ∨ X̄(z) ← R(u)`` for every schema relation ``R`` and every tuple ``z``
  of variables drawn from ``u``.
* **Theorem 4.3** — GMSNP has the same expressive power as MMSNP2 (monadic SO
  variables ranging over elements *and facts*).  The MMSNP2 → GMSNP direction
  introduces one SO variable per (monadic variable, schema relation) pair; the
  converse direction follows the paper's guard-selection construction and
  expects its input in the paper's normal form (heads guarded by schema atoms,
  implications closed under identification of FO variables) — helpers to put a
  formula into that shape are provided.
"""

from __future__ import annotations

import itertools

from ..core.cq import Atom, Variable
from ..core.schema import RelationSymbol
from ..datalog.ddlog import ADOM, DisjunctiveDatalogProgram, Rule, adom_atom, goal_atom
from ..mmsnp.formulas import (
    EqualityAtom,
    FactSOAtom,
    Implication,
    MMSNPFormula,
    SchemaAtom,
    SOAtom,
    SOVariable,
)
from ..mmsnp.normal_forms import substitute_implication
from .mmsnp_mddlog import _equality_substitution


# ---------------------------------------------------------------------------
# Theorem 4.2: GMSNP  <->  frontier-guarded DDlog
# ---------------------------------------------------------------------------


def gmsnp_to_frontier_ddlog(formula: MMSNPFormula) -> DisjunctiveDatalogProgram:
    """Translate a GMSNP formula into an equivalent frontier-guarded DDlog
    program (Theorem 4.2, first part)."""
    if formula.uses_fact_atoms():
        raise ValueError("GMSNP formulas do not use fact atoms; convert from MMSNP2 first")
    if not formula.is_gmsnp():
        raise ValueError("the formula is not guarded (GMSNP)")
    schema = formula.schema()
    free = formula.free_variables
    positives = {
        v: RelationSymbol(v.name, v.arity) for v in formula.so_variables
    }
    complements = {
        v: RelationSymbol(f"{v.name}__comp", v.arity) for v in formula.so_variables
    }
    rules: list[Rule] = []

    # Guess rules: X(z) ∨ X̄(z) ← R(u) with every variable of z drawn from u.
    for variable in formula.so_variables:
        for symbol in sorted(schema, key=lambda s: (s.name, s.arity)):
            guard_vars = tuple(Variable(f"u{i}") for i in range(symbol.arity))
            guard = Atom(symbol, guard_vars)
            for z in itertools.product(guard_vars, repeat=variable.arity):
                rules.append(
                    Rule(
                        (
                            Atom(positives[variable], z),
                            Atom(complements[variable], z),
                        ),
                        (guard,),
                    )
                )
        # Exclusivity: no tuple is in both X and its complement.
        z = tuple(Variable(f"z{i}") for i in range(variable.arity))
        rules.append(
            Rule((), (Atom(positives[variable], z), Atom(complements[variable], z)))
        )

    for implication in formula.implications:
        rules.extend(_implication_to_rules(implication, positives, complements, free))
    program = DisjunctiveDatalogProgram(rules)
    if not program.is_frontier_guarded():
        raise AssertionError("the produced program must be frontier-guarded")
    return program


def _implication_to_rules(implication, positives, complements, free) -> list[Rule]:
    """Shared with Proposition 4.1's proof, generalised to non-monadic SO atoms."""
    body: list[Atom] = []
    equalities: list[tuple[Variable, Variable]] = []
    for atom in implication.body:
        if isinstance(atom, SchemaAtom):
            body.append(Atom(atom.relation, atom.arguments))
        elif isinstance(atom, SOAtom):
            body.append(Atom(positives[atom.variable], atom.arguments))
        elif isinstance(atom, EqualityAtom):
            equalities.append((atom.left, atom.right))
        else:
            raise ValueError(f"unsupported body atom {atom!r}")
    for atom in implication.head:
        if not isinstance(atom, SOAtom):
            raise ValueError("GMSNP head atoms must be SO atoms")
        body.append(Atom(complements[atom.variable], atom.arguments))

    if not free:
        if equalities:
            substitution = _equality_substitution(equalities)
            body = [a.substitute(substitution) for a in body]
        if not body:
            body = [adom_atom(Variable("x"))]
        return [Rule((goal_atom(),), tuple(body))]

    substitution = _equality_substitution(equalities, restrict_to=set(free))
    goal_arguments = tuple(substitution.get(v, v) for v in free)
    body = [a.substitute(substitution) for a in body]
    bound = {v for atom in body for v in atom.variables}
    for variable in goal_arguments:
        if variable not in bound:
            body.append(adom_atom(variable))
            bound.add(variable)
    if not body:
        body = [adom_atom(goal_arguments[0])]
    return [Rule((goal_atom(*goal_arguments),), tuple(body))]


def frontier_ddlog_to_gmsnp(program: DisjunctiveDatalogProgram) -> MMSNPFormula:
    """Translate a frontier-guarded DDlog program into an equivalent GMSNP
    formula (Theorem 4.2, converse direction)."""
    if not program.is_frontier_guarded():
        raise ValueError("the program must be frontier-guarded")
    so_variables = {
        symbol.name: SOVariable(symbol.name, symbol.arity)
        for symbol in program.idb_relations
        if symbol.name not in ("goal", ADOM)
    }
    arity = program.arity
    free = tuple(Variable(f"y{i}") for i in range(arity))
    edb = program.edb_relations
    implications: list[Implication] = []

    def convert(atom: Atom):
        if atom.relation.name == ADOM:
            return None
        if atom.relation in edb or atom.relation.name not in so_variables:
            return SchemaAtom(atom.relation, atom.arguments)
        return SOAtom(so_variables[atom.relation.name], atom.arguments)

    for rule in program.non_goal_rules():
        body = [a for a in (convert(atom) for atom in rule.body) if a is not None]
        head = [SOAtom(so_variables[a.relation.name], a.arguments) for a in rule.head]
        implications.append(Implication(tuple(body), tuple(head)))
    for rule in program.goal_rules():
        goal_head = rule.head[0]
        substitution: dict[Variable, Variable] = {}
        equalities: list[EqualityAtom] = []
        for position, argument in enumerate(goal_head.arguments):
            if argument in substitution:
                equalities.append(EqualityAtom(free[position], substitution[argument]))
            else:
                substitution[argument] = free[position]
        body = []
        for atom in rule.body:
            converted = convert(atom)
            if converted is None:
                continue
            arguments = tuple(substitution.get(a, a) for a in converted.arguments)
            if isinstance(converted, SchemaAtom):
                body.append(SchemaAtom(converted.relation, arguments))
            else:
                body.append(SOAtom(converted.variable, arguments))
        body.extend(equalities)
        implications.append(Implication(tuple(body), ()))
    return MMSNPFormula(
        so_variables=tuple(so_variables.values()),
        implications=tuple(implications),
        free_variables=free,
    )


def mmsnp_as_gmsnp(formula: MMSNPFormula) -> MMSNPFormula:
    """Every MMSNP formula is (syntactically, after saturation) a GMSNP formula.

    The inclusion used in Theorem 4.2's second statement: head atoms of an
    MMSNP implication are monadic, so any body atom mentioning the head
    variable acts as a guard.  Implications whose head variable does not occur
    in the body at all are rejected (they are not well-formed MMSNP either).
    """
    if not formula.is_mmsnp():
        raise ValueError("expected a plain MMSNP formula")
    if not formula.is_gmsnp():
        raise ValueError(
            "the formula violates guardedness; apply saturate_free_variables first"
        )
    return formula


# ---------------------------------------------------------------------------
# Theorem 4.3: GMSNP  <->  MMSNP2
# ---------------------------------------------------------------------------


def mmsnp2_to_gmsnp(formula: MMSNPFormula) -> MMSNPFormula:
    """Theorem 4.3 (⊆): replace element atoms ``X(x)`` by ``X¹(x)`` and fact
    atoms ``X(R(x̄))`` by ``X^R(x̄)``."""
    if not formula.is_monadic():
        raise ValueError("MMSNP2 formulas have monadic SO variables")
    element_variables: dict[SOVariable, SOVariable] = {}
    fact_variables: dict[tuple[SOVariable, RelationSymbol], SOVariable] = {}

    def element_variable(variable: SOVariable) -> SOVariable:
        return element_variables.setdefault(
            variable, SOVariable(f"{variable.name}__elem", 1)
        )

    def fact_variable(variable: SOVariable, relation: RelationSymbol) -> SOVariable:
        key = (variable, relation)
        return fact_variables.setdefault(
            key, SOVariable(f"{variable.name}__{relation.name}", relation.arity)
        )

    def convert(atom):
        if isinstance(atom, SOAtom):
            return SOAtom(element_variable(atom.variable), atom.arguments)
        if isinstance(atom, FactSOAtom):
            return SOAtom(fact_variable(atom.variable, atom.relation), atom.arguments)
        return atom

    implications = [
        Implication(
            tuple(convert(a) for a in implication.body),
            tuple(convert(a) for a in implication.head),
        )
        for implication in formula.implications
    ]
    so_variables = tuple(element_variables.values()) + tuple(fact_variables.values())
    return MMSNPFormula(so_variables, implications, formula.free_variables)


def close_under_identification(formula: MMSNPFormula) -> MMSNPFormula:
    """Close the implications of a formula under identification of FO variables.

    This is the normal-form step used in the proof of Theorem 4.3 (GMSNP →
    MMSNP2): whenever two FO variables of an implication are identified, the
    resulting implication is added.  The closure is finite because each
    identification strictly decreases the number of distinct variables.
    """
    seen: set[str] = set()
    result: list[Implication] = []
    frontier = list(formula.implications)
    while frontier:
        implication = frontier.pop()
        key = str(implication)
        if key in seen:
            continue
        seen.add(key)
        result.append(implication)
        variables = sorted(implication.variables(), key=str)
        for first, second in itertools.combinations(variables, 2):
            frontier.append(substitute_implication(implication, {second: first}))
    return MMSNPFormula(formula.so_variables, tuple(result), formula.free_variables)


def gmsnp_to_mmsnp2(formula: MMSNPFormula) -> MMSNPFormula:
    """Theorem 4.3 (⊇): translate a GMSNP formula into an MMSNP2 formula.

    Follows the paper's construction on formulas in normal form: for every SO
    atom ``A = X(z)`` occurring in a head, a fresh monadic fact variable
    ``X_A`` is introduced together with a schema guard ``R_A(y_A)`` chosen from
    the body of the implication containing ``A``; head occurrences become
    ``X_A(R_A(y_A))`` and body occurrences of ``X`` are replaced by matching
    guarded fact atoms.  The input should be closed under identification of FO
    variables (:func:`close_under_identification`) for the translation to be
    exact on all instances.
    """
    if formula.uses_fact_atoms():
        raise ValueError("the formula is already an MMSNP2 formula")
    if not formula.is_gmsnp():
        raise ValueError("the formula is not guarded (GMSNP)")

    # Select one schema guard per head atom.
    head_entries: list[tuple[Implication, SOAtom, SchemaAtom]] = []
    for implication in formula.implications:
        for atom in implication.head:
            guard = _select_guard(implication, atom)
            head_entries.append((implication, atom, guard))

    fact_variable_of: dict[tuple[str, SOVariable], SOVariable] = {}

    def fact_variable(atom: SOAtom, guard: SchemaAtom) -> SOVariable:
        key = (f"{atom}|{guard}", atom.variable)
        label = f"{atom.variable.name}__f{len(fact_variable_of)}"
        return fact_variable_of.setdefault(key, SOVariable(label, 1))

    entry_index = [
        (atom, guard, fact_variable(atom, guard)) for (_imp, atom, guard) in head_entries
    ]

    implications: list[Implication] = []
    for implication in formula.implications:
        new_heads: list[FactSOAtom] = []
        guard_atoms: list[SchemaAtom] = []
        for atom in implication.head:
            guard = _select_guard(implication, atom)
            variable = fact_variable(atom, guard)
            new_heads.append(FactSOAtom(variable, guard.relation, guard.arguments))
            guard_atoms.append(guard)

        # Replace body occurrences of each SO variable by the disjunctionless
        # approximation: every body atom X(x̄) is replaced by the guarded fact
        # atoms of all head entries for X whose argument pattern matches under
        # a variable renaming.  Each choice yields one implication.
        body_so = [a for a in implication.body if isinstance(a, SOAtom)]
        other_body = [a for a in implication.body if not isinstance(a, SOAtom)]
        choices: list[list[FactSOAtom]] = [[]]
        for atom in body_so:
            replacements = _matching_replacements(atom, entry_index)
            if not replacements:
                # No head ever asserts this SO variable with a compatible
                # pattern, so the body can never be satisfied: drop the
                # implication (it is vacuously true).
                choices = []
                break
            choices = [
                existing + [replacement]
                for existing in choices
                for replacement in replacements
            ]
        for choice in choices:
            implications.append(
                Implication(
                    tuple(other_body) + tuple(choice),
                    tuple(new_heads),
                )
            )

    so_variables = tuple(dict.fromkeys(fact_variable_of.values()))
    return MMSNPFormula(so_variables, tuple(implications), formula.free_variables)


def _select_guard(implication: Implication, head_atom: SOAtom) -> SchemaAtom:
    head_vars = {a for a in head_atom.arguments if isinstance(a, Variable)}
    for atom in implication.body:
        if isinstance(atom, SchemaAtom) and head_vars <= set(atom.arguments):
            return atom
    raise ValueError(
        f"head atom {head_atom} has no schema guard in its implication body; "
        "normalise the formula first"
    )


_FRESH_GUARD_COUNTER = itertools.count()


def _matching_replacements(atom: SOAtom, entry_index) -> list[FactSOAtom]:
    """Fact atoms that can stand in for a body occurrence of an SO variable.

    Guard variables outside the head atom's arguments are renamed apart so they
    cannot capture variables of the implication being rewritten.
    """
    replacements = []
    for head_atom, guard, variable in entry_index:
        if head_atom.variable != atom.variable:
            continue
        renaming = _unify_arguments(head_atom.arguments, atom.arguments)
        if renaming is None:
            continue
        fresh: dict = {}
        arguments = []
        for argument in guard.arguments:
            if argument in renaming:
                arguments.append(renaming[argument])
            else:
                if argument not in fresh:
                    fresh[argument] = Variable(f"_g{next(_FRESH_GUARD_COUNTER)}")
                arguments.append(fresh[argument])
        replacements.append(FactSOAtom(variable, guard.relation, tuple(arguments)))
    return replacements


def _unify_arguments(pattern, arguments):
    """A variable renaming sending ``pattern`` onto ``arguments`` componentwise."""
    renaming: dict = {}
    for source, target in zip(pattern, arguments):
        if source in renaming and renaming[source] != target:
            return None
        renaming[source] = target
    return renaming
