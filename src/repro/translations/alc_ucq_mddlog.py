"""Theorem 3.3: (ALC, UCQ) ≡ MDDlog.

* :func:`alc_ucq_to_mddlog` — the exponential translation from an (ALC(H), UCQ)
  ontology-mediated query to an equivalent MDDlog program.  As in the paper's
  proof, the program guesses, for every data element, a label describing the
  forest extension around it — a good type together with the set of
  tree-shaped subqueries the attached tree satisfies — rejects incoherent
  guesses, and derives the goal whenever the guessed labels force a match of
  the UCQ.  The labels are exactly the pairs computed by
  :class:`repro.omq.forest.ForestAbstraction`; auxiliary monadic IDB
  predicates record which query concept names and tree requirements a label
  satisfies, which keeps the goal rules compact without leaving MDDlog.
* :func:`mddlog_to_alc_ucq` — the converse polynomial translation (Theorem 3.3
  (2)): IDB relations become concept names ``A`` with complements ``Ā``, the
  ontology forces each element into exactly one of the two, and the UCQ
  collects goal-rule bodies plus the complements of non-goal rules.
"""

from __future__ import annotations

import itertools

from ..core.cq import (
    Atom,
    ConjunctiveQuery,
    UnionOfConjunctiveQueries,
    Variable,
    as_ucq,
)
from ..core.schema import RelationSymbol, Schema
from ..datalog.ddlog import ADOM, DisjunctiveDatalogProgram, Rule, adom_atom, goal_atom
from ..dl.concepts import And, ConceptName, Not, Or, Role, Top
from ..dl.ontology import ConceptInclusion, Ontology
from ..omq.forest import ForestAbstraction, QuerySplit
from ..omq.query import OntologyMediatedQuery


def _label_predicate(index: int) -> RelationSymbol:
    return RelationSymbol(f"L{index}", 1)


def _name_predicate(name: str) -> RelationSymbol:
    return RelationSymbol(f"SatName_{name}", 1)


def _requirement_predicate(index: int) -> RelationSymbol:
    return RelationSymbol(f"SatReq_{index}", 1)


def alc_ucq_to_mddlog(omq: OntologyMediatedQuery) -> DisjunctiveDatalogProgram:
    """Translate an (ALC(H), UCQ) query into an equivalent MDDlog program."""
    ucq = omq.ucq()
    abstraction = ForestAbstraction(omq.ontology, ucq)
    system = abstraction.system
    labels = abstraction.labelled_types()
    predicates = {label: _label_predicate(i) for i, label in enumerate(labels)}
    data_schema = omq.data_schema
    relevant_names = sorted(
        {
            atom.relation.name
            for disjunct in ucq.disjuncts
            for atom in disjunct.atoms
            if atom.relation.arity == 1
            and ConceptName(atom.relation.name) in system.closure
        }
    )
    requirement_index = {req: i for i, req in enumerate(abstraction.requirements)}

    x, y = Variable("x"), Variable("y")
    rules: list[Rule] = []
    # One label per element.
    rules.append(
        Rule(tuple(Atom(predicates[l], (x,)) for l in labels), (adom_atom(x),))
    )
    # Asserted concept names must belong to the guessed type.
    for symbol in data_schema.concept_names:
        name = ConceptName(symbol.name)
        if name not in system.closure:
            continue
        for label in labels:
            if name not in label[0]:
                rules.append(
                    Rule((), (Atom(predicates[label], (x,)), Atom(symbol, (x,))))
                )
    # Role edges must connect compatible types.
    for symbol in data_schema.role_names:
        role = Role(symbol.name)
        for source, target in itertools.product(labels, repeat=2):
            if not system.compatible(source[0], target[0], role):
                rules.append(
                    Rule(
                        (),
                        (
                            Atom(predicates[source], (x,)),
                            Atom(symbol, (x, y)),
                            Atom(predicates[target], (y,)),
                        ),
                    )
                )
    # Auxiliary predicates: which labels satisfy which query names / requirements.
    for name in relevant_names:
        for label in labels:
            if ConceptName(name) in label[0]:
                rules.append(
                    Rule(
                        (Atom(_name_predicate(name), (x,)),),
                        (Atom(predicates[label], (x,)),),
                    )
                )
    for requirement, index in requirement_index.items():
        for label in labels:
            if requirement in label[1]:
                rules.append(
                    Rule(
                        (Atom(_requirement_predicate(index), (x,)),),
                        (Atom(predicates[label], (x,)),),
                    )
                )
    # Goal rules: one per split (and per sub-role choice for hierarchy atoms).
    arity = ucq.arity
    super_roles = {
        symbol.name: {
            r.name
            for r in omq.ontology.super_roles(Role(symbol.name))
            if not r.is_universal()
        }
        for symbol in data_schema.role_names
    }
    relevant_set = set(relevant_names)
    for index in range(len(ucq.disjuncts)):
        for split in abstraction.splits[index]:
            rules.extend(
                _goal_rules_for_split(
                    split, relevant_set, requirement_index, super_roles, arity
                )
            )
    return DisjunctiveDatalogProgram(rules)


def _goal_rules_for_split(
    split: QuerySplit,
    relevant_names: set[str],
    requirement_index: dict,
    super_roles: dict[str, set[str]],
    arity: int,
) -> list[Rule]:
    """Goal rules asserting that a particular split of a disjunct matches."""
    body: list[Atom] = []
    for name, variable in split.core_unary:
        if name in relevant_names:
            body.append(Atom(_name_predicate(name), (variable,)))
        else:
            body.append(Atom(RelationSymbol(name, 1), (variable,)))
    for anchor, requirement in split.attached:
        body.append(
            Atom(_requirement_predicate(requirement_index[requirement]), (anchor,))
        )
    for position, requirement in enumerate(split.floating):
        body.append(
            Atom(
                _requirement_predicate(requirement_index[requirement]),
                (Variable(f"__float{position}"),),
            )
        )
    # Role atoms between core variables: a super-role atom is witnessed by any
    # asserted sub-role edge, so emit one rule per choice of sub-role.
    role_options: list[list[Atom]] = []
    for name, source, target in split.core_binary:
        subs = [sub for sub, supers in super_roles.items() if name in supers] or [name]
        role_options.append(
            [Atom(RelationSymbol(sub, 2), (source, target)) for sub in subs]
        )
    answer_variables = split.disjunct.answer_variables
    head = (goal_atom(*answer_variables),) if arity else (goal_atom(),)

    rules: list[Rule] = []
    for combination in itertools.product(*role_options) if role_options else [()]:
        full_body = list(body) + list(combination)
        bound = {v for atom in full_body for v in atom.variables}
        for variable in split.core_variables | set(answer_variables):
            if variable not in bound:
                full_body.append(adom_atom(variable))
                bound.add(variable)
        if not full_body:
            full_body.append(adom_atom(Variable("x")))
        rules.append(Rule(head, tuple(full_body)))
    return rules


def mddlog_to_alc_ucq(program: DisjunctiveDatalogProgram) -> OntologyMediatedQuery:
    """Theorem 3.3 (2): translate an MDDlog program into an equivalent
    (ALC, UCQ) ontology-mediated query of linear size."""
    if not program.is_monadic():
        raise ValueError("the program must be an MDDlog program")
    edb = program.edb_relations
    idb_names = sorted(
        {
            symbol.name
            for symbol in program.idb_relations
            if symbol.arity == 1 and symbol.name not in ("goal", ADOM)
        }
    )
    domain_name = "Dom"
    axioms = [ConceptInclusion(Top(), ConceptName(domain_name))]
    for name in idb_names:
        positive = ConceptName(name)
        negative = ConceptName(f"{name}__comp")
        axioms.append(
            ConceptInclusion(
                Top(),
                And(Or(positive, negative), Not(And(positive, negative))),
            )
        )
    ontology = Ontology(axioms)

    arity = program.arity
    answer_variables = tuple(Variable(f"z{i}") for i in range(arity))
    disjuncts: list[ConjunctiveQuery] = []
    for rule in program.goal_rules():
        goal_head = rule.head[0]
        atoms = [_strip_adom(atom) for atom in rule.body]
        substitution = dict(zip(goal_head.arguments, answer_variables))
        atoms = [a.substitute(substitution) for a in atoms]
        atoms += [
            Atom(RelationSymbol(domain_name, 1), (v,)) for v in answer_variables
        ]
        disjuncts.append(ConjunctiveQuery(answer_variables, atoms))
    for rule in program.non_goal_rules():
        atoms = [_strip_adom(atom) for atom in rule.body]
        for head_atom in rule.head:
            atoms.append(
                Atom(
                    RelationSymbol(f"{head_atom.relation.name}__comp", 1),
                    head_atom.arguments,
                )
            )
        atoms += [
            Atom(RelationSymbol(domain_name, 1), (v,)) for v in answer_variables
        ]
        disjuncts.append(ConjunctiveQuery(answer_variables, atoms))
    query: "ConjunctiveQuery | UnionOfConjunctiveQueries"
    if disjuncts:
        query = UnionOfConjunctiveQueries(disjuncts)
    else:
        query = as_ucq(ConjunctiveQuery(answer_variables, []))
    return OntologyMediatedQuery(
        ontology=ontology, query=query, data_schema=Schema(edb)
    )


def _strip_adom(atom: Atom) -> Atom:
    """Replace ``adom(x)`` body atoms by ``Dom(x)`` atoms; keep everything else."""
    if atom.relation.name == ADOM:
        return Atom(RelationSymbol("Dom", 1), atom.arguments)
    return atom
