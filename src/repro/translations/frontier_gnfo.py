"""Theorem 3.17: frontier-guarded DDlog and ontologies in GFO / GNFO.

The paper shows that (GFO, UCQ) and (GNFO, UCQ) have the same expressive power
as frontier-guarded disjunctive datalog.  This module implements

* the *easy* direction constructively (Theorem 3.17 (2)): a frontier-guarded
  DDlog program is turned into an ontology-mediated query whose ontology is
  the set of non-goal rules read as GNFO sentences and whose query is the UCQ
  of goal-rule bodies;
* a first-order flavoured OMQ container (:class:`FirstOrderOntologyMediatedQuery`)
  with certain-answer semantics evaluated by bounded counter-model search, so
  the two sides of the theorem can be compared on concrete instances;
* the GFO ontology of Proposition 3.15 (the ternary-relation reachability
  query separating (GFO, UCQ) from MDDlog), built as explicit FO sentences.

The hard direction (GNFO, UCQ) → frontier-guarded DDlog goes through the
type-based construction of the appendix and is exponential even to write down;
its role in the reproduction is covered by the GMSNP route of Theorem 4.2
(:mod:`repro.translations.gmsnp_frontier`), which produces the same target
language from the logical side.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

from ..core.cq import Atom, ConjunctiveQuery, UnionOfConjunctiveQueries, Variable
from ..core.instance import Instance
from ..core.schema import RelationSymbol, Schema
from ..datalog.ddlog import ADOM, DisjunctiveDatalogProgram, Rule
from ..fo.formulas import Formula, RelationalAtom, conjunction, disjunction, forall
from ..fo.fragments import is_gfo, is_gnfo


# ---------------------------------------------------------------------------
# FO-ontology OMQs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FirstOrderOntologyMediatedQuery:
    """An ontology-mediated query whose ontology is a set of FO sentences.

    This is the (L, UCQ) shape for L ∈ {GFO, UNFO, GNFO}: the data schema, a
    tuple of FO sentences, and a UCQ over the joint signature.  Certain answers
    are evaluated by bounded counter-model search (every ``False`` verdict is a
    genuine counter-model; ``True`` verdicts are exhaustive relative to the
    ``extra_elements`` bound), which is sufficient for the instance families
    used in the tests and benchmarks.
    """

    data_schema: Schema
    sentences: tuple[Formula, ...]
    query: UnionOfConjunctiveQueries

    @property
    def arity(self) -> int:
        return self.query.arity

    def ontology_fragments(self) -> set[str]:
        """The FO fragments every ontology sentence belongs to."""
        fragments = {"GFO", "GNFO", "UNFO"}
        from ..fo.fragments import fragment_of

        for sentence in self.sentences:
            fragments &= fragment_of(sentence)
        return fragments

    def _signature(self) -> Schema:
        symbols = set(self.data_schema)
        for sentence in self.sentences:
            symbols |= sentence.relation_symbols()
        symbols |= set(self.query.schema())
        return Schema(symbols)

    def countermodel(
        self, instance: Instance, answer: Sequence = (), extra_elements: int = 0
    ) -> Instance | None:
        """A model of the sentences extending the data that falsifies ``q(answer)``.

        The search grounds the sentences and the negated query over the data
        domain (plus up to ``extra_elements`` fresh elements) and hands the
        propositional problem to :mod:`repro.fo.grounding`.
        """
        from ..fo.grounding import ground, ground_ucq, model_from_assignment, satisfying_assignment

        answer = tuple(answer)
        base_domain = sorted(instance.active_domain, key=repr)
        forced = {fact: True for fact in instance}
        for extra in range(extra_elements + 1):
            domain = base_domain + [f"__fresh{i}" for i in range(extra)]
            constraints = [ground(sentence, domain) for sentence in self.sentences]
            constraints.append(ground_ucq(self.query, domain, answer, positive=False))
            assignment = satisfying_assignment(constraints, forced)
            if assignment is not None:
                return model_from_assignment(assignment, instance)
        return None

    def certain_answers(
        self, instance: Instance, extra_elements: int = 0
    ) -> frozenset[tuple]:
        """Certain answers via bounded counter-model search."""
        domain = sorted(instance.active_domain, key=repr)
        if not domain:
            return frozenset()
        candidates = itertools.product(domain, repeat=self.arity)
        return frozenset(
            answer
            for answer in candidates
            if self.countermodel(instance, answer, extra_elements) is None
        )

    def is_certain(
        self, instance: Instance, answer: Sequence = (), extra_elements: int = 0
    ) -> bool:
        return self.countermodel(instance, tuple(answer), extra_elements) is None


# ---------------------------------------------------------------------------
# Frontier-guarded DDlog  ->  (GNFO, UCQ)
# ---------------------------------------------------------------------------


def _atom_to_fo(atom: Atom) -> RelationalAtom:
    return RelationalAtom(atom.relation, atom.arguments)


def rule_to_gnfo_sentence(rule: Rule) -> Formula:
    """A non-goal DDlog rule as the universally quantified implication it denotes."""
    body = conjunction([_atom_to_fo(atom) for atom in rule.body])
    if rule.head:
        head = disjunction([_atom_to_fo(atom) for atom in rule.head])
        matrix = body.implies(head)
    else:
        matrix = ~body
    variables = sorted(rule.variables, key=str)
    return forall(variables, matrix) if variables else matrix


def _goal_rule_to_cq(rule: Rule) -> ConjunctiveQuery:
    goal_head = rule.head[0]
    answers = tuple(goal_head.arguments)
    atoms = [atom for atom in rule.body if atom.relation.name != ADOM]
    if not atoms:
        atoms = list(rule.body)
    return ConjunctiveQuery(answers, atoms)


def frontier_ddlog_to_gnfo_omq(
    program: DisjunctiveDatalogProgram,
) -> FirstOrderOntologyMediatedQuery:
    """Theorem 3.17 (2): a frontier-guarded DDlog program as a (GNFO, UCQ) query.

    The ontology consists of the non-goal rules read as GNFO sentences; the
    query is the union of the goal-rule bodies.  The data schema is the
    program's EDB schema.
    """
    if not program.is_frontier_guarded():
        raise ValueError("the program must be frontier-guarded")
    if any(
        atom.relation.name == ADOM
        for rule in program.non_goal_rules()
        for atom in rule.body
    ):
        raise ValueError(
            "non-goal rules using the adom shorthand are not in GNFO shape; "
            "expand adom over the EDB relations first"
        )
    sentences = tuple(rule_to_gnfo_sentence(rule) for rule in program.non_goal_rules())
    for sentence in sentences:
        if not is_gnfo(sentence):
            raise AssertionError(f"produced sentence is not in GNFO: {sentence}")
    disjuncts = [_goal_rule_to_cq(rule) for rule in program.goal_rules()]
    if not disjuncts:
        raise ValueError("the program has no goal rules")
    return FirstOrderOntologyMediatedQuery(
        data_schema=program.edb_schema(),
        sentences=sentences,
        query=UnionOfConjunctiveQueries(disjuncts),
    )


# ---------------------------------------------------------------------------
# Proposition 3.15: a (GFO, UCQ) query not expressible in MDDlog
# ---------------------------------------------------------------------------


def proposition_3_15_schema() -> Schema:
    """Unary ``A``, ``B`` and ternary ``P`` — the schema of Proposition 3.15."""
    return Schema(
        [RelationSymbol("A", 1), RelationSymbol("B", 1), RelationSymbol("P", 3)]
    )


def proposition_3_15_omq() -> FirstOrderOntologyMediatedQuery:
    """The (GFO, UCQ) query of Proposition 3.15.

    The ontology propagates a reachability relation ``R`` along the ternary
    relation ``P`` starting from ``A``-elements and raises ``U`` when a
    ``B``-element is reached; the query asks for ``∃x U(x)``.
    """
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    A = RelationSymbol("A", 1)
    B = RelationSymbol("B", 1)
    P = RelationSymbol("P", 3)
    R = RelationSymbol("R", 2)
    U = RelationSymbol("U", 1)

    p_atom = RelationalAtom(P, (x, z, y))
    first = forall(
        [x, y, z],
        p_atom.implies(RelationalAtom(A, (x,)).implies(RelationalAtom(R, (z, x)))),
    )
    second = forall(
        [x, y, z],
        p_atom.implies(RelationalAtom(R, (z, x)).implies(RelationalAtom(R, (z, y)))),
    )
    third = forall(
        [x, y],
        RelationalAtom(R, (x, y)).implies(
            RelationalAtom(B, (y,)).implies(RelationalAtom(U, (y,)))
        ),
    )
    sentences = (first, second, third)
    for sentence in sentences:
        if not is_gfo(sentence):
            raise AssertionError(f"Proposition 3.15 sentence is not guarded: {sentence}")
    query = ConjunctiveQuery((), [Atom(U, (Variable("u"),))])
    return FirstOrderOntologyMediatedQuery(
        data_schema=proposition_3_15_schema(),
        sentences=sentences,
        query=UnionOfConjunctiveQueries([query]),
    )
