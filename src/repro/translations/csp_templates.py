"""Theorem 4.6: atomic-query OMQs, simple MDDlog, and (generalized) coCSPs.

The constructive heart of Section 4.2: from an ontology-mediated query with an
atomic (or Boolean atomic) query one builds CSP template(s) whose complement
defines the same query.  The template elements are the *good types* of the
ontology; a type carries a concept name iff the name belongs to it, and two
types are joined by a role iff they may label the endpoints of such an edge.
The four cases of Theorem 4.6 differ only in which types are kept and whether
a marked element is needed:

* (ALC, BAQ)  →  a single unmarked template (types not containing the query
  concept);
* (ALC, AQ)   →  a set of marked templates over one shared instance (one mark
  per query-free type);
* (ALCU, ...) →  generalized versions with several templates, one per globally
  coherent family of types (the universal role makes truth global).

The reverse direction (templates → OMQ / MDDlog) follows the constructions in
the same proof and in Theorem 6.1.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..core.cq import Atom, Variable, atomic_query, boolean_atomic_query
from ..core.instance import Fact, Instance, MarkedInstance
from ..core.schema import RelationSymbol, Schema
from ..datalog.ddlog import DisjunctiveDatalogProgram, Rule, adom_atom
from ..dl.concepts import And, Bottom, ConceptName, Exists, Role, Top, big_or
from ..dl.ontology import ConceptInclusion, Ontology
from ..dl.reasoner import TypeSystem
from ..omq.query import OntologyMediatedQuery


@dataclass(frozen=True)
class CspEncoding:
    """The CSP-side encoding of an atomic OMQ: templates plus bookkeeping."""

    schema: Schema
    templates: tuple[Instance, ...]
    marked_templates: tuple[MarkedInstance, ...]
    boolean: bool

    def as_cocsp_query(self):
        from ..csp.template import GeneralizedCoCspQuery, MarkedCoCspQuery

        if self.boolean:
            return GeneralizedCoCspQuery(self.templates)
        return MarkedCoCspQuery(self.marked_templates)


def _query_concept(omq: OntologyMediatedQuery) -> ConceptName:
    atom = next(iter(omq.ucq().disjuncts[0].atoms))
    if atom.relation.arity != 1:
        raise ValueError("Theorem 4.6 applies to atomic / Boolean atomic queries")
    return ConceptName(atom.relation.name)


def _type_template(
    system: TypeSystem,
    types: list,
    schema: Schema,
) -> Instance:
    """The canonical template B_T for a set of types (proof of Theorem 4.6)."""
    facts: list[Fact] = []
    for symbol in schema.concept_names:
        name = ConceptName(symbol.name)
        for t in types:
            if name in t:
                facts.append(Fact(symbol, (t,)))
    for symbol in schema.role_names:
        role = Role(symbol.name)
        for source, target in itertools.product(types, repeat=2):
            if system.compatible(source, target, role):
                facts.append(Fact(symbol, (source, target)))
    # Elements that carry no fact still belong to the template; add a marker so
    # the instance's active domain covers all types, then strip it.
    present = {a for fact in facts for a in fact.arguments}
    for t in types:
        if t not in present:
            # Isolated template elements cannot be the image of any data element
            # that occurs in a fact, so they can safely be dropped.
            continue
    return Instance(facts, schema=schema)


def omq_to_csp(omq: OntologyMediatedQuery) -> CspEncoding:
    """Theorem 4.6: encode an (ALC(H)(U), AQ/BAQ) query as (generalized,
    possibly marked) coCSP templates."""
    query_concept = _query_concept(omq)
    boolean = omq.is_boolean_atomic()
    if not boolean and not omq.is_atomic():
        raise ValueError("Theorem 4.6 applies to atomic / Boolean atomic queries")
    schema = omq.data_schema
    extra = [query_concept] + [ConceptName(s.name) for s in schema.concept_names]
    system = TypeSystem(omq.ontology, extra_concepts=extra)

    templates: list[Instance] = []
    marked: list[MarkedInstance] = []
    for family in system.globally_coherent_families():
        query_free = [t for t in family if query_concept not in t]
        if not query_free:
            continue
        if boolean:
            # Keep only types without the query concept: a homomorphism into the
            # template is a model in which the query concept is empty.
            template = _type_template(system, query_free, schema)
            templates.append(template)
        else:
            # Marked case: the template uses every type of the family; the marks
            # are the query-free types (the candidate answer must avoid A0).
            template = _type_template(system, list(family), schema)
            for t in query_free:
                if t in template.active_domain:
                    marked.append(MarkedInstance(template, (t,)))
    return CspEncoding(
        schema=schema,
        templates=tuple(templates),
        marked_templates=tuple(marked),
        boolean=boolean,
    )


# -- reverse directions -----------------------------------------------------------------


def csp_to_mddlog(template: Instance) -> DisjunctiveDatalogProgram:
    """coCSP(B) as a Boolean connected simple MDDlog program (Theorem 4.6 (4))."""
    elements = sorted(template.active_domain, key=repr)
    predicates = {e: RelationSymbol(f"P_{i}", 1) for i, e in enumerate(elements)}
    x, y = Variable("x"), Variable("y")
    rules: list[Rule] = [
        Rule(tuple(Atom(predicates[e], (x,)) for e in elements), (adom_atom(x),))
    ]
    for first, second in itertools.combinations(elements, 2):
        rules.append(
            Rule((), (Atom(predicates[first], (x,)), Atom(predicates[second], (x,))))
        )
    for symbol in template.schema.concept_names:
        held = {t[0] for t in template.tuples(symbol)}
        for element in elements:
            if element not in held:
                rules.append(
                    Rule((), (Atom(predicates[element], (x,)), Atom(symbol, (x,))))
                )
    for symbol in template.schema.role_names:
        pairs = template.tuples(symbol)
        for source, target in itertools.product(elements, repeat=2):
            if (source, target) not in pairs:
                rules.append(
                    Rule(
                        (),
                        (
                            Atom(predicates[source], (x,)),
                            Atom(symbol, (x, y)),
                            Atom(predicates[target], (y,)),
                        ),
                    )
                )
    return DisjunctiveDatalogProgram(rules, goal_relation=RelationSymbol("goal", 0))


def _coloring_violation_axioms(
    template: Instance,
    schema: Schema,
    names: dict,
    violation,
) -> list[ConceptInclusion]:
    """The ΠB constraints of Theorem 4.6, phrased as concept inclusions.

    ``violation`` is the concept derived when a colouring is locally
    incompatible with the template: the goal concept in the Boolean encoding
    (Theorem 6.1), ``⊥`` in the marked encoding (Theorem 4.6 (2)), where a bad
    colouring must be ruled out rather than merely flagged at one element.
    """
    elements = sorted(template.active_domain, key=repr)
    axioms: list[ConceptInclusion] = [
        ConceptInclusion(Top(), big_or([names[e] for e in elements]))
    ]
    for first, second in itertools.combinations(elements, 2):
        axioms.append(ConceptInclusion(And(names[first], names[second]), violation))
    for symbol in schema.concept_names:
        held = {t[0] for t in template.tuples(symbol)}
        for element in elements:
            if element not in held:
                axioms.append(
                    ConceptInclusion(
                        And(names[element], ConceptName(symbol.name)), violation
                    )
                )
    for symbol in schema.role_names:
        pairs = template.tuples(symbol)
        role = Role(symbol.name)
        for source, target in itertools.product(elements, repeat=2):
            if (source, target) not in pairs:
                axioms.append(
                    ConceptInclusion(
                        And(names[source], Exists(role, names[target])), violation
                    )
                )
    return axioms


def csp_to_omq(template: Instance, schema: Schema | None = None) -> OntologyMediatedQuery:
    """coCSP(B) as an (ALC, BAQ) ontology-mediated query (proof of Theorem 6.1).

    One fresh concept name per template element plus a goal concept ``A``; the
    ontology forces every element into some template element's concept, and
    derives ``A`` whenever the data is locally inconsistent with the template.
    """
    schema = schema if schema is not None else template.schema
    elements = sorted(template.active_domain, key=repr)
    names = {e: ConceptName(f"Elem_{i}") for i, e in enumerate(elements)}
    goal = ConceptName("A__goal")
    axioms = _coloring_violation_axioms(template, schema, names, goal)
    return OntologyMediatedQuery(
        ontology=Ontology(axioms),
        query=boolean_atomic_query("A__goal"),
        data_schema=schema,
    )


def marked_csp_to_omq(
    templates: tuple[MarkedInstance, ...], schema: Schema | None = None
) -> OntologyMediatedQuery:
    """Generalized coCSP with one marked element (all templates sharing one
    instance) as an (ALC, AQ) query — the converse half of Theorem 4.6 (2).

    Unlike the Boolean encoding, a colouring that violates the template must be
    ruled out globally (the paper's ΠB uses ``⊥``-rules), not merely flagged at
    the violating element: otherwise an answer element could escape ``goal``
    while the violation happens elsewhere in the instance.
    """
    if not templates:
        raise ValueError("need at least one marked template")
    base = templates[0].instance
    if any(t.instance != base for t in templates):
        raise ValueError("all marked templates must share the same instance")
    marks = {t.marks[0] for t in templates}
    schema = schema if schema is not None else base.schema
    elements = sorted(base.active_domain, key=repr)
    names = {e: ConceptName(f"Elem_{i}") for i, e in enumerate(elements)}
    goal = ConceptName("A__goal")
    axioms = _coloring_violation_axioms(base, schema, names, Bottom())
    axioms.extend(ConceptInclusion(names[e], goal) for e in elements if e not in marks)
    return OntologyMediatedQuery(
        ontology=Ontology(axioms), query=atomic_query("A__goal"), data_schema=schema
    )
