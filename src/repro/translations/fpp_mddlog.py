"""Proposition 3.2: coFPP ≡ Boolean MDDlog.

* FPP → MDDlog: colours become IDB predicates; every element takes at least
  one colour, no element takes two, and a goal rule per forbidden pattern
  fires whenever the pattern maps into the coloured instance.
* MDDlog → FPP: colours are the subsets of IDB predicates; forbidden patterns
  are read off the rules as in the paper's proof (goal rules forbid their body
  being realised, non-goal rules forbid their violation).
"""

from __future__ import annotations

import itertools

from ..core.cq import Atom, Variable
from ..core.instance import Fact, Instance
from ..core.schema import RelationSymbol, Schema
from ..datalog.ddlog import ADOM, DisjunctiveDatalogProgram, Rule, adom_atom, goal_atom
from ..fpp.problems import ColouredInstance, ForbiddenPatternsProblem


def fpp_to_mddlog(problem: ForbiddenPatternsProblem) -> DisjunctiveDatalogProgram:
    """Translate a forbidden patterns problem into a Boolean MDDlog program
    defining the corresponding coFPP query."""
    x = Variable("x")
    rules: list[Rule] = [
        Rule(tuple(Atom(colour, (x,)) for colour in problem.colours), (adom_atom(x),))
    ]
    for first, second in itertools.combinations(problem.colours, 2):
        rules.append(Rule((), (Atom(first, (x,)), Atom(second, (x,)))))
    for pattern in problem.patterns:
        variables = {
            element: Variable(f"v{i}")
            for i, element in enumerate(sorted(pattern.instance.active_domain, key=repr))
        }
        body = tuple(
            Atom(fact.relation, tuple(variables[a] for a in fact.arguments))
            for fact in sorted(pattern.instance.facts, key=str)
        )
        rules.append(Rule((goal_atom(),), body))
    return DisjunctiveDatalogProgram(rules)


def mddlog_to_fpp(program: DisjunctiveDatalogProgram) -> ForbiddenPatternsProblem:
    """Translate a Boolean MDDlog program into an equivalent forbidden patterns
    problem (Proposition 3.2, second half)."""
    if not program.is_monadic() or not program.is_boolean():
        raise ValueError("Proposition 3.2 applies to Boolean MDDlog programs")
    idb = sorted(
        {
            symbol
            for symbol in program.idb_relations
            if symbol.arity == 1 and symbol.name not in ("goal", ADOM)
        },
        key=str,
    )
    edb = program.edb_relations
    schema = Schema(edb)
    subsets = [
        frozenset(c)
        for size in range(len(idb) + 1)
        for c in itertools.combinations(idb, size)
    ]
    colour_of = {
        subset: RelationSymbol(
            "Colour_" + "_".join(sorted(s.name for s in subset)) if subset else "Colour_none",
            1,
        )
        for subset in subsets
    }
    colours = tuple(colour_of[s] for s in subsets)

    patterns: list[ColouredInstance] = []
    for rule in program.rules:
        patterns.extend(_patterns_from_rule(rule, idb, edb, subsets, colour_of, colours))
    return ForbiddenPatternsProblem(schema, colours, patterns)


def _patterns_from_rule(
    rule: Rule, idb, edb, subsets, colour_of, colours
) -> list[ColouredInstance]:
    """The coloured forbidden patterns obtained from one MDDlog rule.

    Following the proof of Proposition 3.2: take the EDB atoms of the body as
    facts over fresh constants, then colour each variable with a subset that
    contains all IDB predicates asserted of it in the body and, for non-goal
    rules, omits at least... — more precisely, every colouring that makes the
    body true and the head false is a forbidden pattern.
    """
    variables = sorted(rule.variables, key=str)
    constant_of = {v: f"d_{v.name}" for v in variables}
    base_facts = []
    for atom in rule.body:
        if atom.relation in edb:
            base_facts.append(
                Fact(atom.relation, tuple(constant_of[a] for a in atom.arguments))
            )
    body_idb: dict[Variable, set] = {v: set() for v in variables}
    for atom in rule.body:
        if atom.relation in idb:
            body_idb[atom.arguments[0]].add(atom.relation)
    head_idb: dict[Variable, set] = {v: set() for v in variables}
    is_goal = rule.is_goal_rule()
    if not is_goal:
        for atom in rule.head:
            head_idb[atom.arguments[0]].add(atom.relation)

    patterns = []
    per_variable_choices = []
    for variable in variables:
        options = []
        for subset in subsets:
            if not body_idb[variable] <= subset:
                continue
            if not is_goal and (head_idb[variable] & subset):
                continue
            options.append(subset)
        per_variable_choices.append(options)
    for choice in itertools.product(*per_variable_choices):
        facts = list(base_facts)
        for variable, subset in zip(variables, choice):
            facts.append(Fact(colour_of[subset], (constant_of[variable],)))
        try:
            patterns.append(ColouredInstance(Instance(facts), colours))
        except ValueError:
            continue
    return patterns
