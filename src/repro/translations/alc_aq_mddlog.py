"""Theorem 3.4: (ALC, AQ) ≡ unary connected simple MDDlog.

* :func:`alc_aq_to_mddlog` — the exponential translation from an (ALC, AQ)
  ontology-mediated query to an equivalent unary connected simple MDDlog
  program.  Following the proof, the program guesses a good type for every
  data element (one IDB predicate per type), rejects type assignments that
  are incompatible with asserted facts or role edges, and fires the goal on
  elements whose type contains the query concept.
* :func:`mddlog_to_alc_aq` — the converse linear translation turning every
  unary connected simple MDDlog program into an (ALC, AQ) query by reading
  each rule as a concept inclusion.
"""

from __future__ import annotations

import itertools

from ..core.cq import Atom, ConjunctiveQuery, Variable, atomic_query
from ..core.schema import RelationSymbol, Schema
from ..datalog.ddlog import ADOM, DisjunctiveDatalogProgram, Rule, adom_atom, goal_atom
from ..dl.concepts import (
    And,
    Bottom,
    Concept,
    ConceptName,
    Exists,
    Not,
    Role,
    Top,
    big_and,
    big_or,
)
from ..dl.ontology import ConceptInclusion, Ontology
from ..dl.reasoner import TypeSystem
from ..omq.query import OntologyMediatedQuery


def _type_predicate(index: int) -> RelationSymbol:
    return RelationSymbol(f"T{index}", 1)


def alc_aq_to_mddlog(omq: OntologyMediatedQuery) -> DisjunctiveDatalogProgram:
    """Translate an (ALC(H), AQ) or (ALC(H), BAQ) query into an equivalent
    unary connected simple MDDlog program (Theorem 3.4 / 3.13)."""
    if not (omq.is_atomic() or omq.is_boolean_atomic()):
        raise ValueError("Theorem 3.4 applies to atomic queries")
    query_atom = next(iter(omq.ucq().disjuncts[0].atoms))
    query_concept = ConceptName(query_atom.relation.name)
    data_schema = omq.data_schema

    system = TypeSystem(
        omq.ontology,
        extra_concepts=[query_concept]
        + [ConceptName(s.name) for s in data_schema.concept_names],
    )
    good_types = system.good_types()
    predicates = {t: _type_predicate(i) for i, t in enumerate(good_types)}
    x, y = Variable("x"), Variable("y")
    rules: list[Rule] = []

    # Guess one type per element.
    rules.append(
        Rule(
            tuple(Atom(predicates[t], (x,)) for t in good_types),
            (adom_atom(x),),
        )
    )
    # Concept assertions restrict the guessed type.
    for symbol in data_schema.concept_names:
        name = ConceptName(symbol.name)
        if name not in system.closure:
            continue
        for t in good_types:
            if name not in t:
                rules.append(
                    Rule((), (Atom(predicates[t], (x,)), Atom(symbol, (x,))))
                )
    # Role assertions restrict pairs of guessed types.
    for symbol in data_schema.role_names:
        role = Role(symbol.name)
        for source, target in itertools.product(good_types, repeat=2):
            if not system.compatible(source, target, role):
                rules.append(
                    Rule(
                        (),
                        (
                            Atom(predicates[source], (x,)),
                            Atom(symbol, (x, y)),
                            Atom(predicates[target], (y,)),
                        ),
                    )
                )
    # Goal: the query concept is contained in the guessed type.
    for t in good_types:
        if query_concept in t:
            head = goal_atom(x) if omq.is_atomic() else goal_atom()
            rules.append(Rule((head,), (Atom(predicates[t], (x,)),)))
    return DisjunctiveDatalogProgram(rules)


def mddlog_to_alc_aq(program: DisjunctiveDatalogProgram) -> OntologyMediatedQuery:
    """Translate a unary (or Boolean) connected simple MDDlog program into an
    equivalent (ALC, AQ) / (ALC, BAQ) query (Theorem 3.4 (2) and 3.13)."""
    if not program.is_monadic():
        raise ValueError("the program must be an MDDlog program")
    if not program.is_simple() or not program.is_connected():
        raise ValueError("the program must be connected and simple")
    if program.arity not in (0, 1):
        raise ValueError("the goal relation must be unary or Boolean")

    goal_name = "goal"
    axioms: list[ConceptInclusion] = []
    edb = program.edb_relations
    for rule in program.rules:
        axioms.append(_rule_to_inclusion(rule, edb, goal_name))

    ontology = Ontology(axioms)
    schema = Schema(edb)
    query = atomic_query(goal_name) if program.arity == 1 else _boolean_goal_query(goal_name)
    return OntologyMediatedQuery(ontology=ontology, query=query, data_schema=schema)


def _boolean_goal_query(goal_name: str) -> ConjunctiveQuery:
    from ..core.cq import boolean_atomic_query

    return boolean_atomic_query(goal_name)


def _rule_to_inclusion(
    rule: Rule, edb: frozenset[RelationSymbol], goal_name: str
) -> ConceptInclusion:
    """Encode one connected simple MDDlog rule as an ALC concept inclusion.

    The body of a connected simple rule uses at most one EDB atom.  When that
    atom is binary, the rule speaks about an element ``x`` and an ``R``-successor
    ``y``; otherwise about a single element.  The inclusion states that the
    body concepts at ``x`` together with an ``R``-successor satisfying the body
    concepts at ``y`` and none of the head concepts at ``y`` imply one of the
    head concepts at ``x`` (⊥ when there are none).
    """
    binary_atoms = [a for a in rule.body if a.relation.arity == 2]
    if len(binary_atoms) > 1:
        raise ValueError("simple rules have at most one binary atom")

    def concepts_at(variable, atoms) -> list[Concept]:
        result = []
        for atom in atoms:
            if atom.relation.arity == 1 and atom.arguments == (variable,):
                name = atom.relation.name
                result.append(ConceptName(goal_name if name == "goal" else name))
        return result

    # A Boolean goal head (``goal()``) is encoded as the goal concept becoming
    # true at the rule's anchor element (Theorem 3.13).
    has_boolean_goal = any(
        atom.relation.name == "goal" and atom.relation.arity == 0
        for atom in rule.head
    )

    if binary_atoms:
        binary = binary_atoms[0]
        source, target = binary.arguments
        role = Role(binary.relation.name)
        body_source = concepts_at(source, [a for a in rule.body if a.relation.name != ADOM])
        body_target = concepts_at(target, [a for a in rule.body if a.relation.name != ADOM])
        head_source = concepts_at(source, rule.head)
        head_target = concepts_at(target, rule.head)
        if not isinstance(source, Variable) or not isinstance(target, Variable):
            raise ValueError("rules must not contain constants")
        successor = big_and(body_target) if body_target else Top()
        if head_target:
            successor = And(successor, Not(big_or(head_target)))
        lhs_parts = list(body_source) + [Exists(role, successor)]
        lhs = big_and(lhs_parts)
        if has_boolean_goal:
            head_source.append(ConceptName(goal_name))
        rhs = big_or(head_source) if head_source else Bottom()
        return ConceptInclusion(lhs, rhs)

    # Single-variable rule: all atoms talk about the same element.
    variables = sorted(rule.variables, key=str)
    variable = variables[0] if variables else Variable("x")
    body = concepts_at(variable, [a for a in rule.body if a.relation.name != ADOM])
    head = concepts_at(variable, rule.head)
    if has_boolean_goal:
        head.append(ConceptName(goal_name))
    lhs = big_and(body) if body else Top()
    rhs = big_or(head) if head else Bottom()
    return ConceptInclusion(lhs, rhs)
