"""Proposition 4.1: coMMSNP ≡ MDDlog (and the GMSNP analogue, Theorem 4.2).

Both directions follow the paper's proof literally:

* MMSNP → MDDlog: each monadic SO variable ``X`` becomes an IDB predicate with
  a complement predicate ``X̄``; every element is forced into exactly one of
  the two; implications with non-empty heads become constraints after moving
  the head atoms (negated, i.e. as complements) into the body; implications
  with empty heads become goal rules, with equality atoms compiled into
  repeated answer positions.
* MDDlog → MMSNP: IDB predicates become SO variables, non-goal rules become
  implications, goal rules become implications with empty head whose answer
  variables are renamed into the free variables of the formula.
"""

from __future__ import annotations

from ..core.cq import Atom, Variable
from ..core.schema import RelationSymbol
from ..datalog.ddlog import ADOM, DisjunctiveDatalogProgram, Rule, adom_atom, goal_atom
from ..mmsnp.formulas import (
    EqualityAtom,
    Implication,
    MMSNPFormula,
    SchemaAtom,
    SOAtom,
    SOVariable,
)


def mmsnp_to_mddlog(formula: MMSNPFormula) -> DisjunctiveDatalogProgram:
    """Proposition 4.1 (⊆): translate a (monadic) MMSNP formula into an MDDlog
    program defining the corresponding coMMSNP query."""
    if not formula.is_monadic() or formula.uses_fact_atoms():
        raise ValueError("Proposition 4.1 applies to monadic MMSNP formulas")
    free = formula.free_variables
    rules: list[Rule] = []
    x = Variable("x")
    complements = {
        v: RelationSymbol(f"{v.name}__comp", 1) for v in formula.so_variables
    }
    positives = {v: RelationSymbol(v.name, 1) for v in formula.so_variables}
    for variable in formula.so_variables:
        rules.append(
            Rule(
                (Atom(positives[variable], (x,)), Atom(complements[variable], (x,))),
                (adom_atom(x),),
            )
        )
        rules.append(
            Rule(
                (),
                (Atom(positives[variable], (x,)), Atom(complements[variable], (x,))),
            )
        )
    for implication in formula.implications:
        rules.extend(_implication_to_rules(implication, positives, complements, free))
    return DisjunctiveDatalogProgram(rules)


def _implication_to_rules(implication, positives, complements, free) -> list[Rule]:
    body: list[Atom] = []
    equalities: list[tuple[Variable, Variable]] = []
    for atom in implication.body:
        if isinstance(atom, SchemaAtom):
            body.append(Atom(atom.relation, atom.arguments))
        elif isinstance(atom, SOAtom):
            body.append(Atom(positives[atom.variable], atom.arguments))
        elif isinstance(atom, EqualityAtom):
            equalities.append((atom.left, atom.right))
        else:
            raise ValueError(f"unsupported body atom {atom!r}")
    # Move head atoms into the body as complements; the implication then says
    # the (extended) body is contradictory.
    for atom in implication.head:
        if not isinstance(atom, SOAtom):
            raise ValueError("MMSNP head atoms must be SO atoms")
        body.append(Atom(complements[atom.variable], atom.arguments))

    if not free:
        if equalities:
            substitution = _equality_substitution(equalities)
            body = [a.substitute(substitution) for a in body]
        if not body:
            body = [adom_atom(Variable("x"))]
        return [Rule((goal_atom(),), tuple(body))]

    # Non-Boolean case: free variables become the goal arguments; equalities
    # between free variables are realised by repeating arguments.
    substitution: dict[Variable, Variable] = {}
    classes = _equality_substitution(equalities, restrict_to=set(free))
    substitution.update(classes)
    goal_arguments = tuple(substitution.get(v, v) for v in free)
    body = [a.substitute(substitution) for a in body]
    bound = {v for atom in body for v in atom.variables}
    for variable in goal_arguments:
        if variable not in bound:
            body.append(adom_atom(variable))
            bound.add(variable)
    if not body:
        body = [adom_atom(goal_arguments[0])]
    return [Rule((goal_atom(*goal_arguments),), tuple(body))]


def _equality_substitution(equalities, restrict_to=None) -> dict[Variable, Variable]:
    parent: dict[Variable, Variable] = {}

    def find(v: Variable) -> Variable:
        parent.setdefault(v, v)
        while parent[v] != v:
            parent[v] = parent[parent[v]]
            v = parent[v]
        return v

    for left, right in equalities:
        root_left, root_right = find(left), find(right)
        if root_left != root_right:
            parent[root_left] = root_right
    return {v: find(v) for v in parent}


def mddlog_to_mmsnp(program: DisjunctiveDatalogProgram) -> MMSNPFormula:
    """Proposition 4.1 (⊇): translate an MDDlog program into an MMSNP formula
    whose complement defines the same query."""
    if not program.is_monadic():
        raise ValueError("the program must be monadic")
    so_variables = {
        symbol.name: SOVariable(symbol.name, 1)
        for symbol in program.idb_relations
        if symbol.arity == 1 and symbol.name not in ("goal", ADOM)
    }
    arity = program.arity
    free = tuple(Variable(f"y{i}") for i in range(arity))
    implications: list[Implication] = []
    edb = program.edb_relations

    def convert_atom(atom: Atom):
        if atom.relation.name == ADOM:
            return None
        if atom.relation in edb or atom.relation.name not in so_variables:
            return SchemaAtom(atom.relation, atom.arguments)
        return SOAtom(so_variables[atom.relation.name], atom.arguments)

    for rule in program.non_goal_rules():
        body = [a for a in (convert_atom(atom) for atom in rule.body) if a is not None]
        head = []
        for atom in rule.head:
            head.append(SOAtom(so_variables[atom.relation.name], atom.arguments))
        implications.append(Implication(tuple(body), tuple(head)))
    for rule in program.goal_rules():
        goal_head = rule.head[0]
        substitution: dict[Variable, Variable] = {}
        equalities: list[EqualityAtom] = []
        for position, argument in enumerate(goal_head.arguments):
            if argument in substitution:
                equalities.append(EqualityAtom(free[position], substitution[argument]))
            else:
                substitution[argument] = free[position]
        body = []
        for atom in rule.body:
            converted = convert_atom(atom)
            if converted is None:
                continue
            if isinstance(converted, SchemaAtom):
                body.append(
                    SchemaAtom(
                        converted.relation,
                        tuple(substitution.get(a, a) for a in converted.arguments),
                    )
                )
            else:
                body.append(
                    SOAtom(
                        converted.variable,
                        tuple(substitution.get(a, a) for a in converted.arguments),
                    )
                )
        body.extend(equalities)
        implications.append(Implication(tuple(body), ()))
    return MMSNPFormula(
        so_variables=tuple(so_variables.values()),
        implications=tuple(implications),
        free_variables=free,
    )
