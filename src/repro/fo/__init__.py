"""First-order formulas and the ontology-language fragments GFO / UNFO / GNFO."""

from .formulas import (
    AndF,
    Equality,
    ExistsF,
    Falsity,
    ForallF,
    Formula,
    Implies,
    NotF,
    OrF,
    RelationalAtom,
    Truth,
    atom,
    conjunction,
    disjunction,
    exists,
    forall,
)
from .fragments import fragment_of, is_gfo, is_gnfo, is_unfo

__all__ = [
    "AndF",
    "Equality",
    "ExistsF",
    "Falsity",
    "ForallF",
    "Formula",
    "Implies",
    "NotF",
    "OrF",
    "RelationalAtom",
    "Truth",
    "atom",
    "conjunction",
    "disjunction",
    "exists",
    "forall",
    "fragment_of",
    "is_gfo",
    "is_gnfo",
    "is_unfo",
]
