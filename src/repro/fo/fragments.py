"""Membership checkers for the FO fragments used as ontology languages.

* **UNFO** (unary negation fragment): built from atoms by conjunction,
  disjunction, existential quantification, and negation applied only to
  formulas with at most one free variable.
* **GFO** (guarded fragment): Boolean combinations of atoms, with
  quantification guarded by an atom containing all free variables of the
  quantified subformula; trivial guards ``x = x`` are allowed, matching the
  paper's equality-free convention.
* **GNFO** (guarded negation fragment): like UNFO but additionally allowing
  guarded negation ``α ∧ ¬φ`` where the guard atom ``α`` contains all free
  variables of ``φ``.

These are syntactic fragments; membership depends on the shape of the
formula, not on semantic equivalence to a formula of the right shape.
"""

from __future__ import annotations

from .formulas import (
    AndF,
    Equality,
    ExistsF,
    Falsity,
    ForallF,
    Formula,
    Implies,
    NotF,
    OrF,
    RelationalAtom,
    Truth,
)


def _is_atomic(formula: Formula) -> bool:
    return isinstance(formula, (RelationalAtom, Equality, Truth, Falsity))


def _guards(formula: Formula, guarded: Formula) -> bool:
    """Does ``formula`` (an atom or trivial equality) guard ``guarded``?"""
    needed = guarded.free_variables()
    if isinstance(formula, RelationalAtom):
        return needed <= formula.free_variables()
    # Only the trivial equality guard x = x is allowed (the paper's
    # convention for unguarded quantification over at most one free variable).
    if isinstance(formula, Equality) and formula.left == formula.right:
        return needed <= formula.free_variables()
    return False


def is_unfo(formula: Formula) -> bool:
    """Is the formula in the unary negation fragment?"""
    if _is_atomic(formula):
        return True
    if isinstance(formula, NotF):
        return len(formula.operand.free_variables()) <= 1 and is_unfo(formula.operand)
    if isinstance(formula, AndF):
        return all(is_unfo(c) for c in formula.conjuncts)
    if isinstance(formula, OrF):
        return all(is_unfo(c) for c in formula.disjuncts)
    if isinstance(formula, ExistsF):
        return is_unfo(formula.body)
    if isinstance(formula, Implies):
        # φ → ψ abbreviates ¬φ ∨ ψ: only allowed when ¬φ is a unary negation.
        return (
            len(formula.antecedent.free_variables()) <= 1
            and is_unfo(formula.antecedent)
            and is_unfo(formula.consequent)
        )
    if isinstance(formula, ForallF):
        # ∀x̄ φ abbreviates ¬∃x̄ ¬φ, so the whole formula may have at most one
        # free variable (the outer negation must be unary).
        outer_free = formula.body.free_variables() - set(formula.variables)
        if len(outer_free) > 1:
            return False
        body = formula.body
        if isinstance(body, Implies):
            # ¬(ψ → χ) rewrites to ψ ∧ ¬χ: admissible when ψ is (positively) in
            # UNFO and the negation of χ is unary.  This covers the Table II
            # translation of ∀R.C, namely ∀y (R(x, y) → C*(y)).
            return (
                is_unfo(body.antecedent)
                and len(body.consequent.free_variables()) <= 1
                and is_unfo(body.consequent)
            )
        return len(body.free_variables()) <= 1 and is_unfo(body)
    return False


def is_gfo(formula: Formula) -> bool:
    """Is the formula in the (equality-free) guarded fragment?"""
    if _is_atomic(formula):
        return True
    if isinstance(formula, NotF):
        return is_gfo(formula.operand)
    if isinstance(formula, AndF):
        return all(is_gfo(c) for c in formula.conjuncts)
    if isinstance(formula, OrF):
        return all(is_gfo(c) for c in formula.disjuncts)
    if isinstance(formula, ExistsF):
        if len(formula.body.free_variables()) <= 1 and is_gfo(formula.body):
            # Unguarded quantification over at most one free variable is
            # admitted via trivial ``x = x`` guards (the paper's convention).
            return True
        return _guarded_quantification(formula.body, conjunction_guard=True)
    if isinstance(formula, ForallF):
        if len(formula.body.free_variables()) <= 1 and is_gfo(formula.body):
            return True
        return _guarded_quantification(formula.body, conjunction_guard=False)
    if isinstance(formula, Implies):
        return is_gfo(formula.antecedent) and is_gfo(formula.consequent)
    return False


def _guarded_quantification(body: Formula, conjunction_guard: bool) -> bool:
    """Check ``∃x (α ∧ φ)`` / ``∀x (α → φ)`` guardedness of the quantifier body."""
    if conjunction_guard:
        if isinstance(body, AndF) and len(body.conjuncts) >= 2:
            guard, rest = body.conjuncts[0], body.conjuncts[1:]
            remainder: Formula = rest[0] if len(rest) == 1 else AndF(rest)
            return _guards(guard, remainder) and is_gfo(remainder)
        # ∃x α with α atomic is trivially guarded by itself.
        return _is_atomic(body)
    if isinstance(body, Implies):
        return _guards(body.antecedent, body.consequent) and is_gfo(body.consequent)
    return False


def is_gnfo(formula: Formula) -> bool:
    """Is the formula in the guarded negation fragment?"""
    if _is_atomic(formula):
        return True
    if isinstance(formula, NotF):
        return len(formula.operand.free_variables()) <= 1 and is_gnfo(formula.operand)
    if isinstance(formula, AndF):
        # Allow guarded negation: α ∧ ¬φ with α guarding φ.
        conjuncts = formula.conjuncts
        negations = [c for c in conjuncts if isinstance(c, NotF)]
        others = [c for c in conjuncts if not isinstance(c, NotF)]
        for negation in negations:
            if len(negation.operand.free_variables()) <= 1:
                if not is_gnfo(negation.operand):
                    return False
                continue
            if not any(_guards(o, negation.operand) for o in others if _is_atomic(o)):
                return False
            if not is_gnfo(negation.operand):
                return False
        return all(is_gnfo(o) for o in others)
    if isinstance(formula, OrF):
        return all(is_gnfo(c) for c in formula.disjuncts)
    if isinstance(formula, ExistsF):
        return is_gnfo(formula.body)
    if isinstance(formula, Implies):
        return is_gnfo(NotF(formula.antecedent)) and is_gnfo(formula.consequent)
    if isinstance(formula, ForallF):
        inner_free = formula.body.free_variables()
        if len(inner_free) <= 1 and is_gnfo(formula.body):
            # ∀x φ abbreviates ¬∃x ¬φ; with at most one free variable the inner
            # negation is unary, hence in GNFO.
            return True
        # ∀x̄ (ψ → χ) abbreviates ¬∃x̄ (ψ ∧ ¬χ): admissible when ψ is in GNFO and
        # the negated consequent is either unary or guarded by an atomic
        # conjunct of ψ.
        if isinstance(formula.body, Implies):
            antecedent, consequent = formula.body.antecedent, formula.body.consequent
            if not (is_gnfo(antecedent) and is_gnfo(consequent)):
                return False
            if len(consequent.free_variables()) <= 1:
                return True
            conjuncts = (
                antecedent.conjuncts if isinstance(antecedent, AndF) else (antecedent,)
            )
            return any(
                _is_atomic(conjunct) and _guards(conjunct, consequent)
                for conjunct in conjuncts
            )
        return False
    return False


def fragment_of(formula: Formula) -> set[str]:
    """The set of fragments (by name) that syntactically contain the formula."""
    result = set()
    if is_unfo(formula):
        result.add("UNFO")
    if is_gfo(formula):
        result.add("GFO")
    if is_gnfo(formula):
        result.add("GNFO")
    return result
