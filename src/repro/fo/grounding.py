"""Grounding first-order formulas over a finite domain and a small SAT search.

Certain-answer semantics quantifies over *all* models of the ontology that
extend the data.  Over a fixed finite domain this becomes a propositional
problem: ground every quantifier over the domain, treat ground facts as
propositional variables, and search for a truth assignment satisfying the
ontology, the data, and the negation of the query.  This is the machinery
behind :class:`repro.omq.bounded.BoundedModelEngine` and the first-order
OMQs of Theorem 3.17 — a genuinely usable counter-model finder, unlike naive
enumeration of all fact subsets.

The ground formulas (always in negation normal form) are Tseitin-encoded and
handed to the shared CDCL solver of :mod:`repro.engine.sat`, replacing the
formula-substitution backtracking search the seed implementation used.

Ground formulas are plain nested tuples:

* ``("lit", fact, positive)`` — a (possibly negated) ground fact;
* ``("and", children)`` / ``("or", children)`` — propositional connectives;
* ``True`` / ``False`` — constants.
"""

from __future__ import annotations

import itertools
from typing import Hashable, Iterable, Mapping, Sequence

from ..core.cq import ConjunctiveQuery, UnionOfConjunctiveQueries, Variable
from ..core.instance import Fact, Instance
from .formulas import (
    AndF,
    Equality,
    ExistsF,
    Falsity,
    ForallF,
    Formula,
    Implies,
    NotF,
    OrF,
    RelationalAtom,
    Truth,
)

Element = Hashable
GroundFormula = "bool | tuple"


# ---------------------------------------------------------------------------
# Grounding
# ---------------------------------------------------------------------------


def _resolve(term, assignment: Mapping) -> Element:
    if isinstance(term, Variable):
        if term not in assignment:
            raise KeyError(f"unbound variable {term} during grounding")
        return assignment[term]
    return term


def _simplify_junction(kind: str, children: list) -> GroundFormula:
    absorbing = kind == "or"
    flat = []
    for child in children:
        if child is absorbing:
            return absorbing
        if child is (not absorbing):
            continue
        if isinstance(child, tuple) and child[0] == kind:
            flat.extend(child[1])
            continue
        flat.append(child)
    if not flat:
        return not absorbing
    if len(flat) == 1:
        return flat[0]
    return (kind, tuple(flat))


def ground(
    formula: Formula,
    domain: Sequence[Element],
    assignment: Mapping | None = None,
    positive: bool = True,
) -> GroundFormula:
    """Ground a first-order formula over a finite domain.

    ``positive=False`` grounds the negation (negations are pushed to the
    literals, so the result is always in negation normal form).
    """
    assignment = dict(assignment or {})
    if isinstance(formula, Truth):
        return positive
    if isinstance(formula, Falsity):
        return not positive
    if isinstance(formula, Equality):
        equal = _resolve(formula.left, assignment) == _resolve(formula.right, assignment)
        return equal if positive else not equal
    if isinstance(formula, RelationalAtom):
        fact = Fact(
            formula.relation,
            tuple(_resolve(a, assignment) for a in formula.arguments),
        )
        return ("lit", fact, positive)
    if isinstance(formula, NotF):
        return ground(formula.operand, domain, assignment, not positive)
    if isinstance(formula, AndF):
        kind = "and" if positive else "or"
        children = [ground(c, domain, assignment, positive) for c in formula.conjuncts]
        return _simplify_junction(kind, children)
    if isinstance(formula, OrF):
        kind = "or" if positive else "and"
        children = [ground(c, domain, assignment, positive) for c in formula.disjuncts]
        return _simplify_junction(kind, children)
    if isinstance(formula, Implies):
        rewritten = OrF((NotF(formula.antecedent), formula.consequent))
        return ground(rewritten, domain, assignment, positive)
    if isinstance(formula, (ExistsF, ForallF)):
        existential = isinstance(formula, ExistsF)
        kind = ("or" if existential else "and") if positive else ("and" if existential else "or")
        variables = list(formula.variables)
        children = []
        for values in itertools.product(domain, repeat=len(variables)):
            extended = dict(assignment)
            extended.update(zip(variables, values))
            children.append(ground(formula.body, domain, extended, positive))
            if children[-1] is (kind == "or"):
                return kind == "or"
        return _simplify_junction(kind, children)
    raise TypeError(f"cannot ground formula {formula!r}")


def ground_cq(
    query: ConjunctiveQuery,
    domain: Sequence[Element],
    answer: Sequence[Element],
    positive: bool = True,
) -> GroundFormula:
    """Ground ``q(answer)`` (or its negation) over the domain."""
    assignment = dict(zip(query.answer_variables, answer))
    existential = sorted(query.variables - set(query.answer_variables), key=str)
    kind = "or" if positive else "and"
    children = []
    for values in itertools.product(domain, repeat=len(existential)):
        extended = dict(assignment)
        extended.update(zip(existential, values))
        lits = []
        for atom in sorted(query.atoms, key=str):
            fact = Fact(atom.relation, tuple(_resolve(a, extended) for a in atom.arguments))
            lits.append(("lit", fact, positive))
        children.append(_simplify_junction("and" if positive else "or", lits))
    return _simplify_junction(kind, children)


def ground_ucq(
    query: UnionOfConjunctiveQueries,
    domain: Sequence[Element],
    answer: Sequence[Element],
    positive: bool = True,
) -> GroundFormula:
    """Ground a UCQ at a candidate answer (or its negation)."""
    kind = "or" if positive else "and"
    children = [ground_cq(cq, domain, answer, positive) for cq in query.disjuncts]
    return _simplify_junction(kind, children)


# ---------------------------------------------------------------------------
# Propositional search over ground formulas
# ---------------------------------------------------------------------------


def _substitute(formula: GroundFormula, assignment: Mapping[Fact, bool]) -> GroundFormula:
    if isinstance(formula, bool):
        return formula
    kind = formula[0]
    if kind == "lit":
        _tag, fact, positive = formula
        if fact in assignment:
            return assignment[fact] if positive else not assignment[fact]
        return formula
    children = [_substitute(child, assignment) for child in formula[1]]
    return _simplify_junction(kind, children)


def satisfying_assignment(
    constraints: Iterable[GroundFormula],
    forced: Mapping[Fact, bool] | None = None,
) -> dict[Fact, bool] | None:
    """A truth assignment over ground facts satisfying every constraint, or None.

    The constraints are Tseitin-encoded into clauses and solved by the
    engine's CDCL solver; the forced facts become unit assumptions.  Facts
    not mentioned by the returned assignment are "don't care"; callers that
    need a concrete instance may treat them as false.
    """
    from ..engine.sat import TseitinAux, solver_for_clauses, tseitin_clauses

    assignment: dict[Fact, bool] = dict(forced or {})
    formula = _substitute(_simplify_junction("and", list(constraints)), assignment)
    if formula is False:
        return None
    if formula is True:
        return assignment
    clauses = tseitin_clauses(
        formula[1] if formula[0] == "and" else [formula]
    )
    if clauses is None:
        return None
    solver = solver_for_clauses(clauses)
    if not solver.solve():
        return None
    for atom, value in solver.last_model.items():
        if not isinstance(atom, TseitinAux):
            assignment[atom] = value
    return assignment


def model_from_assignment(
    assignment: Mapping[Fact, bool], base: Instance
) -> Instance:
    """The instance consisting of the base facts plus every fact set to true."""
    extra = [fact for fact, value in assignment.items() if value]
    return base.with_facts(extra)
